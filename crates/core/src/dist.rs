//! The distributed SPMD solver.
//!
//! Domain decomposition by an arbitrary site→rank owner map (produced by
//! any partitioner in `hemelb-partition`); each rank stores distributions
//! only for its own sites, and the pull streaming of cross-rank links is
//! fed by a per-step **halo exchange** of post-collision populations —
//! the communication whose volume the partitioners minimise and the
//! paper's load-balance discussion revolves around.
//!
//! The distributed stepper is bit-for-bit identical to the serial
//! [`Solver`](crate::Solver) (asserted in tests): both perform the same
//! per-site arithmetic in the same order; only the storage and transport
//! differ.
//!
//! ## Communication/computation overlap
//!
//! By default the step hides the halo round-trip behind interior work
//! (see DESIGN.md §2.14): sites are split at setup into **frontier**
//! (their post-collision populations are shipped to peers, or they pull
//! from peers) and **interior** (everything else). The step collides the
//! frontier first, posts all sends, then collides and streams the
//! interior while messages are in flight, drains receives in arrival
//! order, and finally streams the frontier. Collide is per-site
//! independent and stream reads only immutable post-collision state, so
//! the overlapped schedule is bit-identical to the synchronous one
//! (`cfg.overlap = false`), which is retained as the fast path for
//! degenerate domains (no peers, or no interior sites).

use crate::equilibrium::feq_all;
use crate::fields::FieldSnapshot;
use crate::layout::{
    KernelLayout, SitePartition, SoaLattice, HALO_FLAG, LINK_BOUNDARY as BOUNDARY,
};
use crate::model::LatticeModel;
use crate::solver::{boundary_rule, precompute_bc_velocities, SolverConfig};
use bytes::Bytes;
use hemelb_geometry::{SiteKind, SparseGeometry};
use hemelb_parallel::{CommResult, Communicator, Tag, WireReader, WireWriter};
use std::borrow::Cow;
use std::sync::Arc;

const T_HALO: Tag = Tag::halo(0);
const T_MIGRATE: Tag = Tag::migration(0);

/// One rank's share of the distributed solver. Construct collectively
/// with the same arguments on every rank.
pub struct DistSolver<'a> {
    comm: &'a Communicator,
    geo: Arc<SparseGeometry>,
    owner: Vec<usize>,
    /// Global ids of the sites this rank owns, ascending.
    locals: Vec<u32>,
    model: LatticeModel,
    cfg: SolverConfig,
    /// Local distributions, `[local_site][direction]`.
    f: Vec<f64>,
    f_next: Vec<f64>,
    moments: Vec<(f64, [f64; 3])>,
    bc_velocity: Vec<[f64; 3]>,
    /// Local pull table: local src index, `HALO_FLAG | slot`, or
    /// `BOUNDARY`.
    pull: Vec<u32>,
    /// Per peer rank: `(peer, requests)` where requests are
    /// `(local_src, dir)` pairs to ship each step, in the peer's order.
    send_plan: Vec<(usize, Vec<(u32, u16)>)>,
    /// Per peer rank: `(peer, halo slot range start, count)`.
    recv_plan: Vec<(usize, usize, usize)>,
    /// Halo buffer of received post-collision populations.
    halo: Vec<f64>,
    /// MRT operator when configured.
    mrt: Option<crate::mrt::MrtOperator>,
    /// SoA state when `cfg.layout` is not [`KernelLayout::Legacy`]; the
    /// site-major `f`/`f_next` stay empty in that case.
    soa: Option<SoaLattice>,
    /// Site kinds of the owned sites, local order.
    kinds: Vec<SiteKind>,
    /// Interior/frontier split of the local sites, compiled at setup
    /// (see [`SitePartition`]); drives the overlapped step schedule.
    partition: SitePartition,
    /// Reusable staging buffer for bulk halo packing.
    pack_scratch: Vec<f64>,
    /// Reusable decode buffer for bulk halo unpacking.
    recv_scratch: Vec<f64>,
    step: u64,
}

/// Pull-stream a span of a rank's local sites into `out` (the slice of
/// `f_next` starting at local site `first`). The distributed twin of
/// [`crate::kernel::stream_span`]: identical per-site arithmetic, plus
/// the halo branch for cross-rank links. Reads only immutable
/// previous-step state, so spans may run concurrently.
#[allow(clippy::too_many_arguments)]
fn stream_halo_span(
    model: &LatticeModel,
    cfg: &SolverConfig,
    geo: &SparseGeometry,
    locals: &[u32],
    f_old: &[f64],
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    pull: &[u32],
    halo: &[f64],
    step: u64,
    first: usize,
    out: &mut [f64],
) {
    let q = model.q;
    for k in 0..out.len() / q {
        let l = first + k;
        let kind = geo.kind(locals[l]);
        for i in 0..q {
            let entry = pull[l * q + i];
            out[k * q + i] = if entry == BOUNDARY {
                boundary_rule(
                    model,
                    cfg,
                    kind,
                    bc_velocity[l],
                    i,
                    f_old[l * q + model.opp[i]],
                    moments[l],
                    step,
                )
            } else if entry & HALO_FLAG != 0 {
                halo[(entry & !HALO_FLAG) as usize]
            } else {
                f_old[entry as usize * q + i]
            };
        }
    }
}

/// Chunk-parallel [`stream_halo_span`] restricted to ascending disjoint
/// `(start, len)` site ranges; destination sites outside the ranges are
/// untouched. Passing one full-domain range reproduces the classic
/// whole-array streaming chunk for chunk.
#[allow(clippy::too_many_arguments)]
fn par_stream_halo_ranges(
    model: &LatticeModel,
    cfg: &SolverConfig,
    geo: &SparseGeometry,
    locals: &[u32],
    f_old: &[f64],
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    pull: &[u32],
    halo: &[f64],
    step: u64,
    ranges: &[(u32, u32)],
    f_next: &mut [f64],
) {
    let q = model.q;
    let mut work: Vec<(usize, &mut [f64])> = Vec::new();
    let mut rest = f_next;
    let mut cursor = 0usize;
    for (first, len) in crate::kernel::range_chunks(ranges) {
        let gap = first - cursor;
        let (_, tail) = rest.split_at_mut(gap * q);
        let (out, tail) = tail.split_at_mut(len * q);
        rest = tail;
        cursor = first + len;
        work.push((first, out));
    }
    crate::kernel::run_grouped(work, |(first, out)| {
        stream_halo_span(
            model,
            cfg,
            geo,
            locals,
            f_old,
            moments,
            bc_velocity,
            pull,
            halo,
            step,
            first,
            out,
        )
    });
}

/// Compute the ascending list of global site ids owned by `rank`.
pub fn locals_of(owner: &[usize], rank: usize) -> Vec<u32> {
    owner
        .iter()
        .enumerate()
        .filter(|(_, &o)| o == rank)
        .map(|(s, _)| s as u32)
        .collect()
}

impl<'a> DistSolver<'a> {
    /// Collective constructor: every rank passes the same geometry,
    /// owner map and configuration.
    ///
    /// # Panics
    /// Panics if `owner.len() != geo.fluid_count()` or an owner index is
    /// out of range.
    pub fn new(
        geo: Arc<SparseGeometry>,
        owner: Vec<usize>,
        cfg: SolverConfig,
        comm: &'a Communicator,
    ) -> CommResult<Self> {
        assert_eq!(
            owner.len(),
            geo.fluid_count(),
            "owner map must cover all sites"
        );
        assert!(
            owner.iter().all(|&o| o < comm.size()),
            "owner rank out of range"
        );
        let me = comm.rank();
        let model = cfg.model.build();
        let q = model.q;
        let locals = locals_of(&owner, me);
        let nl = locals.len();

        // Global → local index for owned sites.
        let mut g2l = vec![u32::MAX; geo.fluid_count()];
        for (l, &g) in locals.iter().enumerate() {
            g2l[g as usize] = l as u32;
        }

        // Build the pull table, registering remote sources per peer.
        let mut pull = vec![BOUNDARY; nl * q];
        // needed[r] = list of (global_src, dir) this rank must receive
        // from r each step, in deterministic (local site, dir) order.
        let mut needed: Vec<Vec<(u32, u16)>> = vec![Vec::new(); comm.size()];
        let mut halo_slot_of: Vec<Vec<usize>> = vec![Vec::new(); comm.size()];
        let mut n_halo = 0usize;
        for (l, &g) in locals.iter().enumerate() {
            let [x, y, z] = geo.position(g);
            for i in 0..q {
                let c = model.c[i];
                let src = geo.site_at(
                    x as i64 - c[0] as i64,
                    y as i64 - c[1] as i64,
                    z as i64 - c[2] as i64,
                );
                match src {
                    None => {} // boundary, already marked
                    Some(sg) => {
                        let o = owner[sg as usize];
                        if o == me {
                            pull[l * q + i] = g2l[sg as usize];
                        } else {
                            needed[o].push((sg, i as u16));
                            halo_slot_of[o].push(n_halo);
                            pull[l * q + i] = HALO_FLAG | n_halo as u32;
                            n_halo += 1;
                        }
                    }
                }
            }
        }

        // Exchange request lists so each rank learns what to send.
        // (One all-to-all at construction; steady-state steps use only
        // the sparse neighbourhood exchange.)
        let outgoing: Vec<Bytes> = needed
            .iter()
            .map(|list| {
                let mut w = WireWriter::with_capacity(8 + list.len() * 6);
                w.put_usize(list.len());
                for &(g, d) in list {
                    w.put_u32(g);
                    w.put_u32(d as u32);
                }
                w.finish()
            })
            .collect();
        let incoming = comm.all_to_all(outgoing)?;

        let mut send_plan = Vec::new();
        for (peer, payload) in incoming.into_iter().enumerate() {
            if peer == me {
                continue;
            }
            let mut r = WireReader::new(payload);
            let count = r.get_usize()?;
            if count == 0 {
                continue;
            }
            let mut requests = Vec::with_capacity(count);
            for _ in 0..count {
                let g = r.get_u32()?;
                let d = r.get_u32()? as u16;
                let l = g2l[g as usize];
                assert_ne!(l, u32::MAX, "peer requested a site we do not own");
                requests.push((l, d));
            }
            send_plan.push((peer, requests));
        }
        send_plan.sort_unstable_by_key(|(peer, _)| *peer);

        // Receive plan: contiguousise halo slots per peer. Slots were
        // allocated interleaved across peers, so build a remap.
        let mut recv_plan = Vec::new();
        let mut remap = vec![0usize; n_halo];
        let mut next = 0usize;
        for (peer, slots) in halo_slot_of.iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let start = next;
            for &old in slots {
                remap[old] = next;
                next += 1;
            }
            recv_plan.push((peer, start, slots.len()));
        }
        for entry in pull.iter_mut() {
            if *entry != BOUNDARY && *entry & HALO_FLAG != 0 {
                let old = (*entry & !HALO_FLAG) as usize;
                *entry = HALO_FLAG | remap[old] as u32;
            }
        }

        // Initialise at rest.
        let mut f = vec![0.0; nl * q];
        for l in 0..nl {
            feq_all(&model, 1.0, [0.0; 3], &mut f[l * q..(l + 1) * q]);
        }

        // Boundary velocities for owned sites only.
        let bc_all = precompute_bc_velocities(&geo, &cfg);
        let bc_velocity = locals.iter().map(|&g| bc_all[g as usize]).collect();

        let mrt = match cfg.collision {
            crate::collision::CollisionKind::Mrt { omega_ghost } => {
                Some(crate::mrt::MrtOperator::new(&model, omega_ghost))
            }
            _ => None,
        };
        let kinds: Vec<SiteKind> = locals.iter().map(|&g| geo.kind(g)).collect();
        let soa = match cfg.layout {
            KernelLayout::Legacy => None,
            _ => Some(SoaLattice::new(q, &pull, &f)),
        };
        let (f, f_next) = if soa.is_some() {
            (Vec::new(), Vec::new())
        } else {
            (f.clone(), f)
        };

        // Frontier classification for the overlapped step: a site is
        // frontier iff a peer needs its post-collision populations
        // (send plan) or it pulls at least one population from a peer
        // (halo link in its pull row). Interior sites touch no halo
        // state in either direction, so they can collide and stream
        // while the exchange is in flight.
        let mut frontier = vec![false; nl];
        for (_, requests) in &send_plan {
            for &(l, _) in requests {
                frontier[l as usize] = true;
            }
        }
        for (l, flag) in frontier.iter_mut().enumerate() {
            if !*flag {
                *flag = pull[l * q..(l + 1) * q]
                    .iter()
                    .any(|&e| e != BOUNDARY && e & HALO_FLAG != 0);
            }
        }
        let partition = SitePartition::from_flags(&frontier);

        Ok(DistSolver {
            comm,
            geo,
            owner,
            locals,
            model,
            cfg,
            f_next,
            moments: vec![(1.0, [0.0; 3]); nl],
            f,
            bc_velocity,
            pull,
            send_plan,
            recv_plan,
            halo: vec![0.0; n_halo],
            mrt,
            soa,
            kinds,
            partition,
            pack_scratch: Vec::new(),
            recv_scratch: Vec::new(),
            step: 0,
        })
    }

    /// Global ids of this rank's sites (ascending).
    pub fn local_sites(&self) -> &[u32] {
        &self.locals
    }

    /// Number of peer ranks this rank exchanges halo data with.
    pub fn neighbour_count(&self) -> usize {
        self.recv_plan.len().max(self.send_plan.len())
    }

    /// Halo values (f64 populations) this rank sends per step.
    pub fn halo_send_volume(&self) -> usize {
        self.send_plan.iter().map(|(_, l)| l.len()).sum()
    }

    /// Replace the BC of inlet `id` at runtime (steering). Must be
    /// called identically on every rank.
    pub fn set_inlet_bc(&mut self, id: usize, bc: crate::boundary::IoletBc) {
        if id >= self.cfg.inlet_bcs.len() {
            self.cfg.inlet_bcs.resize(id + 1, bc);
        }
        self.cfg.inlet_bcs[id] = bc;
        let bc_all = precompute_bc_velocities(&self.geo, &self.cfg);
        self.bc_velocity = self.locals.iter().map(|&g| bc_all[g as usize]).collect();
    }

    /// Replace the BC of outlet `id` at runtime (steering). Must be
    /// called identically on every rank.
    pub fn set_outlet_bc(&mut self, id: usize, bc: crate::boundary::IoletBc) {
        if id >= self.cfg.outlet_bcs.len() {
            self.cfg.outlet_bcs.resize(id + 1, bc);
        }
        self.cfg.outlet_bcs[id] = bc;
        let bc_all = precompute_bc_velocities(&self.geo, &self.cfg);
        self.bc_velocity = self.locals.iter().map(|&g| bc_all[g as usize]).collect();
    }

    /// Whether this rank runs the overlapped step schedule: overlap must
    /// be configured on, there must be peers to exchange with, and there
    /// must be interior sites to compute under the in-flight messages.
    /// Degenerate domains (zero-peer ranks, all-frontier single-brick
    /// ranks) take the synchronous fast path.
    pub fn overlap_active(&self) -> bool {
        self.cfg.overlap
            && !(self.send_plan.is_empty() && self.recv_plan.is_empty())
            && self.partition.interior_count() > 0
    }

    /// The interior/frontier site split compiled at setup.
    pub fn partition(&self) -> &SitePartition {
        &self.partition
    }

    /// The pull-table entry of `(local_site, dir)`: a local source
    /// index, `HALO_FLAG | slot`, or the boundary sentinel `u32::MAX`.
    /// Test-only hook for classifier validation from integration tests.
    #[doc(hidden)]
    pub fn debug_pull_entry(&self, l: usize, dir: usize) -> u32 {
        self.pull[l * self.model.q + dir]
    }

    /// Stage the requested post-collision populations for every peer
    /// into contiguous scratch and encode each peer's message as one
    /// length-prefixed `f64` slice (the bulk wire path).
    fn pack_halo(&mut self) -> Vec<(usize, Bytes)> {
        let q = self.model.q;
        let scratch = &mut self.pack_scratch;
        self.send_plan
            .iter()
            .map(|(peer, requests)| {
                scratch.clear();
                match &self.soa {
                    Some(soa) => {
                        scratch.extend(requests.iter().map(|&(l, d)| soa.f[d as usize][l as usize]))
                    }
                    None => scratch.extend(
                        requests
                            .iter()
                            .map(|&(l, d)| self.f[l as usize * q + d as usize]),
                    ),
                }
                let mut w = WireWriter::with_capacity(8 + scratch.len() * 8);
                w.put_f64_slice(scratch);
                (*peer, w.finish())
            })
            .collect()
    }

    /// Decode one peer's halo payload (bulk `f64` slice) into its slot
    /// range of the halo buffer.
    fn unpack_halo(&mut self, peer: usize, payload: Bytes) -> CommResult<()> {
        let &(_, start, count) = self
            .recv_plan
            .iter()
            .find(|(p, _, _)| *p == peer)
            .expect("payload from a rank outside the receive plan");
        let mut r = WireReader::new(payload);
        r.get_f64_slice(&mut self.recv_scratch)?;
        assert_eq!(
            self.recv_scratch.len(),
            count,
            "halo payload from rank {peer} has the wrong population count"
        );
        self.halo[start..start + count].copy_from_slice(&self.recv_scratch);
        Ok(())
    }

    /// Advance one time step: collide, halo-exchange, stream.
    ///
    /// Collide and stream run through the chunked kernels in
    /// [`crate::kernel`]: inside a rayon pool (the runner's
    /// threads-per-rank knob) the site loops split across worker
    /// threads, and with one thread they degenerate to the exact serial
    /// loops — bit-identical either way. With overlap active (the
    /// default; see [`SolverConfig::with_overlap`]) the halo exchange
    /// runs concurrently with the interior collide+stream; both
    /// schedules produce bit-identical states.
    pub fn step(&mut self) -> CommResult<()> {
        // The LB step drives the fault clock: a `FaultPlan` keyed by
        // step sees the simulation's notion of time (no-op without an
        // active plan).
        self.comm.set_fault_step(self.step);
        if self.overlap_active() {
            self.step_overlapped()?;
        } else {
            self.step_sync()?;
        }
        self.step += 1;
        Ok(())
    }

    /// The synchronous schedule: collide all, exchange (draining
    /// receives in arrival order), stream all.
    fn step_sync(&mut self) -> CommResult<()> {
        // Collide in place (f becomes f*).
        let span = self.comm.with_obs(|o| o.begin());
        if let Some(soa) = self.soa.as_mut() {
            let simd = self.cfg.layout == KernelLayout::SoaSimd;
            crate::kernel::par_collide_soa(
                &self.model,
                self.cfg.collision,
                self.cfg.tau,
                self.mrt.as_ref(),
                &mut soa.f,
                &mut self.moments,
                simd,
            );
        } else {
            crate::kernel::par_collide(
                &self.model,
                self.cfg.collision,
                self.cfg.tau,
                self.mrt.as_ref(),
                &mut self.f,
                &mut self.moments,
            );
        }
        self.comm.with_obs(|o| span.end(o, "lb.collide"));

        // Halo exchange of requested post-collision populations.
        let span = self.comm.with_obs(|o| o.begin());
        let outgoing = self.pack_halo();
        self.comm.with_obs(|o| span.end(o, "lb.halo-pack"));
        // The halo-wait spans cover posting the (buffered) sends and
        // blocking on peers' post-collision data. Receives drain in
        // arrival order so one slow peer does not delay unpacking of
        // already-delivered payloads.
        let span = self.comm.with_obs(|o| o.begin());
        self.comm.exchange_start(T_HALO, &outgoing)?;
        self.comm.with_obs(|o| span.end(o, "lb.halo-wait"));
        let mut remaining: Vec<usize> = self.recv_plan.iter().map(|(peer, _, _)| *peer).collect();
        while !remaining.is_empty() {
            let span = self.comm.with_obs(|o| o.begin());
            let (peer, payload) = self.comm.recv_any_of(T_HALO, &remaining)?;
            self.comm.with_obs(|o| span.end(o, "lb.halo-wait"));
            let pos = remaining.iter().position(|&p| p == peer).expect("listed");
            remaining.swap_remove(pos);
            self.unpack_halo(peer, payload)?;
        }

        // Stream: disjoint chunks of f_next, all reading the immutable
        // post-collision state (local f + halo) — race-free, bit-exact.
        let span = self.comm.with_obs(|o| o.begin());
        let full = [(0u32, self.locals.len() as u32)];
        self.stream_ranges(&full);
        self.comm.with_obs(|o| span.end(o, "lb.stream"));
        self.swap_after_stream();
        Ok(())
    }

    /// The overlapped schedule (bit-identical to [`Self::step_sync`]):
    ///
    /// 1. collide the frontier only — exactly the populations peers wait
    ///    on, plus the sites that will need peers' data;
    /// 2. pack from frontier scratch and post all sends;
    /// 3. collide + stream the interior while messages are in flight
    ///    (interior streaming touches no halo slot by construction);
    /// 4. drain receives in arrival order, unpacking each payload as it
    ///    lands — the remaining blocked time is the *residual* halo wait;
    /// 5. stream the frontier from the now-complete halo buffer.
    ///
    /// Ordering argument for bit-exactness: collide is per-site
    /// independent and chunk-offset-invariant, so splitting it into
    /// frontier/interior phases changes no value; every collide finishes
    /// before any stream that could read it (interior streams after
    /// phases 1 and 3a; the frontier streams last); and the pack in
    /// phase 2 reads only frontier sites, which phase 3 never touches.
    fn step_overlapped(&mut self) -> CommResult<()> {
        let simd = self.cfg.layout == KernelLayout::SoaSimd;
        let frontier = self.partition.frontier_ranges().to_vec();
        let interior = self.partition.interior_ranges().to_vec();

        // (1) Frontier-first collide.
        let span = self.comm.with_obs(|o| o.begin());
        self.collide_ranges(&frontier, simd);
        self.comm.with_obs(|o| span.end(o, "lb.collide-frontier"));

        // (2) Pack and post all sends; messages are now in flight.
        let span = self.comm.with_obs(|o| o.begin());
        let outgoing = self.pack_halo();
        self.comm.exchange_start(T_HALO, &outgoing)?;
        self.comm.with_obs(|o| span.end(o, "lb.halo-pack"));

        // (3) Interior compute under the in-flight exchange. The inner
        // spans keep feeding the classic lb.collide / lb.stream phases;
        // the umbrella span measures how much latency-hiding work this
        // rank had available.
        let overlap_span = self.comm.with_obs(|o| o.begin());
        let span = self.comm.with_obs(|o| o.begin());
        self.collide_ranges(&interior, simd);
        self.comm.with_obs(|o| span.end(o, "lb.collide"));
        let span = self.comm.with_obs(|o| o.begin());
        self.stream_ranges(&interior);
        self.comm.with_obs(|o| span.end(o, "lb.stream"));
        let compute_secs = self
            .comm
            .with_obs(|o| overlap_span.end(o, "lb.overlap.compute"));

        // (4) Residual drain: only time still blocked *after* the
        // interior work counts as halo wait under overlap.
        let mut residual_secs = 0.0;
        let mut remaining: Vec<usize> = self.recv_plan.iter().map(|(peer, _, _)| *peer).collect();
        while !remaining.is_empty() {
            let span = self.comm.with_obs(|o| o.begin());
            let (peer, payload) = self.comm.recv_any_of(T_HALO, &remaining)?;
            residual_secs += self.comm.with_obs(|o| span.end(o, "lb.halo-wait"));
            let pos = remaining.iter().position(|&p| p == peer).expect("listed");
            remaining.swap_remove(pos);
            self.unpack_halo(peer, payload)?;
        }

        // (5) Frontier stream from the complete halo buffer.
        let span = self.comm.with_obs(|o| o.begin());
        self.stream_ranges(&frontier);
        self.comm.with_obs(|o| span.end(o, "lb.stream"));
        self.swap_after_stream();

        self.comm.note_overlap(compute_secs, residual_secs);
        Ok(())
    }

    /// Collide the sites in `ranges` in place, recording their moments;
    /// sites outside the ranges are untouched.
    fn collide_ranges(&mut self, ranges: &[(u32, u32)], simd: bool) {
        if let Some(soa) = self.soa.as_mut() {
            crate::kernel::par_collide_soa_ranges(
                &self.model,
                self.cfg.collision,
                self.cfg.tau,
                self.mrt.as_ref(),
                &mut soa.f,
                &mut self.moments,
                ranges,
                simd,
            );
        } else {
            crate::kernel::par_collide_ranges(
                &self.model,
                self.cfg.collision,
                self.cfg.tau,
                self.mrt.as_ref(),
                &mut self.f,
                &mut self.moments,
                ranges,
            );
        }
    }

    /// Pull-stream the destination sites in `ranges` into the next
    /// buffer; reads only immutable post-collision state. Does **not**
    /// swap the double buffers — the overlapped step streams in two
    /// pieces before one swap.
    fn stream_ranges(&mut self, ranges: &[(u32, u32)]) {
        if let Some(soa) = self.soa.as_mut() {
            let (f_old, f_next, plan) = soa.split_for_stream();
            crate::kernel::par_stream_soa_ranges(
                &self.model,
                &self.cfg,
                &self.kinds,
                f_old,
                plan,
                &self.moments,
                &self.bc_velocity,
                &self.halo,
                self.step,
                ranges,
                f_next,
            );
        } else {
            par_stream_halo_ranges(
                &self.model,
                &self.cfg,
                &self.geo,
                &self.locals,
                &self.f,
                &self.moments,
                &self.bc_velocity,
                &self.pull,
                &self.halo,
                self.step,
                ranges,
                &mut self.f_next,
            );
        }
    }

    /// Swap the double buffers once all destination sites are streamed.
    fn swap_after_stream(&mut self) {
        match self.soa.as_mut() {
            Some(soa) => soa.swap_buffers(),
            None => std::mem::swap(&mut self.f, &mut self.f_next),
        }
    }

    /// Advance `count` steps.
    pub fn step_n(&mut self, count: u64) -> CommResult<()> {
        for _ in 0..count {
            self.step()?;
        }
        Ok(())
    }

    /// Adopt a new domain decomposition **mid-run**, migrating each
    /// site's distributions to its new owner (paper §IV-B: "the
    /// opportunity to adjust the partitioning mid-term is introduced.
    /// This repartitioning helps to improve load balance greatly").
    ///
    /// Collective; every rank passes the same `new_owner`. The physics
    /// is untouched: stepping after a repartition is bit-identical to
    /// never having repartitioned (asserted in tests). Returns the
    /// number of sites this rank shipped away.
    pub fn repartition(&mut self, new_owner: Vec<usize>) -> CommResult<usize> {
        let span = self.comm.with_obs(|o| o.begin());
        assert_eq!(new_owner.len(), self.geo.fluid_count());
        assert!(new_owner.iter().all(|&o| o < self.comm.size()));
        let me = self.comm.rank();
        let q = self.model.q;

        // Partition my sites into kept and outgoing-by-new-owner.
        let mut kept: Vec<(u32, Vec<f64>)> = Vec::new();
        let mut outgoing: Vec<Vec<(u32, Vec<f64>)>> = vec![Vec::new(); self.comm.size()];
        let mut moved = 0usize;
        for (l, &g) in self.locals.iter().enumerate() {
            let fs = self.site_f(l);
            let no = new_owner[g as usize];
            if no == me {
                kept.push((g, fs));
            } else {
                outgoing[no].push((g, fs));
                moved += 1;
            }
        }

        // Counts first (collective control), then payloads under the
        // migration tag so the traffic is attributed correctly.
        let counts: Vec<Bytes> = outgoing
            .iter()
            .map(|b| {
                let mut w = WireWriter::with_capacity(8);
                w.put_u64(b.len() as u64);
                w.finish()
            })
            .collect();
        let incoming_counts = self.comm.all_to_all(counts)?;
        for (dst, batch) in outgoing.iter().enumerate() {
            if dst != me && !batch.is_empty() {
                let mut w = WireWriter::with_capacity(batch.len() * (4 + q * 8));
                for (g, fs) in batch {
                    w.put_u32(*g);
                    for &v in fs {
                        w.put_f64(v);
                    }
                }
                self.comm.send(dst, T_MIGRATE, w.finish())?;
            }
        }
        for (src, payload) in incoming_counts.into_iter().enumerate() {
            if src == me {
                continue;
            }
            let mut r = WireReader::new(payload);
            let n = r.get_u64()?;
            if n == 0 {
                continue;
            }
            let mut rr = WireReader::new(self.comm.recv(src, T_MIGRATE)?);
            for _ in 0..n {
                let g = rr.get_u32()?;
                let mut fs = Vec::with_capacity(q);
                for _ in 0..q {
                    fs.push(rr.get_f64()?);
                }
                kept.push((g, fs));
            }
        }

        // Rebuild the solver state for the new decomposition and install
        // the migrated distributions.
        let step = self.step;
        let mut fresh = DistSolver::new(self.geo.clone(), new_owner, self.cfg.clone(), self.comm)?;
        let mut g2l = vec![u32::MAX; self.geo.fluid_count()];
        for (l, &g) in fresh.locals.iter().enumerate() {
            g2l[g as usize] = l as u32;
        }
        let mut installed = 0usize;
        for (g, fs) in kept {
            let l = g2l[g as usize];
            assert_ne!(l, u32::MAX, "migrated site {g} not owned under new map");
            fresh.set_site_f(l as usize, &fs);
            installed += 1;
        }
        assert_eq!(
            installed,
            fresh.locals.len(),
            "every new-local site received data"
        );
        fresh.step = step;
        *self = fresh;
        self.comm.note_rebalance();
        self.comm.with_obs(|o| {
            o.count("lb.rebalance.count", 1);
            o.count("lb.rebalance.sites_moved", moved as u64);
            span.end(o, "lb.repartition")
        });
        Ok(moved)
    }

    /// Snapshot of this rank's sites only (indexed like
    /// [`DistSolver::local_sites`]).
    pub fn local_snapshot(&self) -> FieldSnapshot {
        let nl = self.locals.len();
        let mut rho = vec![0.0; nl];
        let mut u = vec![[0.0; 3]; nl];
        let mut shear = vec![0.0; nl];
        let span = self.comm.with_obs(|o| o.begin());
        match &self.soa {
            Some(soa) => crate::kernel::par_macroscopics_soa(
                &self.model,
                self.cfg.tau,
                &soa.f,
                &mut rho,
                &mut u,
                &mut shear,
            ),
            None => crate::kernel::par_macroscopics(
                &self.model,
                self.cfg.tau,
                &self.f,
                &mut rho,
                &mut u,
                &mut shear,
            ),
        }
        self.comm.with_obs(|o| span.end(o, "lb.macroscopics"));
        FieldSnapshot {
            step: self.step,
            rho,
            u,
            shear,
        }
    }

    /// Gather the global snapshot at rank 0 (collective). Non-root ranks
    /// receive `None`.
    pub fn gather_snapshot(&self) -> CommResult<Option<FieldSnapshot>> {
        let local = self.local_snapshot();
        let mut w = WireWriter::with_capacity(local.len() * 40);
        w.put_f64_slice(&local.rho);
        w.put_usize(local.u.len());
        for v in &local.u {
            w.put(&[v[0], v[1], v[2]]);
        }
        w.put_f64_slice(&local.shear);
        let gathered = self.comm.gather(0, w.finish())?;
        let Some(parts) = gathered else {
            return Ok(None);
        };
        let n = self.geo.fluid_count();
        let mut rho = vec![0.0; n];
        let mut u = vec![[0.0; 3]; n];
        let mut shear = vec![0.0; n];
        for (rank, payload) in parts.into_iter().enumerate() {
            let ids = locals_of(&self.owner, rank);
            let mut r = WireReader::new(payload);
            let rho_l = r.get_f64_vec()?;
            let nu = r.get_usize()?;
            let mut u_l = Vec::with_capacity(nu);
            for _ in 0..nu {
                let a: [f64; 3] = r.get()?;
                u_l.push(a);
            }
            let shear_l = r.get_f64_vec()?;
            assert_eq!(ids.len(), rho_l.len(), "rank {rank} payload mismatch");
            for (k, &g) in ids.iter().enumerate() {
                rho[g as usize] = rho_l[k];
                u[g as usize] = u_l[k];
                shear[g as usize] = shear_l[k];
            }
        }
        Ok(Some(FieldSnapshot {
            step: self.step,
            rho,
            u,
            shear,
        }))
    }

    /// Global mass via all-reduce (collective).
    pub fn mass(&self) -> CommResult<f64> {
        let local: f64 = match &self.soa {
            Some(soa) => soa.mass(),
            None => self.f.iter().sum(),
        };
        self.comm.all_reduce_f64(local, |a, b| a + b)
    }

    /// Completed steps.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// This rank's index (checkpoint naming).
    pub fn comm_rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of discrete velocities.
    pub fn model_q(&self) -> usize {
        self.model.q
    }

    /// This rank's whole local distribution array in the canonical
    /// site-major order (borrowed for the legacy layout, transposed on
    /// the fly for SoA).
    pub fn raw_distributions(&self) -> Cow<'_, [f64]> {
        match &self.soa {
            Some(soa) => Cow::Owned(soa.to_site_major()),
            None => Cow::Borrowed(&self.f),
        }
    }

    /// The `q` populations of local site `l`, direction order.
    fn site_f(&self, l: usize) -> Vec<f64> {
        match &self.soa {
            Some(soa) => soa.site_values(l),
            None => {
                let q = self.model.q;
                self.f[l * q..(l + 1) * q].to_vec()
            }
        }
    }

    /// Overwrite the `q` populations of local site `l`.
    fn set_site_f(&mut self, l: usize, values: &[f64]) {
        match self.soa.as_mut() {
            Some(soa) => soa.set_site_values(l, values),
            None => {
                let q = self.model.q;
                self.f[l * q..(l + 1) * q].copy_from_slice(values);
            }
        }
    }

    /// Block until every rank reaches this point (checkpoint fencing).
    pub fn barrier(&self) -> CommResult<()> {
        self.comm.barrier()
    }

    /// The communicator this solver was built over (collective helpers
    /// in sibling modules, e.g. checkpoint restore agreement).
    pub(crate) fn comm(&self) -> &'a Communicator {
        self.comm
    }

    /// Overwrite the local dynamical state from a site-major array
    /// (checkpoint restore); layout-agnostic.
    pub(crate) fn install_state(&mut self, step: u64, f: Vec<f64>) {
        assert_eq!(f.len(), self.locals.len() * self.model.q);
        match self.soa.as_mut() {
            Some(soa) => soa.install_site_major(&f),
            None => self.f = f,
        }
        self.step = step;
    }

    /// The geometry.
    pub fn geometry(&self) -> &Arc<SparseGeometry> {
        &self.geo
    }

    /// The owner map.
    pub fn owner(&self) -> &[usize] {
        &self.owner
    }

    /// The configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    /// The lattice model in use (the adaptive load balancer sizes
    /// migration payloads from `model().q`).
    pub fn model(&self) -> &LatticeModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::{run_spmd, run_spmd_with_stats, TagClass};

    fn demo_geo() -> Arc<SparseGeometry> {
        Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0))
    }

    /// Contiguous owner map splitting sites evenly by index.
    fn even_owner(n: usize, p: usize) -> Vec<usize> {
        (0..n).map(|s| (s * p / n).min(p - 1)).collect()
    }

    #[test]
    fn distributed_equals_serial_bitwise() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        serial.step_n(20);
        let reference = serial.snapshot();

        for p in [1, 2, 3, 4] {
            let geo2 = geo.clone();
            let cfg2 = cfg.clone();
            let results = run_spmd(p, move |comm| {
                let owner = even_owner(geo2.fluid_count(), comm.size());
                let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
                ds.step_n(20).unwrap();
                ds.gather_snapshot().unwrap()
            });
            let gathered = results[0].as_ref().expect("root gathers");
            assert_eq!(gathered.rho.len(), reference.rho.len());
            for s in 0..reference.rho.len() {
                assert_eq!(gathered.rho[s], reference.rho[s], "rho at site {s}, p={p}");
                assert_eq!(gathered.u[s], reference.u[s], "u at site {s}, p={p}");
            }
        }
    }

    #[test]
    fn distributed_with_threads_per_rank_equals_serial_bitwise() {
        // Hybrid decomposition: ranks × on-rank rayon workers. The
        // chunked kernels keep every (p, t) combination bit-identical
        // to the serial solver.
        use hemelb_parallel::{run_spmd_opts, SpmdOptions};
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        serial.step_n(20);
        let reference = serial.snapshot();

        for (p, t) in [(1, 4), (2, 2), (3, 3)] {
            let geo2 = geo.clone();
            let cfg2 = cfg.clone();
            let out = run_spmd_opts(
                p,
                SpmdOptions {
                    threads_per_rank: t,
                    ..Default::default()
                },
                move |comm| {
                    let owner = even_owner(geo2.fluid_count(), comm.size());
                    let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
                    ds.step_n(20).unwrap();
                    ds.gather_snapshot().unwrap()
                },
            );
            let gathered = out.results[0].as_ref().expect("root gathers");
            for s in 0..reference.rho.len() {
                assert_eq!(
                    gathered.rho[s], reference.rho[s],
                    "rho at {s}, p={p}, t={t}"
                );
                assert_eq!(gathered.u[s], reference.u[s], "u at {s}, p={p}, t={t}");
            }
        }
    }

    #[test]
    fn halo_traffic_scales_with_cut_not_volume() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let geo2 = geo.clone();
        let out = run_spmd_with_stats(4, move |comm| {
            let owner = even_owner(geo2.fluid_count(), comm.size());
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
            ds.step_n(5).unwrap();
            ds.halo_send_volume()
        });
        let halo_bytes = out.summary.total.bytes(TagClass::Halo);
        assert!(halo_bytes > 0, "cross-rank links must exist");
        // Halo per step = f64 per (site, dir) crossing the cut; 5 steps.
        let per_step: usize = out.results.iter().sum::<usize>() * 8;
        // Construction also used halo-tagged plan messages; bound loosely.
        assert!(
            halo_bytes as usize >= per_step * 5,
            "expected at least {} bytes, saw {halo_bytes}",
            per_step * 5
        );
        // The cut is tiny compared with shipping whole subdomains.
        let q = cfg_q();
        let full_volume = geo.fluid_count() * q * 8 * 5;
        assert!((halo_bytes as usize) < full_volume / 2);
    }

    fn cfg_q() -> usize {
        crate::model::LatticeModel::d3q15().q
    }

    #[test]
    fn mass_agrees_with_serial() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.0, 1.0);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        serial.step_n(3);
        let m_serial = serial.mass();
        let geo2 = geo.clone();
        let results = run_spmd(3, move |comm| {
            let owner = even_owner(geo2.fluid_count(), comm.size());
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
            ds.step_n(3).unwrap();
            ds.mass().unwrap()
        });
        for m in results {
            assert!((m - m_serial).abs() < 1e-9);
        }
    }

    #[test]
    fn single_rank_dist_solver_matches_serial_without_comm() {
        let geo = demo_geo();
        let cfg = SolverConfig::velocity_driven(0.03);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        serial.step_n(10);
        let reference = serial.snapshot();
        let geo2 = geo.clone();
        let out = run_spmd_with_stats(1, move |comm| {
            let owner = vec![0; geo2.fluid_count()];
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
            ds.step_n(10).unwrap();
            ds.local_snapshot()
        });
        assert_eq!(out.results[0].rho, reference.rho);
        assert_eq!(
            out.summary.total.bytes(TagClass::Halo),
            0,
            "no peers, no halo"
        );
    }

    #[test]
    fn repartition_mid_run_preserves_physics_bitwise() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        serial.step_n(20);
        let reference = serial.snapshot();

        let geo2 = geo.clone();
        let out = run_spmd_with_stats(4, move |comm| {
            let n = geo2.fluid_count();
            let owner_a = even_owner(n, comm.size());
            // A completely different (reversed) decomposition.
            let owner_b: Vec<usize> = owner_a.iter().map(|&o| comm.size() - 1 - o).collect();
            let mut ds = DistSolver::new(geo2.clone(), owner_a, cfg.clone(), comm).unwrap();
            ds.step_n(10).unwrap();
            let moved = ds.repartition(owner_b.clone()).unwrap();
            assert_eq!(ds.owner(), &owner_b[..], "owner map adopted");
            ds.step_n(10).unwrap();
            (ds.gather_snapshot().unwrap(), moved, ds.step_count())
        });
        let (snap, _, steps) = &out.results[0];
        assert_eq!(*steps, 20);
        let gathered = snap.as_ref().unwrap();
        for s in 0..reference.rho.len() {
            assert_eq!(gathered.rho[s], reference.rho[s], "site {s}");
            assert_eq!(gathered.u[s], reference.u[s], "site {s}");
        }
        // Everything moved (reversed map) and was counted as migration
        // traffic.
        let moved_total: usize = out.results.iter().map(|r| r.1).sum();
        assert_eq!(moved_total, geo.fluid_count());
        assert!(out.summary.total.bytes(TagClass::Migration) > 0);
    }

    #[test]
    fn repartition_to_same_owner_is_a_no_op_migration() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.0, 1.0);
        let geo2 = geo.clone();
        let out = run_spmd_with_stats(3, move |comm| {
            let owner = even_owner(geo2.fluid_count(), comm.size());
            let mut ds = DistSolver::new(geo2.clone(), owner.clone(), cfg.clone(), comm).unwrap();
            ds.step_n(3).unwrap();
            ds.repartition(owner).unwrap()
        });
        assert!(out.results.iter().all(|&m| m == 0), "nothing moves");
        assert_eq!(out.summary.total.bytes(TagClass::Migration), 0);
    }

    /// Satellite: validate streaming-index construction at **rank
    /// boundaries per link orientation**. With an explicit x-slab
    /// decomposition, every pull entry must agree with an independent
    /// geometry + owner-map query: boundary sentinel for missing links,
    /// a local index resolving to the right global site for owned
    /// sources, and a halo slot exactly when the source belongs to the
    /// peer. Orientation coverage: the low-x rank may only have halo
    /// links on directions pulling from higher x (`c_x = −1`), the
    /// high-x rank only on `c_x = +1`, and x-neutral directions never
    /// cross the cut.
    #[test]
    fn halo_slots_marked_per_orientation_at_rank_boundaries() {
        let geo = demo_geo();
        let x_cut = geo.shape()[0] as u32 / 2;
        let owner: Vec<usize> = (0..geo.fluid_count() as u32)
            .map(|s| usize::from(geo.position(s)[0] >= x_cut))
            .collect();
        for layout in [KernelLayout::Legacy, KernelLayout::SoaSimd] {
            let cfg = SolverConfig::pressure_driven(1.01, 0.99).with_layout(layout);
            let geo2 = geo.clone();
            let owner2 = owner.clone();
            run_spmd(2, move |comm| {
                let ds = DistSolver::new(geo2.clone(), owner2.clone(), cfg.clone(), comm).unwrap();
                let me = comm.rank();
                let q = ds.model.q;
                let mut halo_links = vec![0usize; q];
                for (l, &g) in ds.locals.iter().enumerate() {
                    let [x, y, z] = geo2.position(g);
                    for (i, links) in halo_links.iter_mut().enumerate() {
                        let c = ds.model.c[i];
                        let src = geo2.site_at(
                            x as i64 - c[0] as i64,
                            y as i64 - c[1] as i64,
                            z as i64 - c[2] as i64,
                        );
                        let entry = ds.pull[l * q + i];
                        if let Some(soa) = &ds.soa {
                            assert_eq!(
                                soa.stream_entry(i, l),
                                entry,
                                "SoA stream table must mirror the pull table"
                            );
                        }
                        match src {
                            None => assert_eq!(entry, BOUNDARY, "dir {i} at local {l}"),
                            Some(sg) if owner2[sg as usize] == me => {
                                assert_eq!(entry & HALO_FLAG, 0, "owned source marked halo");
                                assert_eq!(
                                    ds.locals[entry as usize], sg,
                                    "dir {i} at local {l}: wrong local source"
                                );
                            }
                            Some(_) => {
                                assert_ne!(entry, BOUNDARY);
                                assert_ne!(entry & HALO_FLAG, 0, "peer source must be a halo slot");
                                assert!(((entry & !HALO_FLAG) as usize) < ds.halo.len());
                                *links += 1;
                            }
                        }
                    }
                }
                for (i, &links) in halo_links.iter().enumerate().take(q) {
                    let cx = ds.model.c[i][0];
                    let crosses = (me == 0 && cx == -1) || (me == 1 && cx == 1);
                    if crosses {
                        assert!(
                            links > 0,
                            "rank {me}: direction {i} (c_x = {cx}) must cross the cut"
                        );
                    } else {
                        assert_eq!(
                            links, 0,
                            "rank {me}: direction {i} (c_x = {cx}) must not cross the cut"
                        );
                    }
                }
            });
        }
    }

    /// Satellite: the interior/frontier classifier, validated **per
    /// link orientation at rank boundaries** with the same explicit
    /// x-slab decomposition as the pull-table test above. A site must
    /// be frontier iff it appears in the send plan or owns a halo pull
    /// link; the compiled [`SitePartition`] must agree with that
    /// definition, and the two range lists must tile the local site
    /// list exactly once.
    #[test]
    fn frontier_classification_per_orientation_at_rank_boundaries() {
        let geo = demo_geo();
        let x_cut = geo.shape()[0] as u32 / 2;
        let owner: Vec<usize> = (0..geo.fluid_count() as u32)
            .map(|s| usize::from(geo.position(s)[0] >= x_cut))
            .collect();
        for layout in [
            KernelLayout::Legacy,
            KernelLayout::SoaScalar,
            KernelLayout::SoaSimd,
        ] {
            let cfg = SolverConfig::pressure_driven(1.01, 0.99).with_layout(layout);
            let geo2 = geo.clone();
            let owner2 = owner.clone();
            run_spmd(2, move |comm| {
                let ds = DistSolver::new(geo2.clone(), owner2.clone(), cfg.clone(), comm).unwrap();
                let me = comm.rank();
                let q = ds.model.q;
                let nl = ds.locals.len();

                // Independent reconstruction of the frontier set.
                let mut expected = vec![false; nl];
                for (_, requests) in &ds.send_plan {
                    for &(l, _) in requests {
                        expected[l as usize] = true;
                    }
                }
                for (l, flag) in expected.iter_mut().enumerate() {
                    *flag |= (0..q).any(|d| {
                        let e = ds.pull[l * q + d];
                        e != BOUNDARY && e & HALO_FLAG != 0
                    });
                }
                for (l, &want) in expected.iter().enumerate() {
                    assert_eq!(
                        ds.partition.is_frontier(l),
                        want,
                        "rank {me}: site {l} misclassified"
                    );
                }

                // Per orientation: only links crossing the x-cut may
                // make a site frontier, and every crossing orientation
                // must contribute at least one frontier site.
                for (i, c) in ds.model.c.iter().enumerate() {
                    let crosses = (me == 0 && c[0] == -1) || (me == 1 && c[0] == 1);
                    let halo_sites = (0..nl)
                        .filter(|&l| {
                            let e = ds.pull[l * q + i];
                            e != BOUNDARY && e & HALO_FLAG != 0
                        })
                        .count();
                    if crosses {
                        assert!(halo_sites > 0, "rank {me}: dir {i} should cross the cut");
                    } else {
                        assert_eq!(halo_sites, 0, "rank {me}: dir {i} must not cross");
                    }
                    for l in 0..nl {
                        let e = ds.pull[l * q + i];
                        if e != BOUNDARY && e & HALO_FLAG != 0 {
                            assert!(ds.partition.is_frontier(l));
                        }
                    }
                }

                // The two range lists tile [0, nl) exactly once.
                let mut covered = vec![0u32; nl];
                for &(start, len) in ds
                    .partition
                    .frontier_ranges()
                    .iter()
                    .chain(ds.partition.interior_ranges())
                {
                    for l in start..start + len {
                        covered[l as usize] += 1;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "rank {me}: ranges must tile"
                );
                assert_eq!(
                    ds.partition.frontier_count() + ds.partition.interior_count(),
                    nl,
                    "rank {me}: counts partition the site list"
                );

                // An x-slab of a 16-long tube has interior sites, so
                // overlap engages by default.
                assert!(ds.overlap_active(), "rank {me}: overlap should engage");
            });
        }
    }

    /// Satellite: interior stream segments must contain **no halo
    /// reads** — that is the invariant letting the overlapped step
    /// stream the interior before any receive has landed.
    #[test]
    fn interior_stream_segments_have_no_halo_reads() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        for p in [2, 3, 4] {
            let geo2 = geo.clone();
            let cfg2 = cfg.clone();
            run_spmd(p, move |comm| {
                let owner = even_owner(geo2.fluid_count(), comm.size());
                let ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
                let q = ds.model.q;
                for &(start, len) in ds.partition.interior_ranges() {
                    for l in start..start + len {
                        for d in 0..q {
                            let entry = ds.pull[l as usize * q + d];
                            assert!(
                                entry == BOUNDARY || entry & HALO_FLAG == 0,
                                "rank {}: interior site {l} dir {d} reads the halo",
                                comm.rank()
                            );
                        }
                    }
                }
            });
        }
    }

    /// Satellite: degenerate domains take the synchronous fast path —
    /// a zero-peer rank has nothing to overlap with, an all-frontier
    /// slab has no interior to hide latency behind, and `with_overlap
    /// (false)` opts out explicitly. All still step correctly.
    #[test]
    fn degenerate_domains_take_the_sync_fast_path() {
        // Zero peers: single rank owns everything.
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let geo2 = geo.clone();
        let cfg2 = cfg.clone();
        run_spmd(1, move |comm| {
            let owner = vec![0; geo2.fluid_count()];
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
            assert_eq!(ds.partition.frontier_count(), 0, "no peers, no frontier");
            assert!(!ds.overlap_active(), "zero-peer rank must not overlap");
            ds.step_n(3).unwrap();
        });

        // All-frontier: a 2-voxel-long tube split across the x axis
        // leaves each rank a one-layer slab where every site touches
        // the cut.
        let thin = Arc::new(VesselBuilder::straight_tube(2.0, 3.0).voxelise(1.0));
        let x_cut = thin.shape()[0] as u32 / 2;
        let owner: Vec<usize> = (0..thin.fluid_count() as u32)
            .map(|s| usize::from(thin.position(s)[0] >= x_cut))
            .collect();
        let thin2 = thin.clone();
        let cfg2 = cfg.clone();
        run_spmd(2, move |comm| {
            let mut ds = DistSolver::new(thin2.clone(), owner.clone(), cfg2.clone(), comm).unwrap();
            assert_eq!(
                ds.partition.interior_count(),
                0,
                "one-layer slab is all frontier"
            );
            assert!(!ds.overlap_active(), "all-frontier rank must not overlap");
            ds.step_n(3).unwrap();
        });

        // Explicit opt-out with peers and interior present.
        let geo2 = geo.clone();
        let cfg_off = cfg.with_overlap(false);
        run_spmd(2, move |comm| {
            let owner = even_owner(geo2.fluid_count(), comm.size());
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg_off.clone(), comm).unwrap();
            assert!(ds.partition.interior_count() > 0);
            assert!(!ds.overlap_active(), "with_overlap(false) must opt out");
            ds.step_n(3).unwrap();
        });
    }

    /// Overlapped and synchronous schedules are bit-identical (the
    /// heavyweight proptest over geometries × layouts lives in
    /// `tests/overlap.rs`; this is the fast in-module check).
    #[test]
    fn overlapped_step_matches_sync_bitwise_quick() {
        let geo = demo_geo();
        let base = SolverConfig::pressure_driven(1.01, 0.99);
        for layout in [KernelLayout::Legacy, KernelLayout::SoaSimd] {
            let snapshots: Vec<_> = [true, false]
                .into_iter()
                .map(|overlap| {
                    let geo2 = geo.clone();
                    let cfg = base.clone().with_layout(layout).with_overlap(overlap);
                    let results = run_spmd(3, move |comm| {
                        let owner = even_owner(geo2.fluid_count(), comm.size());
                        let mut ds =
                            DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
                        ds.step_n(15).unwrap();
                        ds.gather_snapshot().unwrap()
                    });
                    results[0].clone().expect("root gathers")
                })
                .collect();
            let (over, sync) = (&snapshots[0], &snapshots[1]);
            for s in 0..sync.rho.len() {
                assert_eq!(over.rho[s], sync.rho[s], "rho at {s}, {layout:?}");
                assert_eq!(over.u[s], sync.u[s], "u at {s}, {layout:?}");
            }
        }
    }

    #[test]
    fn local_sites_partition_the_domain() {
        let geo = demo_geo();
        let n = geo.fluid_count();
        let owner = even_owner(n, 3);
        let mut seen = vec![false; n];
        for r in 0..3 {
            for g in locals_of(&owner, r) {
                assert!(!seen[g as usize], "site {g} owned twice");
                seen[g as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every site owned");
    }
}
