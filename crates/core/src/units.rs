//! Physical ↔ lattice unit conversion and stability guards.
//!
//! HemeLB targets physiological flows: vessel diameters of millimetres,
//! peak velocities of ~0.1–1 m/s, blood kinematic viscosity ≈ 3.3×10⁻⁶
//! m²/s. The converter fixes the lattice spacing `dx` (m), time step
//! `dt` (s) and reference density `rho0` (kg/m³) and derives everything
//! else, checking the standard LB validity conditions (τ in a stable
//! range, low Mach number).

use crate::CS2;
use serde::{Deserialize, Serialize};

/// Converts between physical (SI) and lattice units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitConverter {
    /// Lattice spacing, metres per cell.
    pub dx: f64,
    /// Time step, seconds per LB step.
    pub dt: f64,
    /// Reference density, kg/m³ (blood ≈ 1050).
    pub rho0: f64,
}

impl UnitConverter {
    /// Construct with explicit scales.
    pub fn new(dx: f64, dt: f64, rho0: f64) -> Self {
        assert!(dx > 0.0 && dt > 0.0 && rho0 > 0.0);
        UnitConverter { dx, dt, rho0 }
    }

    /// Pick `dt` so that a physical kinematic viscosity `nu_phys`
    /// maps to the requested relaxation time `tau` at spacing `dx`:
    /// `ν_lat = cs²(τ−½)` and `ν_lat = ν_phys dt/dx²`.
    pub fn for_viscosity(dx: f64, nu_phys: f64, tau: f64, rho0: f64) -> Self {
        assert!(tau > 0.5, "tau must exceed 1/2 for positive viscosity");
        let nu_lat = CS2 * (tau - 0.5);
        let dt = nu_lat * dx * dx / nu_phys;
        UnitConverter::new(dx, dt, rho0)
    }

    /// Lattice kinematic viscosity for a physical one.
    pub fn viscosity_to_lattice(&self, nu_phys: f64) -> f64 {
        nu_phys * self.dt / (self.dx * self.dx)
    }

    /// Relaxation time implied by a physical kinematic viscosity.
    pub fn tau_for_viscosity(&self, nu_phys: f64) -> f64 {
        self.viscosity_to_lattice(nu_phys) / CS2 + 0.5
    }

    /// m/s → lattice velocity.
    pub fn velocity_to_lattice(&self, v_phys: f64) -> f64 {
        v_phys * self.dt / self.dx
    }

    /// Lattice velocity → m/s.
    pub fn velocity_to_physical(&self, v_lat: f64) -> f64 {
        v_lat * self.dx / self.dt
    }

    /// Pa → lattice density deviation: `p = cs² ρ` in lattice units with
    /// the reference pressure mapped to ρ_lat = 1.
    pub fn pressure_to_lattice_density(&self, p_phys: f64) -> f64 {
        let p_lat = p_phys * self.dt * self.dt / (self.rho0 * self.dx * self.dx);
        1.0 + p_lat / CS2
    }

    /// Lattice density → gauge pressure in Pa.
    pub fn lattice_density_to_pressure(&self, rho_lat: f64) -> f64 {
        (rho_lat - 1.0) * CS2 * self.rho0 * self.dx * self.dx / (self.dt * self.dt)
    }

    /// Lattice shear stress → Pa.
    pub fn stress_to_physical(&self, s_lat: f64) -> f64 {
        s_lat * self.rho0 * self.dx * self.dx / (self.dt * self.dt)
    }

    /// Validity checks: returns problems found (empty = fine).
    pub fn stability_report(&self, tau: f64, u_max_lat: f64) -> Vec<String> {
        let mut problems = Vec::new();
        if tau <= 0.5 {
            problems.push(format!("tau = {tau} <= 0.5: negative viscosity"));
        } else if tau < 0.51 {
            problems.push(format!("tau = {tau} < 0.51: BGK likely unstable"));
        }
        if tau > 2.0 {
            problems.push(format!("tau = {tau} > 2: accuracy degraded"));
        }
        let mach = u_max_lat / CS2.sqrt();
        if mach > 0.3 {
            problems.push(format!("Mach = {mach:.3} > 0.3: compressibility errors"));
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Blood-like parameters used across tests. At dx = 50 µm the
    /// diffusive scaling forces a small τ to keep peak arterial speeds
    /// low-Mach (this is why HemeLB runs close to the stability limit).
    fn blood() -> UnitConverter {
        UnitConverter::for_viscosity(50e-6, 3.3e-6, 0.55, 1050.0)
    }

    #[test]
    fn viscosity_round_trip() {
        let uc = blood();
        let tau = uc.tau_for_viscosity(3.3e-6);
        assert!((tau - 0.55).abs() < 1e-12);
    }

    #[test]
    fn velocity_round_trip() {
        let uc = blood();
        let v = 0.4; // m/s, typical arterial peak
        let lat = uc.velocity_to_lattice(v);
        assert!((uc.velocity_to_physical(lat) - v).abs() < 1e-12);
        // Must be low-Mach for LB validity at these scales.
        assert!(lat < 0.3, "lattice velocity {lat} too high");
    }

    #[test]
    fn pressure_round_trip() {
        let uc = blood();
        let p = 120.0; // Pa gauge
        let rho = uc.pressure_to_lattice_density(p);
        assert!((uc.lattice_density_to_pressure(rho) - p).abs() < 1e-9);
        assert!(rho > 1.0);
        assert!(
            (rho - 1.0).abs() < 0.1,
            "pressure must be a small density perturbation, got {rho}"
        );
    }

    #[test]
    fn stability_report_flags_bad_parameters() {
        let uc = blood();
        assert!(uc.stability_report(0.55, 0.05).is_empty());
        assert!(!uc.stability_report(0.4, 0.05).is_empty());
        assert!(!uc.stability_report(0.8, 0.5).is_empty());
        assert!(!uc.stability_report(2.5, 0.05).is_empty());
    }

    #[test]
    #[should_panic]
    fn tau_below_half_rejected() {
        UnitConverter::for_viscosity(50e-6, 3.3e-6, 0.5, 1050.0);
    }
}
