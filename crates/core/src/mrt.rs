//! Multiple-relaxation-time (MRT) collision.
//!
//! BGK relaxes every kinetic moment at the same rate; MRT relaxes each
//! moment class at its own rate, which decouples the ghost (non-hydro-
//! dynamic) modes from the viscosity and markedly improves stability at
//! low τ — the regime blood-flow lattices are pushed into (cf. the unit
//! converter: arterial speeds at 50 µm force τ near ½).
//!
//! Rather than transcribing a published moment matrix (easy to get
//! subtly wrong per lattice), the transform is **constructed at run
//! time**: the monomial moments
//! `{1, cx, cy, cz, |c|², cx²−cy², cx²−cz², cx cy, cx cz, cy cz, …}`
//! are orthogonalised by Gram–Schmidt under the lattice inner product
//! `⟨a, b⟩ = Σ_i a(c_i) b(c_i)`, exactly as in d'Humières-style MRT.
//! Moments 0–3 (density, momentum) are conserved; the quadratic shear
//! moments relax with `1/τ`; everything else (bulk + ghost modes)
//! relaxes with a tunable `omega_ghost`. With `omega_ghost = 1/τ` the
//! operator reduces to BGK exactly (asserted in tests).

use crate::equilibrium::feq_all;
use crate::model::LatticeModel;

/// Moment classes with distinct relaxation rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MomentClass {
    /// Collision invariants (ρ, j): never relaxed.
    Conserved,
    /// Traceless second-order (shear stress): sets the viscosity.
    Shear,
    /// Everything else (bulk stress + ghost modes).
    Ghost,
}

/// A runtime-built MRT operator for one velocity set.
#[derive(Debug, Clone)]
pub struct MrtOperator {
    q: usize,
    /// Orthonormal moment basis, row-major `q × q`
    /// (`basis[m][i]` = m-th moment's weight on direction `i`).
    basis: Vec<f64>,
    class: Vec<MomentClass>,
    /// Relaxation rate of the ghost/bulk modes.
    pub omega_ghost: f64,
    scratch_feq: Vec<f64>,
}

/// The monomial seeds, most important first. Gram–Schmidt makes each
/// orthogonal to its predecessors; seeds that turn out linearly
/// dependent on the span so far are skipped.
fn monomials(c: [i32; 3]) -> Vec<f64> {
    let (x, y, z) = (c[0] as f64, c[1] as f64, c[2] as f64);
    let c2 = x * x + y * y + z * z;
    let mut seeds = vec![
        1.0,
        x,
        y,
        z,
        c2,
        x * x - y * y,
        x * x - z * z,
        x * y,
        x * z,
        y * z,
    ];
    // Completion: all tensor-product monomials x^a y^b z^c with
    // exponents ≤ 2. On lattice velocities (components in {−1, 0, 1})
    // these span the *entire* function space over the direction set, so
    // Gram–Schmidt always reaches a full basis whatever the lattice;
    // everything picked up here is a ghost/bulk mode.
    for a in 0..3u32 {
        for b in 0..3u32 {
            for cc in 0..3u32 {
                seeds.push(x.powi(a as i32) * y.powi(b as i32) * z.powi(cc as i32));
            }
        }
    }
    seeds
}

fn class_of(seed_index: usize) -> MomentClass {
    match seed_index {
        0..=3 => MomentClass::Conserved,
        5..=9 => MomentClass::Shear,
        _ => MomentClass::Ghost, // includes |c|² (bulk viscosity)
    }
}

impl MrtOperator {
    /// Build the operator for `model`, with ghost modes relaxed at
    /// `omega_ghost` (a common robust choice is 1.2–1.8; 1.0/τ
    /// reproduces BGK).
    ///
    /// # Panics
    /// Panics if the monomial seeds fail to span the `q`-dimensional
    /// moment space (cannot happen for D3Q15/D3Q19).
    pub fn new(model: &LatticeModel, omega_ghost: f64) -> Self {
        let q = model.q;
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(q);
        let mut class = Vec::with_capacity(q);

        let seeds: Vec<Vec<f64>> = {
            // seed_vectors[s][i] = monomial_s(c_i)
            let per_dir: Vec<Vec<f64>> = (0..q).map(|i| monomials(model.c[i])).collect();
            let n_seeds = per_dir[0].len();
            (0..n_seeds)
                .map(|s| (0..q).map(|i| per_dir[i][s]).collect())
                .collect()
        };

        for (s, seed) in seeds.iter().enumerate() {
            if basis.len() == q {
                break;
            }
            // Gram–Schmidt against the accepted rows.
            let mut v = seed.clone();
            for row in &basis {
                let dot: f64 = v.iter().zip(row).map(|(a, b)| a * b).sum();
                for (vi, ri) in v.iter_mut().zip(row) {
                    *vi -= dot * ri;
                }
            }
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-9 {
                continue; // dependent on the span so far
            }
            for vi in v.iter_mut() {
                *vi /= norm;
            }
            basis.push(v);
            class.push(class_of(s));
        }
        assert_eq!(
            basis.len(),
            q,
            "monomial seeds must span the moment space of {}",
            model.name
        );

        MrtOperator {
            q,
            basis: basis.into_iter().flatten().collect(),
            class,
            omega_ghost,
            scratch_feq: vec![0.0; q],
        }
    }

    /// Apply one MRT collision to a site's populations; `tau` sets the
    /// shear (viscosity) rate. Returns the pre-collision `(ρ, u)`.
    pub fn collide(&mut self, model: &LatticeModel, tau: f64, f: &mut [f64]) -> (f64, [f64; 3]) {
        debug_assert_eq!(f.len(), self.q);
        let (rho, u) = crate::equilibrium::moments(model, f);
        feq_all(model, rho, u, &mut self.scratch_feq);

        // Relax in moment space: f ← f − Mᵀ S M (f − f_eq).
        // With an orthonormal basis, M⁻¹ = Mᵀ.
        let omega_shear = 1.0 / tau;
        for m in 0..self.q {
            let rate = match self.class[m] {
                MomentClass::Conserved => 0.0,
                MomentClass::Shear => omega_shear,
                MomentClass::Ghost => self.omega_ghost,
            };
            if rate == 0.0 {
                continue;
            }
            let row = &self.basis[m * self.q..(m + 1) * self.q];
            let m_neq: f64 = row
                .iter()
                .zip(f.iter().zip(&self.scratch_feq))
                .map(|(b, (fi, fe))| b * (fi - fe))
                .sum();
            let delta = rate * m_neq;
            for (fi, b) in f.iter_mut().zip(row) {
                *fi -= delta * b;
            }
        }
        (rho, u)
    }

    /// Verify the basis is orthonormal (used by tests; cheap).
    pub fn basis_is_orthonormal(&self) -> bool {
        for a in 0..self.q {
            for b in 0..self.q {
                let dot: f64 = (0..self.q)
                    .map(|i| self.basis[a * self.q + i] * self.basis[b * self.q + i])
                    .sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                if (dot - expect).abs() > 1e-9 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::{collide, CollisionKind};
    use crate::equilibrium::moments;

    fn perturbed_state(model: &LatticeModel) -> Vec<f64> {
        let mut f = vec![0.0; model.q];
        feq_all(model, 1.08, [0.03, -0.02, 0.05], &mut f);
        f[1] += 0.013;
        f[4] -= 0.004;
        f[model.q - 1] += 0.002;
        f
    }

    #[test]
    fn basis_spans_and_is_orthonormal() {
        for model in [LatticeModel::d3q15(), LatticeModel::d3q19()] {
            let op = MrtOperator::new(&model, 1.3);
            assert!(op.basis_is_orthonormal(), "{}", model.name);
        }
    }

    #[test]
    fn mrt_conserves_mass_and_momentum() {
        for model in [LatticeModel::d3q15(), LatticeModel::d3q19()] {
            let mut op = MrtOperator::new(&model, 1.6);
            let mut f = perturbed_state(&model);
            let (rho0, u0) = moments(&model, &f);
            op.collide(&model, 0.7, &mut f);
            let (rho1, u1) = moments(&model, &f);
            assert!((rho1 - rho0).abs() < 1e-13, "{}", model.name);
            for a in 0..3 {
                assert!((rho1 * u1[a] - rho0 * u0[a]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn mrt_with_uniform_rates_is_bgk() {
        for model in [LatticeModel::d3q15(), LatticeModel::d3q19()] {
            let tau = 0.8;
            let mut op = MrtOperator::new(&model, 1.0 / tau);
            let mut f_mrt = perturbed_state(&model);
            let mut f_bgk = f_mrt.clone();
            op.collide(&model, tau, &mut f_mrt);
            let mut scratch = vec![0.0; model.q];
            collide(&model, CollisionKind::Bgk, tau, &mut f_bgk, &mut scratch);
            for i in 0..model.q {
                assert!(
                    (f_mrt[i] - f_bgk[i]).abs() < 1e-12,
                    "{} dir {i}: {} vs {}",
                    model.name,
                    f_mrt[i],
                    f_bgk[i]
                );
            }
        }
    }

    #[test]
    fn equilibrium_is_a_fixed_point_of_mrt() {
        let model = LatticeModel::d3q15();
        let mut op = MrtOperator::new(&model, 1.4);
        let mut f = vec![0.0; model.q];
        feq_all(&model, 0.95, [0.02, 0.01, -0.03], &mut f);
        let before = f.clone();
        op.collide(&model, 0.6, &mut f);
        for i in 0..model.q {
            assert!((f[i] - before[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn ghost_rate_changes_only_ghost_modes() {
        // Two MRT operators with different ghost rates must agree on
        // the hydrodynamic (conserved + shear) moments of the result.
        let model = LatticeModel::d3q15();
        let mut op_a = MrtOperator::new(&model, 1.1);
        let mut op_b = MrtOperator::new(&model, 1.9);
        let mut fa = perturbed_state(&model);
        let mut fb = fa.clone();
        op_a.collide(&model, 0.75, &mut fa);
        op_b.collide(&model, 0.75, &mut fb);
        // Same ρ, u.
        let (ra, ua) = moments(&model, &fa);
        let (rb, ub) = moments(&model, &fb);
        assert!((ra - rb).abs() < 1e-13);
        for a in 0..3 {
            assert!((ua[a] - ub[a]).abs() < 1e-13);
        }
        // Same deviatoric stress (shear moments relaxed identically).
        let pa = crate::equilibrium::pi_neq(&model, &fa, ra, ua);
        let pb = crate::equilibrium::pi_neq(&model, &fb, rb, ub);
        for k in 3..6 {
            // Off-diagonal components are pure shear.
            assert!((pa[k] - pb[k]).abs() < 1e-12, "component {k}");
        }
        // But the populations themselves differ (ghost modes moved).
        assert!(fa.iter().zip(&fb).any(|(x, y)| (x - y).abs() > 1e-9));
    }

    #[test]
    fn mrt_stabilises_low_tau_flow() {
        // A pressure-driven tube at τ = 0.51: BGK-with-ghost-damping
        // (MRT, ghost rate ~1.2) must stay finite and low-Mach where it
        // runs; this exercises the full solver path below.
        use crate::solver::{Solver, SolverConfig};
        use hemelb_geometry::VesselBuilder;
        use std::sync::Arc;
        let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
        let cfg = SolverConfig::pressure_driven(1.004, 0.996)
            .with_tau(0.52)
            .with_collision(CollisionKind::Mrt { omega_ghost: 1.2 });
        let mut s = Solver::new(geo, cfg);
        s.step_n(400);
        let snap = s.snapshot();
        assert!(
            snap.validity_report().is_empty(),
            "{:?}",
            snap.validity_report()
        );
        let mean_ux: f64 = snap.u.iter().map(|u| u[0]).sum::<f64>() / snap.len() as f64;
        assert!(mean_ux > 1e-5, "flow develops under MRT: {mean_ux}");
    }
}
