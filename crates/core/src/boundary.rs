//! Boundary conditions on missing lattice links.
//!
//! With pull streaming, site `s` is missing the population arriving
//! along `c_i` whenever the upstream cell `s − c_i` is not fluid. The
//! rule applied depends on the site's classification:
//!
//! * **wall** — halfway bounce-back (no-slip at the midpoint);
//! * **velocity iolet** — Ladd bounce-back with the prescribed wall
//!   velocity, equivalent to non-equilibrium bounce-back to first order;
//! * **pressure iolet** — anti-bounce-back against the prescribed
//!   density, using the site's own velocity estimate.
//!
//! All three rules are *local* to the site, which is what keeps the
//! distributed solver's communication limited to the halo exchange.

use crate::model::LatticeModel;
use crate::CS2;
use hemelb_geometry::{IoLet, Vec3};
use serde::{Deserialize, Serialize};

/// Prescription applied at one open boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IoletBc {
    /// Prescribed inflow velocity along the inward normal.
    Velocity {
        /// Peak speed (lattice units/step) at the disk centre.
        peak: f64,
        /// If true the speed falls off parabolically to zero at the disk
        /// rim (Poiseuille profile); if false it is flat.
        parabolic: bool,
    },
    /// Prescribed density (pressure `p = cs² ρ`).
    Pressure {
        /// Boundary density in lattice units (1.0 = reference pressure).
        rho: f64,
    },
    /// Pulsatile velocity inflow — the physiological (cardiac-cycle)
    /// inlet: the instantaneous peak speed is
    /// `peak · (1 + amplitude · sin(2π t / period))`.
    Pulsatile {
        /// Cycle-mean peak speed at the disk centre.
        peak: f64,
        /// Parabolic (Poiseuille) profile across the disk if true.
        parabolic: bool,
        /// Relative oscillation amplitude (0 = steady, 1 = flow stops at
        /// the trough).
        amplitude: f64,
        /// Cycle length in time steps.
        period: u64,
    },
}

impl IoletBc {
    /// Time-dependent scale of the boundary velocity at step `t`
    /// (1.0 for steady prescriptions).
    pub fn pulse_factor(&self, t: u64) -> f64 {
        match *self {
            IoletBc::Pulsatile {
                amplitude, period, ..
            } => {
                let phase =
                    2.0 * std::f64::consts::PI * (t % period.max(1)) as f64 / period.max(1) as f64;
                1.0 + amplitude * phase.sin()
            }
            _ => 1.0,
        }
    }
}

impl IoletBc {
    /// The velocity this BC prescribes at lattice position `pos` of the
    /// given iolet disk (zero for pressure BCs). Points *into* the
    /// domain (opposite the iolet's outward normal).
    pub fn velocity_at(&self, iolet: &IoLet, pos: Vec3) -> [f64; 3] {
        let (peak, parabolic) = match *self {
            IoletBc::Pressure { .. } => return [0.0; 3],
            IoletBc::Velocity { peak, parabolic } => (peak, parabolic),
            IoletBc::Pulsatile {
                peak, parabolic, ..
            } => (peak, parabolic),
        };
        let factor = if parabolic {
            let rel = pos - iolet.centre;
            let radial = rel - iolet.normal * rel.dot(iolet.normal);
            let r2 = radial.norm2() / (iolet.radius * iolet.radius);
            (1.0 - r2).max(0.0)
        } else {
            1.0
        };
        let u = -iolet.normal * (peak * factor);
        [u.x, u.y, u.z]
    }
}

/// Halfway bounce-back: the missing population is the opposite
/// post-collision population of the same site.
#[inline]
pub fn wall_bounce_back(f_star_opp: f64) -> f64 {
    f_star_opp
}

/// Ladd moving-wall bounce-back:
/// `f_i = f*_opp + 2 w_i ρ₀ (c_i·u_w)/cs²` with ρ₀ = 1.
#[inline]
pub fn velocity_bounce_back(
    model: &LatticeModel,
    i: usize,
    u_wall: [f64; 3],
    f_star_opp: f64,
) -> f64 {
    f_star_opp + 2.0 * model.w[i] * model.ci_dot(i, u_wall) / CS2
}

/// Anti-bounce-back pressure condition:
/// `f_i = −f*_opp + 2 w_i ρ_w (1 + (c_i·u)²/2cs⁴ − u²/2cs²)`
/// with the site's own velocity estimate `u`.
#[inline]
pub fn pressure_anti_bounce_back(
    model: &LatticeModel,
    i: usize,
    rho_wall: f64,
    u_site: [f64; 3],
    f_star_opp: f64,
) -> f64 {
    let cu = model.ci_dot(i, u_site);
    let u2 = u_site[0] * u_site[0] + u_site[1] * u_site[1] + u_site[2] * u_site[2];
    -f_star_opp
        + 2.0 * model.w[i] * rho_wall * (1.0 + cu * cu / (2.0 * CS2 * CS2) - u2 / (2.0 * CS2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::IoLetKind;

    fn disk() -> IoLet {
        IoLet {
            kind: IoLetKind::Inlet,
            centre: Vec3::new(0.0, 5.0, 5.0),
            normal: Vec3::new(-1.0, 0.0, 0.0),
            radius: 4.0,
        }
    }

    #[test]
    fn parabolic_profile_peaks_at_centre_and_vanishes_at_rim() {
        let bc = IoletBc::Velocity {
            peak: 0.1,
            parabolic: true,
        };
        let io = disk();
        let at_centre = bc.velocity_at(&io, io.centre);
        assert!((at_centre[0] - 0.1).abs() < 1e-12, "into +x");
        let at_rim = bc.velocity_at(&io, Vec3::new(0.0, 9.0, 5.0));
        assert!(at_rim[0].abs() < 1e-12);
        let halfway = bc.velocity_at(&io, Vec3::new(0.0, 7.0, 5.0));
        assert!((halfway[0] - 0.075).abs() < 1e-12, "1 - (1/2)² = 3/4");
    }

    #[test]
    fn flat_profile_ignores_radius() {
        let bc = IoletBc::Velocity {
            peak: 0.2,
            parabolic: false,
        };
        let io = disk();
        let v = bc.velocity_at(&io, Vec3::new(0.0, 8.9, 5.0));
        assert!((v[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pulse_factor_oscillates_about_one() {
        let bc = IoletBc::Pulsatile {
            peak: 0.05,
            parabolic: true,
            amplitude: 0.5,
            period: 100,
        };
        assert!((bc.pulse_factor(0) - 1.0).abs() < 1e-12);
        assert!((bc.pulse_factor(25) - 1.5).abs() < 1e-12, "crest at T/4");
        assert!((bc.pulse_factor(75) - 0.5).abs() < 1e-12, "trough at 3T/4");
        // Steady BCs never modulate.
        assert_eq!(IoletBc::Pressure { rho: 1.0 }.pulse_factor(7), 1.0);
        assert_eq!(
            IoletBc::Velocity {
                peak: 0.1,
                parabolic: false
            }
            .pulse_factor(7),
            1.0
        );
    }

    #[test]
    fn pulsatile_base_profile_matches_velocity_profile() {
        let steady = IoletBc::Velocity {
            peak: 0.1,
            parabolic: true,
        };
        let pulsing = IoletBc::Pulsatile {
            peak: 0.1,
            parabolic: true,
            amplitude: 0.8,
            period: 50,
        };
        let io = disk();
        let p = Vec3::new(0.0, 7.0, 5.0);
        assert_eq!(steady.velocity_at(&io, p), pulsing.velocity_at(&io, p));
    }

    #[test]
    fn pressure_bc_prescribes_no_velocity() {
        let bc = IoletBc::Pressure { rho: 1.01 };
        assert_eq!(bc.velocity_at(&disk(), Vec3::ZERO), [0.0; 3]);
    }

    #[test]
    fn stationary_wall_reflects_exactly() {
        let model = LatticeModel::d3q15();
        // With zero wall velocity, Ladd reduces to plain bounce-back.
        for i in 0..model.q {
            assert_eq!(
                velocity_bounce_back(&model, i, [0.0; 3], 0.123),
                wall_bounce_back(0.123)
            );
        }
    }

    #[test]
    fn abb_at_rest_returns_weighted_density() {
        let model = LatticeModel::d3q15();
        // f*_opp = w_i ρ at rest ⇒ f_i = −w_i ρ + 2 w_i ρ = w_i ρ: the
        // equilibrium is reproduced and the boundary is stationary.
        let rho = 1.05;
        for i in 0..model.q {
            let f = pressure_anti_bounce_back(&model, i, rho, [0.0; 3], model.w[i] * rho);
            assert!((f - model.w[i] * rho).abs() < 1e-14);
        }
    }
}
