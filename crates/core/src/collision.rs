//! Collision operators: LBGK (single relaxation time) and TRT (two
//! relaxation times).

use crate::equilibrium::{feq, moments};
use crate::model::LatticeModel;
use serde::{Deserialize, Serialize};

/// Which collision operator the solver applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CollisionKind {
    /// Single-relaxation-time BGK with relaxation time τ.
    Bgk,
    /// Two-relaxation-time: even moments relax with τ, odd moments with
    /// τ⁻ chosen from the "magic parameter" Λ = (τ−½)(τ⁻−½).
    /// Λ = 3/16 places halfway bounce-back walls exactly for plane
    /// channels.
    Trt {
        /// The magic parameter Λ.
        magic: f64,
    },
    /// Multiple relaxation times (see [`crate::mrt`]): shear moments at
    /// `1/τ`, ghost/bulk modes at `omega_ghost`. Handled by the solvers
    /// through a per-solver [`crate::mrt::MrtOperator`]; calling the
    /// plain [`collide`] with this kind panics.
    Mrt {
        /// Relaxation rate of the non-hydrodynamic modes.
        omega_ghost: f64,
    },
}

impl CollisionKind {
    /// The standard TRT with Λ = 3/16.
    pub fn trt_magic() -> Self {
        CollisionKind::Trt { magic: 3.0 / 16.0 }
    }
}

/// Apply one collision to the `q` populations of a single site,
/// returning the site's pre-collision macroscopic moments.
///
/// `f` is updated in place to the post-collision state `f*`.
#[inline]
pub fn collide(
    model: &LatticeModel,
    kind: CollisionKind,
    tau: f64,
    f: &mut [f64],
    scratch: &mut [f64],
) -> (f64, [f64; 3]) {
    let (rho, u) = moments(model, f);
    match kind {
        CollisionKind::Mrt { .. } => {
            unreachable!("MRT collisions go through mrt::MrtOperator (solver-managed state)")
        }
        CollisionKind::Bgk => {
            let omega = 1.0 / tau;
            for (i, fi) in f.iter_mut().enumerate() {
                let fe = feq(model, i, rho, u);
                *fi += omega * (fe - *fi);
            }
        }
        CollisionKind::Trt { magic } => {
            // τ⁺ = τ; τ⁻ from Λ = (τ⁺−½)(τ⁻−½).
            let tau_minus = 0.5 + magic / (tau - 0.5);
            let om_p = 1.0 / tau;
            let om_m = 1.0 / tau_minus;
            // scratch holds equilibria.
            for (i, s) in scratch.iter_mut().enumerate() {
                *s = feq(model, i, rho, u);
            }
            for i in 0..model.q {
                let o = model.opp[i];
                if o < i {
                    continue; // handle each pair once (o == i only for rest)
                }
                let f_p = 0.5 * (f[i] + f[o]);
                let f_m = 0.5 * (f[i] - f[o]);
                let e_p = 0.5 * (scratch[i] + scratch[o]);
                let e_m = 0.5 * (scratch[i] - scratch[o]);
                let d_p = om_p * (e_p - f_p);
                let d_m = om_m * (e_m - f_m);
                f[i] += d_p + d_m;
                if o != i {
                    f[o] += d_p - d_m;
                }
            }
        }
    }
    (rho, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::feq_all;

    fn check_conservation(kind: CollisionKind) {
        let model = LatticeModel::d3q15();
        // A non-equilibrium state: equilibrium plus an asymmetric bump.
        let mut f = vec![0.0; model.q];
        feq_all(&model, 1.1, [0.05, -0.02, 0.03], &mut f);
        f[3] += 0.01;
        f[8] -= 0.004;
        let (rho0, u0) = moments(&model, &f);
        let mut scratch = vec![0.0; model.q];
        collide(&model, kind, 0.9, &mut f, &mut scratch);
        let (rho1, u1) = moments(&model, &f);
        assert!((rho1 - rho0).abs() < 1e-14, "mass conserved");
        for a in 0..3 {
            assert!(
                (u1[a] * rho1 - u0[a] * rho0).abs() < 1e-14,
                "momentum conserved"
            );
        }
    }

    #[test]
    fn bgk_conserves_mass_and_momentum() {
        check_conservation(CollisionKind::Bgk);
    }

    #[test]
    fn trt_conserves_mass_and_momentum() {
        check_conservation(CollisionKind::trt_magic());
    }

    #[test]
    fn equilibrium_is_a_fixed_point() {
        for kind in [CollisionKind::Bgk, CollisionKind::trt_magic()] {
            let model = LatticeModel::d3q19();
            let mut f = vec![0.0; model.q];
            feq_all(&model, 0.97, [0.02, 0.04, -0.01], &mut f);
            let before = f.clone();
            let mut scratch = vec![0.0; model.q];
            collide(&model, kind, 0.7, &mut f, &mut scratch);
            for i in 0..model.q {
                assert!((f[i] - before[i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn bgk_tau_one_jumps_to_equilibrium() {
        let model = LatticeModel::d3q15();
        let mut f = vec![0.0; model.q];
        feq_all(&model, 1.0, [0.0; 3], &mut f);
        f[1] += 0.02;
        f[2] -= 0.02; // keep mass; perturb momentum symmetrically? no — any perturbation works
        let (rho, u) = moments(&model, &f);
        let mut scratch = vec![0.0; model.q];
        collide(&model, CollisionKind::Bgk, 1.0, &mut f, &mut scratch);
        // With τ = 1 the post-collision state is exactly f_eq(ρ, u).
        for (i, &fi) in f.iter().enumerate() {
            assert!((fi - feq(&model, i, rho, u)).abs() < 1e-14);
        }
    }

    #[test]
    fn trt_reduces_to_bgk_when_taus_match() {
        // If Λ = (τ−½)², then τ⁻ = τ and TRT == BGK.
        let model = LatticeModel::d3q15();
        let tau = 0.8;
        let magic = (tau - 0.5) * (tau - 0.5);
        let mut f1 = vec![0.0; model.q];
        feq_all(&model, 1.05, [0.03, 0.0, -0.04], &mut f1);
        f1[5] += 0.006;
        let mut f2 = f1.clone();
        let mut scratch = vec![0.0; model.q];
        collide(&model, CollisionKind::Bgk, tau, &mut f1, &mut scratch);
        collide(
            &model,
            CollisionKind::Trt { magic },
            tau,
            &mut f2,
            &mut scratch,
        );
        for i in 0..model.q {
            assert!((f1[i] - f2[i]).abs() < 1e-13, "dir {i}");
        }
    }
}
