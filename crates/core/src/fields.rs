//! Macroscopic field snapshots — the data the in situ pipeline consumes.
//!
//! The whole-snapshot reductions here run through rayon's parallel
//! iterators, which evaluate items concurrently but fold **in index
//! order** — so every method returns the same bits at any thread count,
//! matching the solver kernels' determinism contract.

use hemelb_geometry::{SiteKind, SparseGeometry};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Macroscopic fields over the fluid sites at one time step, indexed by
/// fluid-site id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSnapshot {
    /// Time step the snapshot was taken at.
    pub step: u64,
    /// Density per site (lattice units; pressure = cs²ρ).
    pub rho: Vec<f64>,
    /// Velocity per site (lattice units).
    pub u: Vec<[f64; 3]>,
    /// Shear-rate magnitude per site; the basis of the wall-shear-stress
    /// observable the paper calls "physiologically relevant".
    pub shear: Vec<f64>,
}

impl FieldSnapshot {
    /// Number of sites covered.
    pub fn len(&self) -> usize {
        self.rho.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.rho.is_empty()
    }

    /// Total mass `Σ ρ`.
    pub fn mass(&self) -> f64 {
        self.rho.par_iter().map(|&r| r).sum()
    }

    /// Speed `|u|` at a site.
    #[inline]
    pub fn speed(&self, i: usize) -> f64 {
        let u = self.u[i];
        (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt()
    }

    /// Maximum speed over all sites (0 if empty).
    pub fn max_speed(&self) -> f64 {
        (0..self.len())
            .into_par_iter()
            .map(|i| self.speed(i))
            .reduce_with(f64::max)
            .map_or(0.0, |m| f64::max(0.0, m))
    }

    /// Mean speed over all sites (0 if empty).
    pub fn mean_speed(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            let total: f64 = (0..self.len()).into_par_iter().map(|i| self.speed(i)).sum();
            total / self.len() as f64
        }
    }

    /// Root-mean-square velocity difference against another snapshot of
    /// the same geometry — the convergence monitor.
    pub fn velocity_rms_change(&self, other: &FieldSnapshot) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "snapshots must cover the same sites"
        );
        if self.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..self.len())
            .into_par_iter()
            .map(|i| {
                let a = self.u[i];
                let b = other.u[i];
                (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
            })
            .sum();
        (sum / self.len() as f64).sqrt()
    }

    /// Wall shear stress per *wall site*: `τ_w = ρ ν |S|` (lattice
    /// units), zero at non-wall sites. `nu` is the lattice kinematic
    /// viscosity.
    pub fn wall_shear_stress(&self, geo: &SparseGeometry, nu: f64) -> Vec<f64> {
        (0..self.len())
            .into_par_iter()
            .map(|i| {
                if geo.kind(i as u32) == SiteKind::Wall {
                    self.rho[i] * nu * self.shear[i]
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Basic consistency checks a steering client displays as "validity"
    /// status (paper §I: "consistency and validity checks"). Returns the
    /// problems found.
    pub fn validity_report(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.rho.iter().any(|r| !r.is_finite()) {
            problems.push("non-finite density encountered".to_string());
        }
        if self.u.iter().flatten().any(|v| !v.is_finite()) {
            problems.push("non-finite velocity encountered".to_string());
        }
        if let Some(min) = self
            .rho
            .iter()
            .cloned()
            .fold(None::<f64>, |m, r| Some(m.map_or(r, |m| m.min(r))))
        {
            if min <= 0.0 {
                problems.push(format!("non-positive density {min}"));
            }
        }
        let maxs = self.max_speed();
        if maxs > 0.5 {
            problems.push(format!("speed {maxs:.3} beyond low-Mach validity"));
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::VesselBuilder;

    fn snap(n: usize) -> FieldSnapshot {
        FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u: vec![[0.01, 0.0, 0.0]; n],
            shear: vec![0.0; n],
        }
    }

    #[test]
    fn mass_and_speeds() {
        let s = snap(10);
        assert!((s.mass() - 10.0).abs() < 1e-12);
        assert!((s.max_speed() - 0.01).abs() < 1e-12);
        assert!((s.mean_speed() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn rms_change_zero_against_self() {
        let s = snap(5);
        assert_eq!(s.velocity_rms_change(&s), 0.0);
        let mut t = s.clone();
        t.u[2] = [0.02, 0.0, 0.0];
        assert!(t.velocity_rms_change(&s) > 0.0);
    }

    #[test]
    fn validity_catches_nan_and_vacuum() {
        let mut s = snap(3);
        assert!(s.validity_report().is_empty());
        s.rho[1] = f64::NAN;
        assert!(!s.validity_report().is_empty());
        let mut s2 = snap(3);
        s2.rho[0] = -0.1;
        assert!(!s2.validity_report().is_empty());
        let mut s3 = snap(3);
        s3.u[0] = [0.9, 0.0, 0.0];
        assert!(!s3.validity_report().is_empty());
    }

    #[test]
    fn wss_is_nonzero_only_on_walls() {
        let geo = VesselBuilder::straight_tube(12.0, 3.0).voxelise(1.0);
        let n = geo.fluid_count();
        let s = FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u: vec![[0.0; 3]; n],
            shear: vec![2.0; n],
        };
        let wss = s.wall_shear_stress(&geo, 0.1);
        for (i, &w) in wss.iter().enumerate() {
            let expect_nonzero = geo.kind(i as u32) == hemelb_geometry::SiteKind::Wall;
            assert_eq!(w > 0.0, expect_nonzero, "site {i}");
        }
    }
}
