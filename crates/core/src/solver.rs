//! The serial sparse-geometry LB solver (reference implementation).
//!
//! One time step is collide → stream (pull) with local boundary rules on
//! missing links. The distributed solver in [`crate::dist`] reproduces
//! this bit-for-bit; tests assert the equality.

use crate::boundary::{pressure_anti_bounce_back, velocity_bounce_back, wall_bounce_back, IoletBc};
use crate::collision::CollisionKind;
use crate::equilibrium::feq_all;
use crate::fields::FieldSnapshot;
use crate::layout::{KernelLayout, SoaLattice};
use crate::model::LatticeModel;
use hemelb_geometry::{SiteKind, SparseGeometry};
use hemelb_obs::{ObsReport, Recorder};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::Arc;

/// Which velocity set to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// 15-velocity set (HemeLB's default).
    D3Q15,
    /// 19-velocity set.
    D3Q19,
}

impl ModelKind {
    /// Instantiate the velocity set.
    pub fn build(self) -> LatticeModel {
        match self {
            ModelKind::D3Q15 => LatticeModel::d3q15(),
            ModelKind::D3Q19 => LatticeModel::d3q19(),
        }
    }
}

/// Solver parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Velocity set.
    pub model: ModelKind,
    /// BGK relaxation time (also the even relaxation time of TRT).
    pub tau: f64,
    /// Collision operator.
    pub collision: CollisionKind,
    /// Boundary prescriptions for inlets, indexed by inlet id (the last
    /// entry is reused for any higher id).
    pub inlet_bcs: Vec<IoletBc>,
    /// Boundary prescriptions for outlets, indexed likewise.
    pub outlet_bcs: Vec<IoletBc>,
    /// Kernel memory layout (see [`KernelLayout`]); every choice is
    /// bit-identical, only throughput differs.
    #[serde(default)]
    pub layout: KernelLayout,
    /// Whether the distributed solver overlaps the halo exchange with
    /// interior compute (frontier-first collide, interior collide+stream
    /// under in-flight messages). Bit-identical to the synchronous
    /// schedule — only latency hiding differs. Serial and thread-parallel
    /// solvers ignore it.
    #[serde(default = "default_overlap")]
    pub overlap: bool,
}

fn default_overlap() -> bool {
    true
}

impl SolverConfig {
    /// Pressure-driven flow: fixed density at the inlet(s) and outlet(s).
    pub fn pressure_driven(rho_in: f64, rho_out: f64) -> Self {
        SolverConfig {
            model: ModelKind::D3Q15,
            tau: 0.8,
            collision: CollisionKind::Bgk,
            inlet_bcs: vec![IoletBc::Pressure { rho: rho_in }],
            outlet_bcs: vec![IoletBc::Pressure { rho: rho_out }],
            layout: KernelLayout::default(),
            overlap: default_overlap(),
        }
    }

    /// Parabolic velocity inlet with peak `u_peak`, pressure outlet at
    /// the reference density.
    pub fn velocity_driven(u_peak: f64) -> Self {
        SolverConfig {
            model: ModelKind::D3Q15,
            tau: 0.8,
            collision: CollisionKind::Bgk,
            inlet_bcs: vec![IoletBc::Velocity {
                peak: u_peak,
                parabolic: true,
            }],
            outlet_bcs: vec![IoletBc::Pressure { rho: 1.0 }],
            layout: KernelLayout::default(),
            overlap: default_overlap(),
        }
    }

    /// Override the relaxation time.
    pub fn with_tau(mut self, tau: f64) -> Self {
        assert!(tau > 0.5, "tau must exceed 1/2");
        self.tau = tau;
        self
    }

    /// Override the velocity set.
    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Override the collision operator.
    pub fn with_collision(mut self, collision: CollisionKind) -> Self {
        self.collision = collision;
        self
    }

    /// Override the kernel memory layout.
    pub fn with_layout(mut self, layout: KernelLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Enable or disable communication/computation overlap in the
    /// distributed solver (on by default; results are identical either
    /// way).
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Lattice kinematic viscosity `cs²(τ−½)`.
    pub fn viscosity(&self) -> f64 {
        crate::CS2 * (self.tau - 0.5)
    }

    /// The BC for inlet `id` (last entry reused beyond the list).
    pub fn inlet_bc(&self, id: u16) -> IoletBc {
        let idx = (id as usize).min(self.inlet_bcs.len().saturating_sub(1));
        self.inlet_bcs[idx]
    }

    /// The BC for outlet `id`.
    pub fn outlet_bc(&self, id: u16) -> IoletBc {
        let idx = (id as usize).min(self.outlet_bcs.len().saturating_sub(1));
        self.outlet_bcs[idx]
    }
}

/// Sentinel in the pull table marking a missing (boundary) link
/// (canonical definition lives with the layout machinery).
pub(crate) use crate::layout::LINK_BOUNDARY;

/// Build the pull-streaming source table: `table[s*q + i]` is the fluid
/// site found at `pos(s) − c_i`, or [`LINK_BOUNDARY`].
pub(crate) fn build_pull_table(geo: &SparseGeometry, model: &LatticeModel) -> Vec<u32> {
    let n = geo.fluid_count();
    let q = model.q;
    let mut table = vec![LINK_BOUNDARY; n * q];
    for s in 0..n as u32 {
        let [x, y, z] = geo.position(s);
        for i in 0..q {
            let c = model.c[i];
            let src = geo.site_at(
                x as i64 - c[0] as i64,
                y as i64 - c[1] as i64,
                z as i64 - c[2] as i64,
            );
            if let Some(src) = src {
                table[s as usize * q + i] = src;
            }
        }
    }
    table
}

/// Per-site precomputed boundary velocity for velocity iolets (zero for
/// everything else), evaluated once at construction.
pub(crate) fn precompute_bc_velocities(geo: &SparseGeometry, cfg: &SolverConfig) -> Vec<[f64; 3]> {
    let inlets = geo.inlets();
    let outlets = geo.outlets();
    (0..geo.fluid_count() as u32)
        .map(|s| match geo.kind(s) {
            SiteKind::Inlet(id) => {
                let io = inlets[(id as usize).min(inlets.len() - 1)];
                cfg.inlet_bc(id).velocity_at(io, geo.position_v(s))
            }
            SiteKind::Outlet(id) => {
                let io = outlets[(id as usize).min(outlets.len() - 1)];
                cfg.outlet_bc(id).velocity_at(io, geo.position_v(s))
            }
            _ => [0.0; 3],
        })
        .collect()
}

/// Apply the boundary rule for the missing link `(s, i)`.
///
/// `f_star_opp` is the site's own post-collision opposite population,
/// `rho_u` the site's pre-collision moments this step.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn boundary_rule(
    model: &LatticeModel,
    cfg: &SolverConfig,
    kind: SiteKind,
    bc_velocity: [f64; 3],
    i: usize,
    f_star_opp: f64,
    rho_u: (f64, [f64; 3]),
    step: u64,
) -> f64 {
    let apply = |bc: IoletBc| -> f64 {
        match bc {
            IoletBc::Velocity { .. } | IoletBc::Pulsatile { .. } => {
                let k = bc.pulse_factor(step);
                let u = [bc_velocity[0] * k, bc_velocity[1] * k, bc_velocity[2] * k];
                velocity_bounce_back(model, i, u, f_star_opp)
            }
            IoletBc::Pressure { rho } => {
                pressure_anti_bounce_back(model, i, rho, rho_u.1, f_star_opp)
            }
        }
    };
    match kind {
        SiteKind::Bulk | SiteKind::Wall => wall_bounce_back(f_star_opp),
        SiteKind::Inlet(id) => apply(cfg.inlet_bc(id)),
        SiteKind::Outlet(id) => apply(cfg.outlet_bc(id)),
    }
}

/// The serial solver.
///
/// Fields are crate-visible so [`crate::kernel::ParallelSolver`] can
/// step the same state with the chunked kernels.
pub struct Solver {
    pub(crate) geo: Arc<SparseGeometry>,
    pub(crate) cfg: SolverConfig,
    pub(crate) model: LatticeModel,
    /// Current distributions, site-major `[site][direction]`.
    pub(crate) f: Vec<f64>,
    /// Double buffer for streaming.
    pub(crate) f_next: Vec<f64>,
    /// Pull table.
    pub(crate) pull: Vec<u32>,
    /// Pre-collision moments of the current step, per site.
    pub(crate) moments: Vec<(f64, [f64; 3])>,
    /// Precomputed iolet velocities.
    pub(crate) bc_velocity: Vec<[f64; 3]>,
    /// MRT operator when `cfg.collision` is [`CollisionKind::Mrt`].
    pub(crate) mrt: Option<crate::mrt::MrtOperator>,
    /// SoA state when `cfg.layout` is not [`KernelLayout::Legacy`]; the
    /// legacy `f`/`f_next` buffers stay empty in that case.
    pub(crate) soa: Option<SoaLattice>,
    /// Completed time steps.
    pub(crate) step: u64,
    /// Per-phase observability recorder (`lb.collide`, `lb.stream`,
    /// `lb.macroscopics`). Interior-mutable so `snapshot(&self)` can
    /// record; never touched inside the per-site kernels, so the
    /// instrumentation cannot perturb results.
    pub(crate) obs: RefCell<Recorder>,
}

impl Solver {
    /// Initialise at rest (`ρ = 1`, `u = 0`) on the given geometry.
    pub fn new(geo: Arc<SparseGeometry>, cfg: SolverConfig) -> Self {
        let model = cfg.model.build();
        let n = geo.fluid_count();
        let q = model.q;
        let mut f = vec![0.0; n * q];
        for s in 0..n {
            feq_all(&model, 1.0, [0.0; 3], &mut f[s * q..(s + 1) * q]);
        }
        let pull = build_pull_table(&geo, &model);
        let bc_velocity = precompute_bc_velocities(&geo, &cfg);
        let mrt = match cfg.collision {
            CollisionKind::Mrt { omega_ghost } => {
                Some(crate::mrt::MrtOperator::new(&model, omega_ghost))
            }
            _ => None,
        };
        let soa = match cfg.layout {
            KernelLayout::Legacy => None,
            _ => Some(SoaLattice::new(q, &pull, &f)),
        };
        let (f, f_next) = if soa.is_some() {
            (Vec::new(), Vec::new())
        } else {
            (f.clone(), f)
        };
        Solver {
            f_next,
            moments: vec![(1.0, [0.0; 3]); n],
            f,
            pull,
            bc_velocity,
            mrt,
            soa,
            geo,
            cfg,
            model,
            step: 0,
            obs: RefCell::new(Recorder::new()),
        }
    }

    /// Run `f` with this solver's observability recorder borrowed
    /// mutably (e.g. to add custom counters or reset between phases).
    pub fn with_obs<R>(&self, f: impl FnOnce(&mut Recorder) -> R) -> R {
        f(&mut self.obs.borrow_mut())
    }

    /// Snapshot the solver's observability report (phase timings for
    /// collide, stream and macroscopic extraction).
    pub fn obs_report(&self) -> ObsReport {
        self.obs.borrow().report()
    }

    /// Disable (or re-enable) phase timing; disabled recording is a
    /// single-branch no-op per step.
    pub fn set_obs_enabled(&self, on: bool) {
        self.obs.borrow_mut().set_enabled(on);
    }

    /// The geometry this solver runs on.
    pub fn geometry(&self) -> &Arc<SparseGeometry> {
        &self.geo
    }

    /// The configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    /// The velocity set.
    pub fn model(&self) -> &LatticeModel {
        &self.model
    }

    /// Completed steps.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Replace the BC of inlet `id` at runtime (computational steering:
    /// "not only simulation parameters … can be further modified").
    /// Precomputed boundary velocities are refreshed.
    pub fn set_inlet_bc(&mut self, id: usize, bc: crate::boundary::IoletBc) {
        if id >= self.cfg.inlet_bcs.len() {
            self.cfg.inlet_bcs.resize(id + 1, bc);
        }
        self.cfg.inlet_bcs[id] = bc;
        self.bc_velocity = precompute_bc_velocities(&self.geo, &self.cfg);
    }

    /// Replace the BC of outlet `id` at runtime.
    pub fn set_outlet_bc(&mut self, id: usize, bc: crate::boundary::IoletBc) {
        if id >= self.cfg.outlet_bcs.len() {
            self.cfg.outlet_bcs.resize(id + 1, bc);
        }
        self.cfg.outlet_bcs[id] = bc;
        self.bc_velocity = precompute_bc_velocities(&self.geo, &self.cfg);
    }

    /// Advance one time step (collide + stream).
    ///
    /// Both phases run through the span primitives in [`crate::kernel`]
    /// / [`crate::layout`], the same per-site code the parallel and
    /// distributed solvers use — which is what makes them bit-identical.
    pub fn step(&mut self) {
        self.step_impl(false);
    }

    /// One step, serial or chunk-parallel, dispatched on the configured
    /// layout. The parallel flavour must run inside a rayon pool (see
    /// [`crate::kernel::ParallelSolver`]).
    pub(crate) fn step_impl(&mut self, parallel: bool) {
        if self.soa.is_some() {
            self.step_soa(parallel);
            return;
        }
        // Collide in place: f becomes f*.
        let span = self.obs.borrow().begin();
        if parallel {
            crate::kernel::par_collide(
                &self.model,
                self.cfg.collision,
                self.cfg.tau,
                self.mrt.as_ref(),
                &mut self.f,
                &mut self.moments,
            );
        } else {
            crate::kernel::collide_span(
                &self.model,
                self.cfg.collision,
                self.cfg.tau,
                self.mrt.as_mut(),
                &mut self.f,
                &mut self.moments,
            );
        }
        span.end(&mut self.obs.borrow_mut(), "lb.collide");
        // Stream (pull) with boundary rules on missing links.
        let span = self.obs.borrow().begin();
        if parallel {
            crate::kernel::par_stream(
                &self.model,
                &self.cfg,
                &self.geo,
                &self.f,
                &self.moments,
                &self.bc_velocity,
                &self.pull,
                self.step,
                &mut self.f_next,
            );
        } else {
            crate::kernel::stream_span(
                &self.model,
                &self.cfg,
                &self.geo,
                &self.f,
                &self.moments,
                &self.bc_velocity,
                &self.pull,
                self.step,
                0,
                &mut self.f_next,
            );
        }
        span.end(&mut self.obs.borrow_mut(), "lb.stream");
        std::mem::swap(&mut self.f, &mut self.f_next);
        self.step += 1;
    }

    /// One step over the SoA lanes. The SIMD flavour only changes the
    /// BGK collide loop shape, never the per-site arithmetic.
    fn step_soa(&mut self, parallel: bool) {
        let simd = self.cfg.layout == KernelLayout::SoaSimd;
        let span = self.obs.borrow().begin();
        {
            let soa = self.soa.as_mut().expect("SoA state");
            if parallel {
                crate::kernel::par_collide_soa(
                    &self.model,
                    self.cfg.collision,
                    self.cfg.tau,
                    self.mrt.as_ref(),
                    &mut soa.f,
                    &mut self.moments,
                    simd,
                );
            } else {
                let mut lanes: Vec<&mut [f64]> =
                    soa.f.iter_mut().map(|l| l.as_mut_slice()).collect();
                crate::layout::collide_span_soa(
                    &self.model,
                    self.cfg.collision,
                    self.cfg.tau,
                    self.mrt.as_mut(),
                    &mut lanes,
                    &mut self.moments,
                    simd,
                );
            }
        }
        span.end(&mut self.obs.borrow_mut(), "lb.collide");
        let span = self.obs.borrow().begin();
        {
            let model = &self.model;
            let cfg = &self.cfg;
            let kinds = self.geo.kinds();
            let moments = &self.moments[..];
            let bc_velocity = &self.bc_velocity[..];
            let step = self.step;
            let soa = self.soa.as_mut().expect("SoA state");
            let (f_old, f_next, plan) = soa.split_for_stream();
            if parallel {
                crate::kernel::par_stream_soa(
                    model,
                    cfg,
                    kinds,
                    f_old,
                    plan,
                    moments,
                    bc_velocity,
                    &[],
                    step,
                    f_next,
                );
            } else {
                let mut out: Vec<&mut [f64]> =
                    f_next.iter_mut().map(|l| l.as_mut_slice()).collect();
                crate::layout::stream_span_soa(
                    model,
                    cfg,
                    kinds,
                    f_old,
                    plan,
                    moments,
                    bc_velocity,
                    &[],
                    step,
                    0,
                    &mut out,
                );
            }
        }
        span.end(&mut self.obs.borrow_mut(), "lb.stream");
        self.soa.as_mut().expect("SoA state").swap_buffers();
        self.step += 1;
    }

    /// Advance `count` steps.
    pub fn step_n(&mut self, count: u64) {
        for _ in 0..count {
            self.step();
        }
    }

    /// Macroscopic snapshot of the current state.
    pub fn snapshot(&self) -> FieldSnapshot {
        self.snapshot_impl(false)
    }

    /// Snapshot, serial or chunk-parallel, dispatched on the layout.
    pub(crate) fn snapshot_impl(&self, parallel: bool) -> FieldSnapshot {
        let n = self.geo.fluid_count();
        let mut rho = vec![0.0; n];
        let mut u = vec![[0.0; 3]; n];
        let mut shear = vec![0.0; n];
        let span = self.obs.borrow().begin();
        match (&self.soa, parallel) {
            (Some(soa), false) => crate::layout::macroscopics_span_soa(
                &self.model,
                self.cfg.tau,
                &soa.f,
                0,
                &mut rho,
                &mut u,
                &mut shear,
            ),
            (Some(soa), true) => crate::kernel::par_macroscopics_soa(
                &self.model,
                self.cfg.tau,
                &soa.f,
                &mut rho,
                &mut u,
                &mut shear,
            ),
            (None, false) => crate::kernel::macroscopics_span(
                &self.model,
                self.cfg.tau,
                &self.f,
                &mut rho,
                &mut u,
                &mut shear,
            ),
            (None, true) => crate::kernel::par_macroscopics(
                &self.model,
                self.cfg.tau,
                &self.f,
                &mut rho,
                &mut u,
                &mut shear,
            ),
        }
        span.end(&mut self.obs.borrow_mut(), "lb.macroscopics");
        FieldSnapshot {
            step: self.step,
            rho,
            u,
            shear,
        }
    }

    /// Total mass `Σ_s Σ_i f_si` (conserved by interior dynamics; open
    /// boundaries exchange mass by design). Summed in site-major order
    /// regardless of layout, so the value is layout-independent.
    pub fn mass(&self) -> f64 {
        match &self.soa {
            Some(soa) => soa.mass(),
            None => self.f.iter().sum(),
        }
    }

    /// Raw distributions of one site (for tests and the distributed
    /// equality check), in direction order.
    pub fn distributions(&self, site: u32) -> Vec<f64> {
        match &self.soa {
            Some(soa) => soa.site_values(site as usize),
            None => {
                let q = self.model.q;
                self.f[site as usize * q..(site as usize + 1) * q].to_vec()
            }
        }
    }

    /// The whole distribution array in the canonical site-major order
    /// (checkpointing, cross-layout comparison). Borrowed for the legacy
    /// layout, transposed on the fly for SoA.
    pub fn raw_distributions(&self) -> Cow<'_, [f64]> {
        match &self.soa {
            Some(soa) => Cow::Owned(soa.to_site_major()),
            None => Cow::Borrowed(&self.f),
        }
    }

    /// Overwrite the dynamical state from a site-major array (checkpoint
    /// restore). Works across layouts: a checkpoint written under any
    /// layout restores into any other.
    ///
    /// # Panics
    /// Panics if the array length does not match `sites × q`.
    pub(crate) fn install_state(&mut self, step: u64, f: Vec<f64>) {
        assert_eq!(f.len(), self.geo.fluid_count() * self.model.q);
        match self.soa.as_mut() {
            Some(soa) => soa.install_site_major(&f),
            None => self.f = f,
        }
        self.step = step;
    }

    /// Deliberately corrupt the streaming-index table by swapping the
    /// sources of two `(direction, site)` links. Test-only harness hook
    /// (the golden-digest negative test proves a single swapped
    /// neighbour fails the FNV digest); works on every layout. Returns
    /// `true` if the two entries actually differed.
    #[doc(hidden)]
    pub fn debug_swap_stream_entries(&mut self, dir: usize, a: usize, b: usize) -> bool {
        match self.soa.as_mut() {
            Some(soa) => soa.debug_swap_stream_entries(dir, a, b),
            None => {
                let q = self.model.q;
                if self.pull[a * q + dir] == self.pull[b * q + dir] {
                    return false;
                }
                self.pull.swap(a * q + dir, b * q + dir);
                true
            }
        }
    }

    /// Fraction of sites in branch-free bulk runs, when running a SoA
    /// layout (`None` under the legacy layout). Reported by the kernel
    /// bench.
    pub fn bulk_fraction(&self) -> Option<f64> {
        self.soa.as_ref().map(|soa| soa.bulk_fraction())
    }

    /// Run until the RMS velocity change over `check_every` steps drops
    /// below `tol`, or `max_steps` elapse. Returns (converged, steps
    /// taken, final RMS change).
    pub fn run_to_steady_state(
        &mut self,
        tol: f64,
        check_every: u64,
        max_steps: u64,
    ) -> (bool, u64, f64) {
        let start = self.step;
        let mut prev = self.snapshot();
        loop {
            self.step_n(check_every);
            let now = self.snapshot();
            let change = now.velocity_rms_change(&prev) / check_every as f64;
            if change < tol {
                return (true, self.step - start, change);
            }
            if self.step - start >= max_steps {
                return (false, self.step - start, change);
            }
            prev = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::VesselBuilder;

    fn tube_solver(cfg: SolverConfig) -> Solver {
        let geo = VesselBuilder::straight_tube(20.0, 4.0).voxelise(1.0);
        Solver::new(Arc::new(geo), cfg)
    }

    #[test]
    fn equilibrium_rest_state_is_stationary_in_closed_interior() {
        // With equal inlet/outlet pressure at the reference density the
        // rest state is an exact fixed point.
        let mut s = tube_solver(SolverConfig::pressure_driven(1.0, 1.0));
        let before = s.snapshot();
        s.step_n(5);
        let after = s.snapshot();
        assert!(after.velocity_rms_change(&before) < 1e-14);
        assert!((after.mass() - before.mass()).abs() < 1e-9);
    }

    #[test]
    fn pressure_gradient_drives_flow_toward_outlet() {
        let mut s = tube_solver(SolverConfig::pressure_driven(1.01, 0.99));
        s.step_n(200);
        let snap = s.snapshot();
        // Mean x-velocity must be positive (inlet at x=0).
        let mean_ux: f64 = snap.u.iter().map(|u| u[0]).sum::<f64>() / snap.len() as f64;
        assert!(mean_ux > 1e-4, "flow should develop, got {mean_ux}");
        assert!(
            snap.validity_report().is_empty(),
            "{:?}",
            snap.validity_report()
        );
    }

    #[test]
    fn velocity_inlet_drives_flow() {
        let mut s = tube_solver(SolverConfig::velocity_driven(0.05));
        s.step_n(300);
        let snap = s.snapshot();
        let mean_ux: f64 = snap.u.iter().map(|u| u[0]).sum::<f64>() / snap.len() as f64;
        assert!(mean_ux > 1e-3, "{mean_ux}");
        assert!(snap.max_speed() < 0.2);
    }

    #[test]
    fn d3q19_also_develops_flow() {
        let cfg = SolverConfig::pressure_driven(1.01, 0.99).with_model(ModelKind::D3Q19);
        let mut s = tube_solver(cfg);
        s.step_n(150);
        let snap = s.snapshot();
        let mean_ux: f64 = snap.u.iter().map(|u| u[0]).sum::<f64>() / snap.len() as f64;
        assert!(mean_ux > 1e-4);
    }

    #[test]
    fn trt_matches_flow_direction_of_bgk() {
        let cfg =
            SolverConfig::pressure_driven(1.01, 0.99).with_collision(CollisionKind::trt_magic());
        let mut s = tube_solver(cfg);
        s.step_n(150);
        let snap = s.snapshot();
        let mean_ux: f64 = snap.u.iter().map(|u| u[0]).sum::<f64>() / snap.len() as f64;
        assert!(mean_ux > 1e-4);
        assert!(snap.validity_report().is_empty());
    }

    #[test]
    fn steady_state_detection_terminates() {
        let mut s = tube_solver(SolverConfig::pressure_driven(1.002, 0.998));
        let (converged, steps, residual) = s.run_to_steady_state(1e-8, 50, 5000);
        assert!(converged, "residual {residual} after {steps}");
        // Flow is steady: a further 50 steps change almost nothing.
        let a = s.snapshot();
        s.step_n(50);
        let b = s.snapshot();
        assert!(b.velocity_rms_change(&a) / 50.0 < 1e-7);
    }

    #[test]
    fn poiseuille_profile_in_steady_tube() {
        // Pressure-driven laminar flow in a circular tube: the steady
        // axial velocity is u(r) = u_max (1 − r²/R²). Staircase walls at
        // this resolution justify a generous tolerance; what must hold is
        // the parabolic *shape* (high correlation) and peak location on
        // the axis.
        let geo = VesselBuilder::straight_tube(24.0, 5.0).voxelise(1.0);
        let geo = Arc::new(geo);
        let mut s = Solver::new(
            geo.clone(),
            SolverConfig::pressure_driven(1.004, 0.996).with_tau(0.9),
        );
        s.run_to_steady_state(1e-9, 100, 20_000);
        let snap = s.snapshot();

        // Collect (r², ux) for mid-tube sites.
        let shape = geo.shape();
        let cy = (shape[1] as f64 - 1.0) / 2.0;
        let cz = (shape[2] as f64 - 1.0) / 2.0;
        let x_mid = shape[0] as u32 / 2;
        let mut pts: Vec<(f64, f64)> = Vec::new();
        for i in 0..geo.fluid_count() as u32 {
            let [x, y, z] = geo.position(i);
            if x == x_mid {
                let r2 = (y as f64 - cy).powi(2) + (z as f64 - cz).powi(2);
                pts.push((r2, snap.u[i as usize][0]));
            }
        }
        assert!(pts.len() > 20, "need a cross-section");

        // Linear regression ux = a + b r² must fit well with b < 0.
        let n = pts.len() as f64;
        let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
        let syy: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
        let b = sxy / sxx;
        let r = sxy / (sxx * syy).sqrt();
        assert!(b < 0.0, "velocity must decrease with r²");
        assert!(
            r < -0.97,
            "profile must be near-parabolic in r²; correlation {r}"
        );

        // Peak at the axis ≈ intercept a; compare against max measured.
        let a = my - b * mx;
        let u_max = pts.iter().map(|p| p.1).fold(0.0, f64::max);
        assert!((a - u_max).abs() / u_max < 0.2, "a={a}, u_max={u_max}");
    }

    #[test]
    fn pulsatile_inlet_produces_oscillating_flow() {
        use crate::boundary::IoletBc;
        let period = 120u64;
        let cfg = SolverConfig {
            model: ModelKind::D3Q15,
            tau: 0.8,
            collision: CollisionKind::Bgk,
            inlet_bcs: vec![IoletBc::Pulsatile {
                peak: 0.04,
                parabolic: true,
                amplitude: 0.8,
                period,
            }],
            outlet_bcs: vec![IoletBc::Pressure { rho: 1.0 }],
            layout: KernelLayout::default(),
            overlap: true,
        };
        let mut s = tube_solver(cfg);
        // Skip the initial transient, then record mean inflow speed over
        // one full cycle.
        s.step_n(2 * period);
        let mut series = Vec::new();
        for _ in 0..period {
            s.step();
            let snap = s.snapshot();
            let mean_ux: f64 = snap.u.iter().map(|u| u[0]).sum::<f64>() / snap.len() as f64;
            series.push(mean_ux);
        }
        let max = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        assert!(mean > 1e-4, "net forward flow: {mean}");
        assert!(
            (max - min) > mean * 0.5,
            "pulsation visible: min={min}, max={max}, mean={mean}"
        );
        // The oscillation period matches the prescribed cycle: the
        // crest and the trough are roughly half a period apart.
        let i_max = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as i64;
        let i_min = series
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as i64;
        let gap = (i_max - i_min).rem_euclid(period as i64);
        let half = period as i64 / 2;
        assert!(
            (gap - half).abs() < period as i64 / 4,
            "crest/trough separation {gap} should be near {half}"
        );
    }

    #[test]
    fn phase_timings_are_recorded_per_step() {
        let mut s = tube_solver(SolverConfig::pressure_driven(1.01, 0.99));
        s.step_n(7);
        s.snapshot();
        let report = s.obs_report();
        assert_eq!(report.phases["lb.collide"].calls, 7);
        assert_eq!(report.phases["lb.stream"].calls, 7);
        assert_eq!(report.phases["lb.macroscopics"].calls, 1);
        assert!(report.phases["lb.collide"].total_secs > 0.0);

        // Disabled recording is a no-op but physics is untouched.
        let mut quiet = tube_solver(SolverConfig::pressure_driven(1.01, 0.99));
        quiet.set_obs_enabled(false);
        quiet.step_n(7);
        assert!(quiet.obs_report().phases.is_empty());
        for (a, b) in s
            .raw_distributions()
            .iter()
            .zip(quiet.raw_distributions().iter())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "obs must not perturb physics");
        }
    }

    #[test]
    fn mass_bounded_in_driven_flow() {
        let mut s = tube_solver(SolverConfig::pressure_driven(1.01, 0.99));
        let m0 = s.mass();
        s.step_n(500);
        let m1 = s.mass();
        // Open boundaries exchange mass but the state stays bounded.
        assert!((m1 - m0).abs() / m0 < 0.05, "m0={m0}, m1={m1}");
    }
}
