//! Shared collide/stream kernel spans and the rayon-parallel solver.
//!
//! The serial [`Solver`], the [`ParallelSolver`] here, and the
//! distributed solver all execute the *same* per-site code path — the
//! span primitives below. Pull streaming reads only the previous-step
//! buffer and every site writes only its own `f_next` entries, so
//! partitioning the site array into contiguous chunks and running them
//! on worker threads is race-free **and** bit-exact by construction: no
//! atomics, no reductions, no operation reordering. The determinism
//! proptests in `tests/properties.rs` assert
//! `serial == parallel(1) == parallel(4)` via `f64::to_bits`.

use crate::boundary::IoletBc;
use crate::collision::{collide, CollisionKind};
use crate::equilibrium::{moments as site_moments, pi_neq, shear_rate_magnitude};
use crate::fields::FieldSnapshot;
use crate::model::LatticeModel;
use crate::mrt::MrtOperator;
use crate::solver::{boundary_rule, Solver, SolverConfig, LINK_BOUNDARY};
use hemelb_geometry::{SiteKind, SparseGeometry};
use std::borrow::Cow;
use std::sync::Arc;

/// Collide the sites in `f` (a span of `moments.len()` sites, site-major)
/// in place, recording each site's pre-collision moments.
///
/// This is the one collide loop in the codebase: serial, thread-chunked
/// and distributed steps all call it, which is what makes them
/// bit-identical per site.
pub(crate) fn collide_span(
    model: &LatticeModel,
    collision: CollisionKind,
    tau: f64,
    mut mrt: Option<&mut MrtOperator>,
    f: &mut [f64],
    moments: &mut [(f64, [f64; 3])],
) {
    let q = model.q;
    debug_assert_eq!(f.len(), moments.len() * q);
    let mut scratch = vec![0.0; q];
    for (s, m) in moments.iter_mut().enumerate() {
        let fs = &mut f[s * q..(s + 1) * q];
        *m = match mrt.as_deref_mut() {
            Some(op) => op.collide(model, tau, fs),
            None => collide(model, collision, tau, fs, &mut scratch),
        };
    }
}

/// Pull-stream into `out`, a span of `f_next` beginning at global site
/// `first_site`. Reads only the immutable previous-step state, so spans
/// may run concurrently.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stream_span(
    model: &LatticeModel,
    cfg: &SolverConfig,
    geo: &SparseGeometry,
    f_old: &[f64],
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    pull: &[u32],
    step: u64,
    first_site: usize,
    out: &mut [f64],
) {
    let q = model.q;
    debug_assert_eq!(out.len() % q, 0);
    for k in 0..out.len() / q {
        let s = first_site + k;
        let kind = geo.kind(s as u32);
        for i in 0..q {
            let src = pull[s * q + i];
            out[k * q + i] = if src != LINK_BOUNDARY {
                f_old[src as usize * q + i]
            } else {
                boundary_rule(
                    model,
                    cfg,
                    kind,
                    bc_velocity[s],
                    i,
                    f_old[s * q + model.opp[i]],
                    moments[s],
                    step,
                )
            };
        }
    }
}

/// Macroscopic fields of the span of sites starting at `first_site`:
/// density, velocity and shear-rate magnitude, written into the
/// corresponding output spans.
pub(crate) fn macroscopics_span(
    model: &LatticeModel,
    tau: f64,
    f: &[f64],
    rho: &mut [f64],
    u: &mut [[f64; 3]],
    shear: &mut [f64],
) {
    let q = model.q;
    debug_assert_eq!(f.len(), rho.len() * q);
    for s in 0..rho.len() {
        let fs = &f[s * q..(s + 1) * q];
        let (r, v) = site_moments(model, fs);
        let pi = pi_neq(model, fs, r, v);
        rho[s] = r;
        u[s] = v;
        shear[s] = shear_rate_magnitude(pi, r, tau);
    }
}

/// Split the site range `0..n` into one contiguous chunk per rayon
/// worker. Returns `(first_site, len)` pairs covering the range in
/// order; the chunking never affects results, only which thread computes
/// which sites.
pub(crate) fn site_chunks(n: usize) -> Vec<(usize, usize)> {
    let threads = rayon::current_num_threads().max(1);
    let chunk = n.div_ceil(threads).max(1);
    let mut out = Vec::with_capacity(threads);
    let mut first = 0;
    while first < n {
        let len = chunk.min(n - first);
        out.push((first, len));
        first += len;
    }
    out
}

/// One collide work item: a disjoint `(f, moments)` span pair.
type CollideWork<'a> = (&'a mut [f64], &'a mut [(f64, [f64; 3])]);
/// One SoA collide work item: the same site span of every lane plus the
/// matching moments span.
type SoaCollideWork<'a> = (Vec<&'a mut [f64]>, &'a mut [(f64, [f64; 3])]);

/// Chunk-parallel collide over the whole site array. Each worker gets a
/// disjoint `(f, moments)` pair of spans and (for MRT) its own clone of
/// the operator, whose only mutable state is scratch space.
pub(crate) fn par_collide(
    model: &LatticeModel,
    collision: CollisionKind,
    tau: f64,
    mrt: Option<&MrtOperator>,
    f: &mut [f64],
    moments: &mut [(f64, [f64; 3])],
) {
    let q = model.q;
    let mut work: Vec<CollideWork<'_>> = Vec::new();
    let mut f_rest = f;
    let mut m_rest = moments;
    for (_, len) in site_chunks(m_rest.len()) {
        let (f_chunk, f_tail) = f_rest.split_at_mut(len * q);
        let (m_chunk, m_tail) = m_rest.split_at_mut(len);
        f_rest = f_tail;
        m_rest = m_tail;
        work.push((f_chunk, m_chunk));
    }
    run_grouped(work, |(f_chunk, m_chunk)| {
        let mut op = mrt.cloned();
        collide_span(model, collision, tau, op.as_mut(), f_chunk, m_chunk)
    });
}

/// Chunk-parallel pull-stream over the whole site array: disjoint spans
/// of `f_next` are written from the shared immutable previous state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_stream(
    model: &LatticeModel,
    cfg: &SolverConfig,
    geo: &SparseGeometry,
    f_old: &[f64],
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    pull: &[u32],
    step: u64,
    f_next: &mut [f64],
) {
    let q = model.q;
    let mut work: Vec<(usize, &mut [f64])> = Vec::new();
    let mut rest = f_next;
    for (first, len) in site_chunks(moments.len()) {
        let (out, tail) = rest.split_at_mut(len * q);
        rest = tail;
        work.push((first, out));
    }
    run_grouped(work, |(first, out)| {
        stream_span(
            model,
            cfg,
            geo,
            f_old,
            moments,
            bc_velocity,
            pull,
            step,
            first,
            out,
        )
    });
}

/// Chunk-parallel macroscopic-field extraction into pre-sized arrays.
pub(crate) fn par_macroscopics(
    model: &LatticeModel,
    tau: f64,
    f: &[f64],
    rho: &mut [f64],
    u: &mut [[f64; 3]],
    shear: &mut [f64],
) {
    let q = model.q;
    type MacroWork<'a> = (&'a [f64], &'a mut [f64], &'a mut [[f64; 3]], &'a mut [f64]);
    let mut work: Vec<MacroWork<'_>> = Vec::new();
    let mut f_rest = f;
    let mut rho_rest = rho;
    let mut u_rest = u;
    let mut sh_rest = shear;
    for (_, len) in site_chunks(rho_rest.len()) {
        let (f_c, f_t) = f_rest.split_at(len * q);
        let (rho_c, rho_t) = rho_rest.split_at_mut(len);
        let (u_c, u_t) = u_rest.split_at_mut(len);
        let (sh_c, sh_t) = sh_rest.split_at_mut(len);
        f_rest = f_t;
        rho_rest = rho_t;
        u_rest = u_t;
        sh_rest = sh_t;
        work.push((f_c, rho_c, u_c, sh_c));
    }
    run_grouped(work, |(f_c, rho_c, u_c, sh_c)| {
        macroscopics_span(model, tau, f_c, rho_c, u_c, sh_c)
    });
}

/// Split each SoA lane at `len`, collecting the heads into one per-lane
/// chunk bundle and leaving the tails in `rest` — the safe-Rust way to
/// hand disjoint site spans of every lane to a worker.
fn take_lane_chunk<'a>(rest: &mut [&'a mut [f64]], len: usize) -> Vec<&'a mut [f64]> {
    rest.iter_mut()
        .map(|lane| {
            let taken = std::mem::take(lane);
            let (head, tail) = taken.split_at_mut(len);
            *lane = tail;
            head
        })
        .collect()
}

/// Execute `work` items across at most one scoped worker per rayon
/// thread, preserving item order within each worker. With a single
/// thread — or a single item — everything runs inline on the caller's
/// thread with no spawn at all. The grouping can never affect results
/// (items write disjoint spans; order within a worker is the global
/// order); it exists to bound thread churn, which matters when site
/// ranges are fragmented and chunks far outnumber workers.
pub(crate) fn run_grouped<W, F>(work: Vec<W>, run: F)
where
    W: Send,
    F: Fn(W) + Sync,
{
    let threads = rayon::current_num_threads().max(1);
    if threads <= 1 || work.len() <= 1 {
        for w in work {
            run(w);
        }
        return;
    }
    let per = work.len().div_ceil(threads);
    let mut groups: Vec<Vec<W>> = Vec::with_capacity(threads);
    let mut items = work.into_iter();
    loop {
        let group: Vec<W> = items.by_ref().take(per).collect();
        if group.is_empty() {
            break;
        }
        groups.push(group);
    }
    let run = &run;
    rayon::scope(|sc| {
        for group in groups {
            sc.spawn(move |_| {
                for w in group {
                    run(w);
                }
            });
        }
    });
}

/// Chunk-parallel collide over SoA lanes: each worker gets the same
/// site span of every lane plus its moments span.
pub(crate) fn par_collide_soa(
    model: &LatticeModel,
    collision: CollisionKind,
    tau: f64,
    mrt: Option<&MrtOperator>,
    f: &mut [Vec<f64>],
    moments: &mut [(f64, [f64; 3])],
    simd: bool,
) {
    let mut lane_rest: Vec<&mut [f64]> = f.iter_mut().map(|l| l.as_mut_slice()).collect();
    let mut m_rest = moments;
    let mut work: Vec<SoaCollideWork<'_>> = Vec::new();
    for (_, len) in site_chunks(m_rest.len()) {
        let chunk = take_lane_chunk(&mut lane_rest, len);
        let (m_chunk, m_tail) = m_rest.split_at_mut(len);
        m_rest = m_tail;
        work.push((chunk, m_chunk));
    }
    run_grouped(work, |(mut chunk, m_chunk)| {
        let mut op = mrt.cloned();
        crate::layout::collide_span_soa(
            model,
            collision,
            tau,
            op.as_mut(),
            &mut chunk,
            m_chunk,
            simd,
        );
    });
}

/// Chunk-parallel pull-stream over SoA lanes: disjoint site spans of
/// `f_next` are written from the shared immutable previous state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_stream_soa(
    model: &LatticeModel,
    cfg: &SolverConfig,
    kinds: &[SiteKind],
    f_old: &[Vec<f64>],
    plan: &crate::layout::StreamPlan,
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    halo: &[f64],
    step: u64,
    f_next: &mut [Vec<f64>],
) {
    let mut lane_rest: Vec<&mut [f64]> = f_next.iter_mut().map(|l| l.as_mut_slice()).collect();
    let mut work: Vec<(usize, Vec<&mut [f64]>)> = Vec::new();
    for (first, len) in site_chunks(moments.len()) {
        let chunk = take_lane_chunk(&mut lane_rest, len);
        work.push((first, chunk));
    }
    run_grouped(work, |(first, mut chunk)| {
        crate::layout::stream_span_soa(
            model,
            cfg,
            kinds,
            f_old,
            plan,
            moments,
            bc_velocity,
            halo,
            step,
            first,
            &mut chunk,
        );
    });
}

/// Split a list of ascending, disjoint `(start, len)` site ranges into
/// `(first_site, len)` chunks of at most ⌈total/threads⌉ sites, each
/// contained in one source range. Like [`site_chunks`] the subdivision
/// never affects results — collide is per-site independent and stream
/// writes disjoint outputs — only which thread computes which sites.
pub(crate) fn range_chunks(ranges: &[(u32, u32)]) -> Vec<(usize, usize)> {
    let total: usize = ranges.iter().map(|&(_, len)| len as usize).sum();
    if total == 0 {
        return Vec::new();
    }
    let threads = rayon::current_num_threads().max(1);
    let chunk = total.div_ceil(threads).max(1);
    let mut out = Vec::new();
    for &(start, len) in ranges {
        let mut first = start as usize;
        let mut rem = len as usize;
        while rem > 0 {
            let take = chunk.min(rem);
            out.push((first, take));
            first += take;
            rem -= take;
        }
    }
    out
}

/// Chunk-parallel collide restricted to `ranges` of the site-major
/// array; sites outside the ranges are untouched. `f` and `moments`
/// cover the full site list.
pub(crate) fn par_collide_ranges(
    model: &LatticeModel,
    collision: CollisionKind,
    tau: f64,
    mrt: Option<&MrtOperator>,
    f: &mut [f64],
    moments: &mut [(f64, [f64; 3])],
    ranges: &[(u32, u32)],
) {
    let q = model.q;
    let mut work: Vec<CollideWork<'_>> = Vec::new();
    let mut f_rest = f;
    let mut m_rest = moments;
    let mut cursor = 0usize;
    for (first, len) in range_chunks(ranges) {
        let gap = first - cursor;
        let (_, f_tail) = f_rest.split_at_mut(gap * q);
        let (_, m_tail) = m_rest.split_at_mut(gap);
        let (f_chunk, f_tail) = f_tail.split_at_mut(len * q);
        let (m_chunk, m_tail) = m_tail.split_at_mut(len);
        f_rest = f_tail;
        m_rest = m_tail;
        cursor = first + len;
        work.push((f_chunk, m_chunk));
    }
    run_grouped(work, |(f_chunk, m_chunk)| {
        let mut op = mrt.cloned();
        collide_span(model, collision, tau, op.as_mut(), f_chunk, m_chunk)
    });
}

/// Chunk-parallel collide restricted to `ranges` over SoA lanes; sites
/// outside the ranges are untouched. The chunked-SIMD path is
/// chunk-offset-invariant, so restricting to ranges cannot change any
/// site's value.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_collide_soa_ranges(
    model: &LatticeModel,
    collision: CollisionKind,
    tau: f64,
    mrt: Option<&MrtOperator>,
    f: &mut [Vec<f64>],
    moments: &mut [(f64, [f64; 3])],
    ranges: &[(u32, u32)],
    simd: bool,
) {
    let mut lane_rest: Vec<&mut [f64]> = f.iter_mut().map(|l| l.as_mut_slice()).collect();
    let mut m_rest = moments;
    let mut cursor = 0usize;
    let mut work: Vec<SoaCollideWork<'_>> = Vec::new();
    for (first, len) in range_chunks(ranges) {
        let gap = first - cursor;
        if gap > 0 {
            drop(take_lane_chunk(&mut lane_rest, gap));
        }
        let chunk = take_lane_chunk(&mut lane_rest, len);
        let (_, m_tail) = m_rest.split_at_mut(gap);
        let (m_chunk, m_tail) = m_tail.split_at_mut(len);
        m_rest = m_tail;
        cursor = first + len;
        work.push((chunk, m_chunk));
    }
    run_grouped(work, |(mut chunk, m_chunk)| {
        let mut op = mrt.cloned();
        crate::layout::collide_span_soa(
            model,
            collision,
            tau,
            op.as_mut(),
            &mut chunk,
            m_chunk,
            simd,
        );
    });
}

/// Chunk-parallel pull-stream restricted to `ranges` over SoA lanes:
/// only the listed destination sites of `f_next` are written.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_stream_soa_ranges(
    model: &LatticeModel,
    cfg: &SolverConfig,
    kinds: &[SiteKind],
    f_old: &[Vec<f64>],
    plan: &crate::layout::StreamPlan,
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    halo: &[f64],
    step: u64,
    ranges: &[(u32, u32)],
    f_next: &mut [Vec<f64>],
) {
    let mut lane_rest: Vec<&mut [f64]> = f_next.iter_mut().map(|l| l.as_mut_slice()).collect();
    let mut cursor = 0usize;
    let mut work: Vec<(usize, Vec<&mut [f64]>)> = Vec::new();
    for (first, len) in range_chunks(ranges) {
        let gap = first - cursor;
        if gap > 0 {
            drop(take_lane_chunk(&mut lane_rest, gap));
        }
        let chunk = take_lane_chunk(&mut lane_rest, len);
        cursor = first + len;
        work.push((first, chunk));
    }
    run_grouped(work, |(first, mut chunk)| {
        crate::layout::stream_span_soa(
            model,
            cfg,
            kinds,
            f_old,
            plan,
            moments,
            bc_velocity,
            halo,
            step,
            first,
            &mut chunk,
        );
    });
}

/// Chunk-parallel macroscopic-field extraction from SoA lanes.
pub(crate) fn par_macroscopics_soa(
    model: &LatticeModel,
    tau: f64,
    f: &[Vec<f64>],
    rho: &mut [f64],
    u: &mut [[f64; 3]],
    shear: &mut [f64],
) {
    type SoaMacroWork<'a> = (usize, &'a mut [f64], &'a mut [[f64; 3]], &'a mut [f64]);
    let mut work: Vec<SoaMacroWork<'_>> = Vec::new();
    let mut rho_rest = rho;
    let mut u_rest = u;
    let mut sh_rest = shear;
    for (first, len) in site_chunks(rho_rest.len()) {
        let (rho_c, rho_t) = rho_rest.split_at_mut(len);
        let (u_c, u_t) = u_rest.split_at_mut(len);
        let (sh_c, sh_t) = sh_rest.split_at_mut(len);
        rho_rest = rho_t;
        u_rest = u_t;
        sh_rest = sh_t;
        work.push((first, rho_c, u_c, sh_c));
    }
    run_grouped(work, |(first, rho_c, u_c, sh_c)| {
        crate::layout::macroscopics_span_soa(model, tau, f, first, rho_c, u_c, sh_c)
    });
}

/// The thread-parallel solver: the serial [`Solver`]'s state stepped by
/// the chunked kernels above inside a dedicated rayon pool.
///
/// Because pull streaming reads only the old buffer and chunk writes are
/// disjoint, the result is **bit-for-bit identical** to [`Solver`] at
/// any thread count — asserted by the determinism suite and the golden
/// fixtures under `tests/golden/`.
pub struct ParallelSolver {
    inner: Solver,
    pool: rayon::ThreadPool,
    threads: usize,
}

impl ParallelSolver {
    /// Initialise at rest on `geo` with `threads` worker threads.
    pub fn new(geo: Arc<SparseGeometry>, cfg: SolverConfig, threads: usize) -> Self {
        Self::from_solver(Solver::new(geo, cfg), threads)
    }

    /// Wrap an existing solver (mid-run states carry over unchanged).
    pub fn from_solver(inner: Solver, threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        ParallelSolver {
            inner,
            pool,
            threads,
        }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The wrapped serial solver (read-only access to geometry, config,
    /// distributions, …).
    pub fn solver(&self) -> &Solver {
        &self.inner
    }

    /// Unwrap back into the serial solver, preserving the state.
    pub fn into_inner(self) -> Solver {
        self.inner
    }

    /// Completed steps.
    pub fn step_count(&self) -> u64 {
        self.inner.step_count()
    }

    /// Advance one time step (collide + stream), chunk-parallel over the
    /// configured layout.
    pub fn step(&mut self) {
        let s = &mut self.inner;
        self.pool.install(|| s.step_impl(true));
    }

    /// Advance `count` steps.
    pub fn step_n(&mut self, count: u64) {
        for _ in 0..count {
            self.step();
        }
    }

    /// Macroscopic snapshot, extracted chunk-parallel. Bit-identical to
    /// [`Solver::snapshot`] on the same state.
    pub fn snapshot(&self) -> FieldSnapshot {
        let s = &self.inner;
        self.pool.install(|| s.snapshot_impl(true))
    }

    /// Total mass (delegates to the serial implementation).
    pub fn mass(&self) -> f64 {
        self.inner.mass()
    }

    /// Raw distributions, canonical site-major order.
    pub fn raw_distributions(&self) -> Cow<'_, [f64]> {
        self.inner.raw_distributions()
    }

    /// Replace the BC of inlet `id` at runtime (steering).
    pub fn set_inlet_bc(&mut self, id: usize, bc: IoletBc) {
        self.inner.set_inlet_bc(id, bc);
    }

    /// Replace the BC of outlet `id` at runtime.
    pub fn set_outlet_bc(&mut self, id: usize, bc: IoletBc) {
        self.inner.set_outlet_bc(id, bc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ModelKind;
    use hemelb_geometry::VesselBuilder;

    fn bit_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.5).voxelise(1.0));
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        let mut par1 = ParallelSolver::new(geo.clone(), cfg.clone(), 1);
        let mut par4 = ParallelSolver::new(geo, cfg, 4);
        for _ in 0..25 {
            serial.step();
            par1.step();
            par4.step();
        }
        assert!(bit_eq(
            &serial.raw_distributions(),
            &par1.raw_distributions()
        ));
        assert!(bit_eq(
            &serial.raw_distributions(),
            &par4.raw_distributions()
        ));
        let ss = serial.snapshot();
        let ps = par4.snapshot();
        assert!(bit_eq(&ss.rho, &ps.rho));
        assert!(bit_eq(&ss.shear, &ps.shear));
        for (a, b) in ss.u.iter().zip(&ps.u) {
            assert!(bit_eq(a, b));
        }
    }

    #[test]
    fn range_chunks_respect_range_bounds() {
        let ranges = [(2u32, 5u32), (10, 1), (20, 7)];
        let chunks = range_chunks(&ranges);
        let sites: Vec<usize> = chunks
            .iter()
            .flat_map(|&(first, len)| first..first + len)
            .collect();
        let expect: Vec<usize> = ranges
            .iter()
            .flat_map(|&(s, l)| s as usize..(s + l) as usize)
            .collect();
        assert_eq!(sites, expect, "chunks must tile the ranges in order");
        for (first, len) in chunks {
            assert!(ranges
                .iter()
                .any(|&(s, l)| first >= s as usize && first + len <= (s + l) as usize));
        }
        assert!(range_chunks(&[]).is_empty());
    }

    /// Collide over a two-piece range split is bit-identical on covered
    /// sites to collide over everything, and leaves uncovered sites
    /// untouched — the invariant the overlapped step's frontier/interior
    /// phases rely on.
    #[test]
    fn range_collide_matches_full_collide_on_covered_sites() {
        let model = LatticeModel::d3q15();
        let q = model.q;
        let n = 23usize;
        let init: Vec<f64> = (0..n * q).map(|k| 0.05 + (k as f64).cos().abs()).collect();

        let mut full = init.clone();
        let mut m_full = vec![(0.0, [0.0; 3]); n];
        par_collide(
            &model,
            CollisionKind::Bgk,
            0.9,
            None,
            &mut full,
            &mut m_full,
        );

        // Cover sites 0..4 and 9..23, leaving 4..9 untouched.
        let ranges = [(0u32, 4u32), (9, 14)];
        let mut part = init.clone();
        let mut m_part = vec![(0.0, [0.0; 3]); n];
        par_collide_ranges(
            &model,
            CollisionKind::Bgk,
            0.9,
            None,
            &mut part,
            &mut m_part,
            &ranges,
        );
        // SoA range collide over the same split (SIMD on: the chunked
        // path must be offset-invariant across the range seams).
        let mut lanes: Vec<Vec<f64>> = (0..q)
            .map(|i| (0..n).map(|s| init[s * q + i]).collect())
            .collect();
        let mut m_soa = vec![(0.0, [0.0; 3]); n];
        par_collide_soa_ranges(
            &model,
            CollisionKind::Bgk,
            0.9,
            None,
            &mut lanes,
            &mut m_soa,
            &ranges,
            true,
        );

        for s in 0..n {
            let covered = ranges
                .iter()
                .any(|&(st, l)| s >= st as usize && s < (st + l) as usize);
            for i in 0..q {
                let want = if covered {
                    full[s * q + i]
                } else {
                    init[s * q + i]
                };
                assert_eq!(
                    part[s * q + i].to_bits(),
                    want.to_bits(),
                    "site {s} dir {i}"
                );
                assert_eq!(
                    lanes[i][s].to_bits(),
                    want.to_bits(),
                    "soa site {s} dir {i}"
                );
            }
            if covered {
                assert_eq!(m_part[s].0.to_bits(), m_full[s].0.to_bits());
                assert_eq!(m_soa[s].0.to_bits(), m_full[s].0.to_bits());
            }
        }
    }

    #[test]
    fn parallel_matches_serial_with_mrt_and_d3q19() {
        let geo = Arc::new(VesselBuilder::straight_tube(12.0, 3.0).voxelise(1.0));
        let cfg = SolverConfig::velocity_driven(0.03)
            .with_model(ModelKind::D3Q19)
            .with_collision(CollisionKind::Mrt { omega_ghost: 1.2 });
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        let mut par = ParallelSolver::new(geo, cfg, 3);
        serial.step_n(20);
        par.step_n(20);
        assert!(bit_eq(
            &serial.raw_distributions(),
            &par.raw_distributions()
        ));
    }
}
