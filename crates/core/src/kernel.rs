//! Shared collide/stream kernel spans and the rayon-parallel solver.
//!
//! The serial [`Solver`], the [`ParallelSolver`] here, and the
//! distributed solver all execute the *same* per-site code path — the
//! span primitives below. Pull streaming reads only the previous-step
//! buffer and every site writes only its own `f_next` entries, so
//! partitioning the site array into contiguous chunks and running them
//! on worker threads is race-free **and** bit-exact by construction: no
//! atomics, no reductions, no operation reordering. The determinism
//! proptests in `tests/properties.rs` assert
//! `serial == parallel(1) == parallel(4)` via `f64::to_bits`.

use crate::boundary::IoletBc;
use crate::collision::{collide, CollisionKind};
use crate::equilibrium::{moments as site_moments, pi_neq, shear_rate_magnitude};
use crate::fields::FieldSnapshot;
use crate::model::LatticeModel;
use crate::mrt::MrtOperator;
use crate::solver::{boundary_rule, Solver, SolverConfig, LINK_BOUNDARY};
use hemelb_geometry::{SiteKind, SparseGeometry};
use std::borrow::Cow;
use std::sync::Arc;

/// Collide the sites in `f` (a span of `moments.len()` sites, site-major)
/// in place, recording each site's pre-collision moments.
///
/// This is the one collide loop in the codebase: serial, thread-chunked
/// and distributed steps all call it, which is what makes them
/// bit-identical per site.
pub(crate) fn collide_span(
    model: &LatticeModel,
    collision: CollisionKind,
    tau: f64,
    mut mrt: Option<&mut MrtOperator>,
    f: &mut [f64],
    moments: &mut [(f64, [f64; 3])],
) {
    let q = model.q;
    debug_assert_eq!(f.len(), moments.len() * q);
    let mut scratch = vec![0.0; q];
    for (s, m) in moments.iter_mut().enumerate() {
        let fs = &mut f[s * q..(s + 1) * q];
        *m = match mrt.as_deref_mut() {
            Some(op) => op.collide(model, tau, fs),
            None => collide(model, collision, tau, fs, &mut scratch),
        };
    }
}

/// Pull-stream into `out`, a span of `f_next` beginning at global site
/// `first_site`. Reads only the immutable previous-step state, so spans
/// may run concurrently.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stream_span(
    model: &LatticeModel,
    cfg: &SolverConfig,
    geo: &SparseGeometry,
    f_old: &[f64],
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    pull: &[u32],
    step: u64,
    first_site: usize,
    out: &mut [f64],
) {
    let q = model.q;
    debug_assert_eq!(out.len() % q, 0);
    for k in 0..out.len() / q {
        let s = first_site + k;
        let kind = geo.kind(s as u32);
        for i in 0..q {
            let src = pull[s * q + i];
            out[k * q + i] = if src != LINK_BOUNDARY {
                f_old[src as usize * q + i]
            } else {
                boundary_rule(
                    model,
                    cfg,
                    kind,
                    bc_velocity[s],
                    i,
                    f_old[s * q + model.opp[i]],
                    moments[s],
                    step,
                )
            };
        }
    }
}

/// Macroscopic fields of the span of sites starting at `first_site`:
/// density, velocity and shear-rate magnitude, written into the
/// corresponding output spans.
pub(crate) fn macroscopics_span(
    model: &LatticeModel,
    tau: f64,
    f: &[f64],
    rho: &mut [f64],
    u: &mut [[f64; 3]],
    shear: &mut [f64],
) {
    let q = model.q;
    debug_assert_eq!(f.len(), rho.len() * q);
    for s in 0..rho.len() {
        let fs = &f[s * q..(s + 1) * q];
        let (r, v) = site_moments(model, fs);
        let pi = pi_neq(model, fs, r, v);
        rho[s] = r;
        u[s] = v;
        shear[s] = shear_rate_magnitude(pi, r, tau);
    }
}

/// Split the site range `0..n` into one contiguous chunk per rayon
/// worker. Returns `(first_site, len)` pairs covering the range in
/// order; the chunking never affects results, only which thread computes
/// which sites.
pub(crate) fn site_chunks(n: usize) -> Vec<(usize, usize)> {
    let threads = rayon::current_num_threads().max(1);
    let chunk = n.div_ceil(threads).max(1);
    let mut out = Vec::with_capacity(threads);
    let mut first = 0;
    while first < n {
        let len = chunk.min(n - first);
        out.push((first, len));
        first += len;
    }
    out
}

/// Chunk-parallel collide over the whole site array. Each worker gets a
/// disjoint `(f, moments)` pair of spans and (for MRT) its own clone of
/// the operator, whose only mutable state is scratch space.
pub(crate) fn par_collide(
    model: &LatticeModel,
    collision: CollisionKind,
    tau: f64,
    mrt: Option<&MrtOperator>,
    f: &mut [f64],
    moments: &mut [(f64, [f64; 3])],
) {
    let q = model.q;
    rayon::scope(|sc| {
        let mut f_rest = f;
        let mut m_rest = moments;
        for (_, len) in site_chunks(m_rest.len()) {
            let (f_chunk, f_tail) = f_rest.split_at_mut(len * q);
            let (m_chunk, m_tail) = m_rest.split_at_mut(len);
            f_rest = f_tail;
            m_rest = m_tail;
            let mut op = mrt.cloned();
            sc.spawn(move |_| collide_span(model, collision, tau, op.as_mut(), f_chunk, m_chunk));
        }
    });
}

/// Chunk-parallel pull-stream over the whole site array: disjoint spans
/// of `f_next` are written from the shared immutable previous state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_stream(
    model: &LatticeModel,
    cfg: &SolverConfig,
    geo: &SparseGeometry,
    f_old: &[f64],
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    pull: &[u32],
    step: u64,
    f_next: &mut [f64],
) {
    let q = model.q;
    rayon::scope(|sc| {
        let mut rest = f_next;
        for (first, len) in site_chunks(moments.len()) {
            let (out, tail) = rest.split_at_mut(len * q);
            rest = tail;
            sc.spawn(move |_| {
                stream_span(
                    model,
                    cfg,
                    geo,
                    f_old,
                    moments,
                    bc_velocity,
                    pull,
                    step,
                    first,
                    out,
                )
            });
        }
    });
}

/// Chunk-parallel macroscopic-field extraction into pre-sized arrays.
pub(crate) fn par_macroscopics(
    model: &LatticeModel,
    tau: f64,
    f: &[f64],
    rho: &mut [f64],
    u: &mut [[f64; 3]],
    shear: &mut [f64],
) {
    let q = model.q;
    rayon::scope(|sc| {
        let mut f_rest = f;
        let mut rho_rest = rho;
        let mut u_rest = u;
        let mut sh_rest = shear;
        for (_, len) in site_chunks(rho_rest.len()) {
            let (f_c, f_t) = f_rest.split_at(len * q);
            let (rho_c, rho_t) = rho_rest.split_at_mut(len);
            let (u_c, u_t) = u_rest.split_at_mut(len);
            let (sh_c, sh_t) = sh_rest.split_at_mut(len);
            f_rest = f_t;
            rho_rest = rho_t;
            u_rest = u_t;
            sh_rest = sh_t;
            sc.spawn(move |_| macroscopics_span(model, tau, f_c, rho_c, u_c, sh_c));
        }
    });
}

/// Split each SoA lane at `len`, collecting the heads into one per-lane
/// chunk bundle and leaving the tails in `rest` — the safe-Rust way to
/// hand disjoint site spans of every lane to a worker.
fn take_lane_chunk<'a>(rest: &mut [&'a mut [f64]], len: usize) -> Vec<&'a mut [f64]> {
    rest.iter_mut()
        .map(|lane| {
            let taken = std::mem::take(lane);
            let (head, tail) = taken.split_at_mut(len);
            *lane = tail;
            head
        })
        .collect()
}

/// Chunk-parallel collide over SoA lanes: each worker gets the same
/// site span of every lane plus its moments span.
pub(crate) fn par_collide_soa(
    model: &LatticeModel,
    collision: CollisionKind,
    tau: f64,
    mrt: Option<&MrtOperator>,
    f: &mut [Vec<f64>],
    moments: &mut [(f64, [f64; 3])],
    simd: bool,
) {
    rayon::scope(|sc| {
        let mut lane_rest: Vec<&mut [f64]> = f.iter_mut().map(|l| l.as_mut_slice()).collect();
        let mut m_rest = moments;
        for (_, len) in site_chunks(m_rest.len()) {
            let chunk = take_lane_chunk(&mut lane_rest, len);
            let (m_chunk, m_tail) = m_rest.split_at_mut(len);
            m_rest = m_tail;
            let mut op = mrt.cloned();
            sc.spawn(move |_| {
                let mut chunk = chunk;
                crate::layout::collide_span_soa(
                    model,
                    collision,
                    tau,
                    op.as_mut(),
                    &mut chunk,
                    m_chunk,
                    simd,
                );
            });
        }
    });
}

/// Chunk-parallel pull-stream over SoA lanes: disjoint site spans of
/// `f_next` are written from the shared immutable previous state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_stream_soa(
    model: &LatticeModel,
    cfg: &SolverConfig,
    kinds: &[SiteKind],
    f_old: &[Vec<f64>],
    plan: &crate::layout::StreamPlan,
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    halo: &[f64],
    step: u64,
    f_next: &mut [Vec<f64>],
) {
    rayon::scope(|sc| {
        let mut lane_rest: Vec<&mut [f64]> = f_next.iter_mut().map(|l| l.as_mut_slice()).collect();
        for (first, len) in site_chunks(moments.len()) {
            let chunk = take_lane_chunk(&mut lane_rest, len);
            sc.spawn(move |_| {
                let mut chunk = chunk;
                crate::layout::stream_span_soa(
                    model,
                    cfg,
                    kinds,
                    f_old,
                    plan,
                    moments,
                    bc_velocity,
                    halo,
                    step,
                    first,
                    &mut chunk,
                );
            });
        }
    });
}

/// Chunk-parallel macroscopic-field extraction from SoA lanes.
pub(crate) fn par_macroscopics_soa(
    model: &LatticeModel,
    tau: f64,
    f: &[Vec<f64>],
    rho: &mut [f64],
    u: &mut [[f64; 3]],
    shear: &mut [f64],
) {
    rayon::scope(|sc| {
        let mut rho_rest = rho;
        let mut u_rest = u;
        let mut sh_rest = shear;
        for (first, len) in site_chunks(rho_rest.len()) {
            let (rho_c, rho_t) = rho_rest.split_at_mut(len);
            let (u_c, u_t) = u_rest.split_at_mut(len);
            let (sh_c, sh_t) = sh_rest.split_at_mut(len);
            rho_rest = rho_t;
            u_rest = u_t;
            sh_rest = sh_t;
            sc.spawn(move |_| {
                crate::layout::macroscopics_span_soa(model, tau, f, first, rho_c, u_c, sh_c)
            });
        }
    });
}

/// The thread-parallel solver: the serial [`Solver`]'s state stepped by
/// the chunked kernels above inside a dedicated rayon pool.
///
/// Because pull streaming reads only the old buffer and chunk writes are
/// disjoint, the result is **bit-for-bit identical** to [`Solver`] at
/// any thread count — asserted by the determinism suite and the golden
/// fixtures under `tests/golden/`.
pub struct ParallelSolver {
    inner: Solver,
    pool: rayon::ThreadPool,
    threads: usize,
}

impl ParallelSolver {
    /// Initialise at rest on `geo` with `threads` worker threads.
    pub fn new(geo: Arc<SparseGeometry>, cfg: SolverConfig, threads: usize) -> Self {
        Self::from_solver(Solver::new(geo, cfg), threads)
    }

    /// Wrap an existing solver (mid-run states carry over unchanged).
    pub fn from_solver(inner: Solver, threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        ParallelSolver {
            inner,
            pool,
            threads,
        }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The wrapped serial solver (read-only access to geometry, config,
    /// distributions, …).
    pub fn solver(&self) -> &Solver {
        &self.inner
    }

    /// Unwrap back into the serial solver, preserving the state.
    pub fn into_inner(self) -> Solver {
        self.inner
    }

    /// Completed steps.
    pub fn step_count(&self) -> u64 {
        self.inner.step_count()
    }

    /// Advance one time step (collide + stream), chunk-parallel over the
    /// configured layout.
    pub fn step(&mut self) {
        let s = &mut self.inner;
        self.pool.install(|| s.step_impl(true));
    }

    /// Advance `count` steps.
    pub fn step_n(&mut self, count: u64) {
        for _ in 0..count {
            self.step();
        }
    }

    /// Macroscopic snapshot, extracted chunk-parallel. Bit-identical to
    /// [`Solver::snapshot`] on the same state.
    pub fn snapshot(&self) -> FieldSnapshot {
        let s = &self.inner;
        self.pool.install(|| s.snapshot_impl(true))
    }

    /// Total mass (delegates to the serial implementation).
    pub fn mass(&self) -> f64 {
        self.inner.mass()
    }

    /// Raw distributions, canonical site-major order.
    pub fn raw_distributions(&self) -> Cow<'_, [f64]> {
        self.inner.raw_distributions()
    }

    /// Replace the BC of inlet `id` at runtime (steering).
    pub fn set_inlet_bc(&mut self, id: usize, bc: IoletBc) {
        self.inner.set_inlet_bc(id, bc);
    }

    /// Replace the BC of outlet `id` at runtime.
    pub fn set_outlet_bc(&mut self, id: usize, bc: IoletBc) {
        self.inner.set_outlet_bc(id, bc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ModelKind;
    use hemelb_geometry::VesselBuilder;

    fn bit_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.5).voxelise(1.0));
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        let mut par1 = ParallelSolver::new(geo.clone(), cfg.clone(), 1);
        let mut par4 = ParallelSolver::new(geo, cfg, 4);
        for _ in 0..25 {
            serial.step();
            par1.step();
            par4.step();
        }
        assert!(bit_eq(
            &serial.raw_distributions(),
            &par1.raw_distributions()
        ));
        assert!(bit_eq(
            &serial.raw_distributions(),
            &par4.raw_distributions()
        ));
        let ss = serial.snapshot();
        let ps = par4.snapshot();
        assert!(bit_eq(&ss.rho, &ps.rho));
        assert!(bit_eq(&ss.shear, &ps.shear));
        for (a, b) in ss.u.iter().zip(&ps.u) {
            assert!(bit_eq(a, b));
        }
    }

    #[test]
    fn parallel_matches_serial_with_mrt_and_d3q19() {
        let geo = Arc::new(VesselBuilder::straight_tube(12.0, 3.0).voxelise(1.0));
        let cfg = SolverConfig::velocity_driven(0.03)
            .with_model(ModelKind::D3Q19)
            .with_collision(CollisionKind::Mrt { omega_ghost: 1.2 });
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        let mut par = ParallelSolver::new(geo, cfg, 3);
        serial.step_n(20);
        par.step_n(20);
        assert!(bit_eq(
            &serial.raw_distributions(),
            &par.raw_distributions()
        ));
    }
}
