//! # hemelb-steering
//!
//! Computational steering — the part that "closes the loop" in the
//! paper's Fig. 2. A [`SteeringClient`] connects to the simulation
//! master, sends visualisation parameters and simulation-parameter
//! changes, and receives images and status reports back, following the
//! six-step in situ loop of §IV-C-1 verbatim:
//!
//! 1. a simulation runs on the (simulated) cluster;
//! 2. a steering client connects to the master rank;
//! 3. the client sends visualisation parameters (view point, field, …);
//! 4. the master propagates them to the visualisation component
//!    (a broadcast to all ranks);
//! 5. the visualisation component renders from the live fields
//!    (brick ray casting + sort-last compositing);
//! 6. the image returns to the master and thence to the client.
//!
//! Transports: an in-memory duplex for tests/benches and a real TCP
//! framing for out-of-process clients. The closed-loop runner couples a
//! [`hemelb_core::DistSolver`] with the in situ renderer and the
//! steering server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod client;
pub mod closedloop;
pub mod error;
pub mod gateway;
pub mod protocol;
pub mod server;
pub mod transport;

pub use adaptive::{AdaptiveDriver, WindowDecision};
pub use client::{BackoffPolicy, SteeringClient, TransportFactory};
pub use closedloop::{run_closed_loop, run_closed_loop_opts, ClosedLoopConfig, ClosedLoopOutcome};
pub use error::{SteeringError, SteeringResult};
pub use gateway::{
    CacheLookup, FrameCache, FrameKey, GatewayConfig, Role, SessionGateway, SessionId,
};
pub use protocol::{
    FieldChoice, ImageFrame, ObservableReport, SparseImageFrame, StatusReport, SteeringCommand,
    MAX_FRAME_LEN,
};
pub use server::{ClientLossPolicy, SteeringServer};
pub use transport::{
    duplex_listener, duplex_pair, Acceptor, DuplexAcceptor, DuplexConnector, InMemoryTransport,
    TcpAcceptor, TcpTransport, Transport,
};
