//! The steering wire protocol.
//!
//! Client → simulation: [`SteeringCommand`]. Simulation → client:
//! [`StatusReport`] and [`ImageFrame`]. Frames are self-describing
//! (kind byte + payload) and encoded with the same compact
//! little-endian wire layer the substrate uses.

use hemelb_parallel::{CommError, CommResult, Wire, WireReader, WireWriter};
use serde::{Deserialize, Serialize};

/// Which field the in situ renderer displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldChoice {
    /// Pressure/density.
    Density,
    /// Velocity magnitude.
    Speed,
    /// Shear-rate magnitude (wall shear stress basis).
    Shear,
}

impl FieldChoice {
    fn code(self) -> u8 {
        match self {
            FieldChoice::Density => 0,
            FieldChoice::Speed => 1,
            FieldChoice::Shear => 2,
        }
    }
    fn from_code(c: u8) -> CommResult<Self> {
        match c {
            0 => Ok(FieldChoice::Density),
            1 => Ok(FieldChoice::Speed),
            2 => Ok(FieldChoice::Shear),
            _ => Err(CommError::Decode {
                reason: format!("invalid field choice {c}"),
            }),
        }
    }
}

/// A user request to the running simulation (paper §I: "an increase of
/// the visualisation rate, a change of the viewpoint or the extraction
/// of hydrodynamic observables from a user-defined subset of the
/// simulation volume", plus parameter modification for closing the
/// loop).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SteeringCommand {
    /// Move the camera (eye, target, up as `[x, y, z]`; vertical FOV in
    /// radians).
    SetCamera {
        /// Eye position.
        eye: [f64; 3],
        /// Look-at target.
        target: [f64; 3],
        /// Up hint.
        up: [f64; 3],
        /// Vertical field of view (radians).
        fov_y: f64,
    },
    /// Select the displayed field.
    SetField(FieldChoice),
    /// Render every `n` simulation steps.
    SetVisRate(u32),
    /// Restrict analysis/rendering to a region of interest (lattice
    /// cells, `lo` inclusive / `hi` exclusive).
    SetRoi {
        /// Minimum corner.
        lo: [u32; 3],
        /// Maximum corner.
        hi: [u32; 3],
    },
    /// Change inlet `id`'s prescribed density (pressure steering).
    SetInletPressure {
        /// Inlet id.
        id: u32,
        /// New lattice density.
        rho: f64,
    },
    /// Suspend time stepping (rendering stays available).
    Pause,
    /// Resume time stepping.
    Resume,
    /// Request an immediate render regardless of the vis rate.
    RequestFrame,
    /// Request hydrodynamic observables over the current ROI (or the
    /// whole domain if none is set) — §I's "extraction of hydrodynamic
    /// observables from a user-defined subset of the simulation volume".
    RequestObservables,
    /// Enable or disable measurement-driven adaptive load balancing
    /// mid-run (the `ClosedLoopConfig::adaptive_lb` loop).
    SetAdaptiveLb(bool),
    /// End the run.
    Terminate,
}

impl Wire for SteeringCommand {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            SteeringCommand::SetCamera {
                eye,
                target,
                up,
                fov_y,
            } => {
                w.put_u8(0);
                w.put(eye);
                w.put(target);
                w.put(up);
                w.put_f64(*fov_y);
            }
            SteeringCommand::SetField(f) => {
                w.put_u8(1);
                w.put_u8(f.code());
            }
            SteeringCommand::SetVisRate(n) => {
                w.put_u8(2);
                w.put_u32(*n);
            }
            SteeringCommand::SetRoi { lo, hi } => {
                w.put_u8(3);
                for v in lo.iter().chain(hi.iter()) {
                    w.put_u32(*v);
                }
            }
            SteeringCommand::SetInletPressure { id, rho } => {
                w.put_u8(4);
                w.put_u32(*id);
                w.put_f64(*rho);
            }
            SteeringCommand::Pause => w.put_u8(5),
            SteeringCommand::Resume => w.put_u8(6),
            SteeringCommand::RequestFrame => w.put_u8(7),
            SteeringCommand::Terminate => w.put_u8(8),
            SteeringCommand::RequestObservables => w.put_u8(9),
            SteeringCommand::SetAdaptiveLb(on) => {
                w.put_u8(10);
                w.put_bool(*on);
            }
        }
    }

    fn decode(r: &mut WireReader) -> CommResult<Self> {
        match r.get_u8()? {
            0 => Ok(SteeringCommand::SetCamera {
                eye: r.get()?,
                target: r.get()?,
                up: r.get()?,
                fov_y: r.get_f64()?,
            }),
            1 => Ok(SteeringCommand::SetField(FieldChoice::from_code(
                r.get_u8()?,
            )?)),
            2 => Ok(SteeringCommand::SetVisRate(r.get_u32()?)),
            3 => Ok(SteeringCommand::SetRoi {
                lo: [r.get_u32()?, r.get_u32()?, r.get_u32()?],
                hi: [r.get_u32()?, r.get_u32()?, r.get_u32()?],
            }),
            4 => Ok(SteeringCommand::SetInletPressure {
                id: r.get_u32()?,
                rho: r.get_f64()?,
            }),
            5 => Ok(SteeringCommand::Pause),
            6 => Ok(SteeringCommand::Resume),
            7 => Ok(SteeringCommand::RequestFrame),
            8 => Ok(SteeringCommand::Terminate),
            9 => Ok(SteeringCommand::RequestObservables),
            10 => Ok(SteeringCommand::SetAdaptiveLb(r.get_bool()?)),
            k => Err(CommError::Decode {
                reason: format!("invalid steering command kind {k}"),
            }),
        }
    }
}

/// Status information returned to the client (paper §I: "consistency
/// and validity checks, or estimates on the remaining runtime").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Completed simulation steps.
    pub step: u64,
    /// Total mass (conservation monitor).
    pub mass: f64,
    /// Maximum lattice speed (stability monitor).
    pub max_speed: f64,
    /// RMS velocity change per step (convergence monitor).
    pub residual: f64,
    /// Validity problems found (empty = healthy).
    pub problems: Vec<String>,
    /// Estimated steps remaining until the configured end.
    pub eta_steps: u64,
    /// Whether time stepping is currently paused.
    pub paused: bool,
    /// Repartitions applied so far (steered and adaptive).
    pub rebalances: u64,
    /// Most recently measured max/mean step-time imbalance (1.0 when no
    /// adaptive-LB window has completed yet).
    pub lb_imbalance: f64,
}

impl Wire for StatusReport {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.step);
        w.put_f64(self.mass);
        w.put_f64(self.max_speed);
        w.put_f64(self.residual);
        w.put(&self.problems);
        w.put_u64(self.eta_steps);
        w.put_bool(self.paused);
        w.put_u64(self.rebalances);
        w.put_f64(self.lb_imbalance);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        Ok(StatusReport {
            step: r.get_u64()?,
            mass: r.get_f64()?,
            max_speed: r.get_f64()?,
            residual: r.get_f64()?,
            problems: r.get()?,
            eta_steps: r.get_u64()?,
            paused: r.get_bool()?,
            rebalances: r.get_u64()?,
            lb_imbalance: r.get_f64()?,
        })
    }
}

/// A rendered frame returned to the client (RGB, 8-bit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageFrame {
    /// Simulation step the frame shows.
    pub step: u64,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major RGB bytes (white background).
    pub rgb: Vec<u8>,
}

impl Wire for ImageFrame {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.step);
        w.put_u32(self.width);
        w.put_u32(self.height);
        w.put_bytes(&self.rgb);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        let step = r.get_u64()?;
        let width = r.get_u32()?;
        let height = r.get_u32()?;
        let rgb = r.get_bytes()?.to_vec();
        if rgb.len() != (width * height * 3) as usize {
            return Err(CommError::Decode {
                reason: format!(
                    "image payload {} bytes does not match {}x{} RGB",
                    rgb.len(),
                    width,
                    height
                ),
            });
        }
        Ok(ImageFrame {
            step,
            width,
            height,
            rgb,
        })
    }
}

/// Hydrodynamic observables over a site subset (the ROI, or the whole
/// domain), computed in situ without shipping the fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservableReport {
    /// Simulation step of the measurement.
    pub step: u64,
    /// Sites in the subset.
    pub sites: u64,
    /// Mean lattice density over the subset (pressure = cs²ρ).
    pub mean_density: f64,
    /// Mean speed over the subset.
    pub mean_speed: f64,
    /// Maximum speed over the subset.
    pub max_speed: f64,
    /// Maximum wall shear stress over the subset's wall sites (lattice
    /// units).
    pub max_wss: f64,
    /// The ROI used (`None` = whole domain).
    pub roi: Option<([u32; 3], [u32; 3])>,
}

impl Wire for ObservableReport {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.step);
        w.put_u64(self.sites);
        w.put_f64(self.mean_density);
        w.put_f64(self.mean_speed);
        w.put_f64(self.max_speed);
        w.put_f64(self.max_wss);
        match self.roi {
            None => w.put_u8(0),
            Some((lo, hi)) => {
                w.put_u8(1);
                for v in lo.iter().chain(hi.iter()) {
                    w.put_u32(*v);
                }
            }
        }
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        let step = r.get_u64()?;
        let sites = r.get_u64()?;
        let mean_density = r.get_f64()?;
        let mean_speed = r.get_f64()?;
        let max_speed = r.get_f64()?;
        let max_wss = r.get_f64()?;
        let roi = match r.get_u8()? {
            0 => None,
            1 => Some((
                [r.get_u32()?, r.get_u32()?, r.get_u32()?],
                [r.get_u32()?, r.get_u32()?, r.get_u32()?],
            )),
            k => {
                return Err(CommError::Decode {
                    reason: format!("invalid roi flag {k}"),
                })
            }
        };
        Ok(ObservableReport {
            step,
            sites,
            mean_density,
            mean_speed,
            max_speed,
            max_wss,
            roi,
        })
    }
}

/// A framed message from the simulation to the client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// A status report.
    Status(StatusReport),
    /// A rendered image.
    Image(ImageFrame),
    /// In situ observables over the ROI.
    Observables(ObservableReport),
}

impl Wire for ServerMessage {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ServerMessage::Status(s) => {
                w.put_u8(0);
                s.encode(w);
            }
            ServerMessage::Image(i) => {
                w.put_u8(1);
                i.encode(w);
            }
            ServerMessage::Observables(o) => {
                w.put_u8(2);
                o.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        match r.get_u8()? {
            0 => Ok(ServerMessage::Status(StatusReport::decode(r)?)),
            1 => Ok(ServerMessage::Image(ImageFrame::decode(r)?)),
            2 => Ok(ServerMessage::Observables(ObservableReport::decode(r)?)),
            k => Err(CommError::Decode {
                reason: format!("invalid server message kind {k}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let b = v.to_bytes();
        assert_eq!(T::from_bytes(b).unwrap(), v);
    }

    #[test]
    fn all_commands_round_trip() {
        round_trip(SteeringCommand::SetCamera {
            eye: [1.0, 2.0, 3.0],
            target: [0.0, 0.0, 0.0],
            up: [0.0, 0.0, 1.0],
            fov_y: 0.8,
        });
        round_trip(SteeringCommand::SetField(FieldChoice::Shear));
        round_trip(SteeringCommand::SetVisRate(25));
        round_trip(SteeringCommand::SetRoi {
            lo: [0, 1, 2],
            hi: [10, 11, 12],
        });
        round_trip(SteeringCommand::SetInletPressure { id: 0, rho: 1.02 });
        round_trip(SteeringCommand::Pause);
        round_trip(SteeringCommand::Resume);
        round_trip(SteeringCommand::RequestFrame);
        round_trip(SteeringCommand::RequestObservables);
        round_trip(SteeringCommand::SetAdaptiveLb(true));
        round_trip(SteeringCommand::SetAdaptiveLb(false));
        round_trip(SteeringCommand::Terminate);
    }

    #[test]
    fn status_and_image_round_trip() {
        round_trip(StatusReport {
            step: 1000,
            mass: 12345.6,
            max_speed: 0.08,
            residual: 1e-7,
            problems: vec!["example".into()],
            eta_steps: 500,
            paused: false,
            rebalances: 2,
            lb_imbalance: 1.37,
        });
        round_trip(ServerMessage::Image(ImageFrame {
            step: 7,
            width: 2,
            height: 3,
            rgb: vec![0; 18],
        }));
        round_trip(ServerMessage::Observables(ObservableReport {
            step: 11,
            sites: 512,
            mean_density: 1.002,
            mean_speed: 0.03,
            max_speed: 0.09,
            max_wss: 1.5e-3,
            roi: Some(([1, 2, 3], [4, 5, 6])),
        }));
        round_trip(ServerMessage::Observables(ObservableReport {
            step: 0,
            sites: 0,
            mean_density: 0.0,
            mean_speed: 0.0,
            max_speed: 0.0,
            max_wss: 0.0,
            roi: None,
        }));
    }

    #[test]
    fn image_size_mismatch_rejected() {
        let bad = ImageFrame {
            step: 0,
            width: 4,
            height: 4,
            rgb: vec![0; 10],
        };
        let b = bad.to_bytes();
        assert!(ImageFrame::from_bytes(b).is_err());
    }

    #[test]
    fn garbage_kind_rejected() {
        let mut w = hemelb_parallel::WireWriter::new();
        w.put_u8(99);
        assert!(SteeringCommand::from_bytes(w.finish()).is_err());
    }

    #[test]
    fn truncated_frames_are_errors_not_panics() {
        // Every proper prefix of a valid encoding must decode to an
        // error (a half-received TCP frame shows up exactly like this).
        let cmd = SteeringCommand::SetCamera {
            eye: [1.0, 2.0, 3.0],
            target: [4.0, 5.0, 6.0],
            up: [0.0, 0.0, 1.0],
            fov_y: 0.7,
        };
        let full = cmd.to_bytes();
        for n in 0..full.len() {
            let prefix = bytes::Bytes::from(full[..n].to_vec());
            assert!(
                SteeringCommand::from_bytes(prefix).is_err(),
                "prefix of {n} bytes must not decode"
            );
        }
        let msg = ServerMessage::Status(StatusReport {
            step: 9,
            mass: 1.0,
            max_speed: 0.1,
            residual: 1e-6,
            problems: vec!["p".into()],
            eta_steps: 3,
            paused: true,
            rebalances: 1,
            lb_imbalance: 1.2,
        });
        let full = msg.to_bytes();
        for n in 0..full.len() {
            let prefix = bytes::Bytes::from(full[..n].to_vec());
            assert!(ServerMessage::from_bytes(prefix).is_err());
        }
    }

    #[test]
    fn bad_tags_are_errors_on_both_directions() {
        for kind in [11u8, 42, 255] {
            let mut w = hemelb_parallel::WireWriter::new();
            w.put_u8(kind);
            assert!(SteeringCommand::from_bytes(w.finish()).is_err());
        }
        for kind in [3u8, 77, 255] {
            let mut w = hemelb_parallel::WireWriter::new();
            w.put_u8(kind);
            assert!(ServerMessage::from_bytes(w.finish()).is_err());
        }
    }

    #[test]
    fn oversized_length_prefix_is_an_error_not_an_allocation() {
        // An image frame whose pixel-payload length prefix claims far
        // more bytes than the frame carries: must fail cleanly, not
        // attempt a huge allocation or panic.
        let mut w = hemelb_parallel::WireWriter::new();
        w.put_u8(1); // ServerMessage::Image
        w.put_u64(0); // step
        w.put_u32(2); // width
        w.put_u32(2); // height
        w.put_u64(u64::MAX / 2); // absurd RGB byte count
        assert!(ServerMessage::from_bytes(w.finish()).is_err());

        // Same for the problems list of a status report.
        let mut w = hemelb_parallel::WireWriter::new();
        w.put_u8(0); // ServerMessage::Status
        w.put_u64(1); // step
        w.put_f64(1.0); // mass
        w.put_f64(0.1); // max_speed
        w.put_f64(0.0); // residual
        w.put_u64(u64::MAX); // absurd problems count
        assert!(ServerMessage::from_bytes(w.finish()).is_err());
    }
}
