//! The steering wire protocol.
//!
//! Client → simulation: [`SteeringCommand`]. Simulation → client:
//! [`StatusReport`] and [`ImageFrame`]. Frames are self-describing
//! (kind byte + payload) and encoded with the same compact
//! little-endian wire layer the substrate uses.

use hemelb_parallel::{CommError, CommResult, Wire, WireReader, WireWriter};
use serde::{Deserialize, Serialize};

/// The one frame-length ceiling every steering endpoint enforces, in
/// both directions. The TCP framing refuses to *read* a longer frame
/// before allocating, refuses to *send* one, and the decode paths
/// (server command poll, client message receive, image payloads)
/// re-check it so an in-memory transport — which has no framing layer —
/// gets the same guarantee. 64 MiB comfortably fits the largest
/// legitimate message (a Medium 512×384 RGB frame is ~0.6 MiB) while
/// keeping a malicious or corrupt length prefix from turning into a
/// giant allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Frame-length guard applied on every decode path, client and server
/// alike (the satellite fix: the guard used to exist only on the server
/// receive path).
pub fn check_frame_len(len: usize) -> CommResult<()> {
    if len > MAX_FRAME_LEN {
        return Err(CommError::Decode {
            reason: format!("frame of {len} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"),
        });
    }
    Ok(())
}

/// Which field the in situ renderer displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldChoice {
    /// Pressure/density.
    Density,
    /// Velocity magnitude.
    Speed,
    /// Shear-rate magnitude (wall shear stress basis).
    Shear,
}

impl FieldChoice {
    fn code(self) -> u8 {
        match self {
            FieldChoice::Density => 0,
            FieldChoice::Speed => 1,
            FieldChoice::Shear => 2,
        }
    }
    fn from_code(c: u8) -> CommResult<Self> {
        match c {
            0 => Ok(FieldChoice::Density),
            1 => Ok(FieldChoice::Speed),
            2 => Ok(FieldChoice::Shear),
            _ => Err(CommError::Decode {
                reason: format!("invalid field choice {c}"),
            }),
        }
    }
}

/// A user request to the running simulation (paper §I: "an increase of
/// the visualisation rate, a change of the viewpoint or the extraction
/// of hydrodynamic observables from a user-defined subset of the
/// simulation volume", plus parameter modification for closing the
/// loop).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SteeringCommand {
    /// Move the camera (eye, target, up as `[x, y, z]`; vertical FOV in
    /// radians).
    SetCamera {
        /// Eye position.
        eye: [f64; 3],
        /// Look-at target.
        target: [f64; 3],
        /// Up hint.
        up: [f64; 3],
        /// Vertical field of view (radians).
        fov_y: f64,
    },
    /// Select the displayed field.
    SetField(FieldChoice),
    /// Render every `n` simulation steps.
    SetVisRate(u32),
    /// Restrict analysis/rendering to a region of interest (lattice
    /// cells, `lo` inclusive / `hi` exclusive).
    SetRoi {
        /// Minimum corner.
        lo: [u32; 3],
        /// Maximum corner.
        hi: [u32; 3],
    },
    /// Change inlet `id`'s prescribed density (pressure steering).
    SetInletPressure {
        /// Inlet id.
        id: u32,
        /// New lattice density.
        rho: f64,
    },
    /// Suspend time stepping (rendering stays available).
    Pause,
    /// Resume time stepping.
    Resume,
    /// Request an immediate render regardless of the vis rate.
    RequestFrame,
    /// Request hydrodynamic observables over the current ROI (or the
    /// whole domain if none is set) — §I's "extraction of hydrodynamic
    /// observables from a user-defined subset of the simulation volume".
    RequestObservables,
    /// Enable or disable measurement-driven adaptive load balancing
    /// mid-run (the `ClosedLoopConfig::adaptive_lb` loop).
    SetAdaptiveLb(bool),
    /// Give up the driver role voluntarily (multi-client gateway): the
    /// sender becomes an observer and the longest-attached observer is
    /// promoted to driver. A no-op at the simulation level and in
    /// single-client sessions.
    ReleaseDriver,
    /// End the run.
    Terminate,
}

impl Wire for SteeringCommand {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            SteeringCommand::SetCamera {
                eye,
                target,
                up,
                fov_y,
            } => {
                w.put_u8(0);
                w.put(eye);
                w.put(target);
                w.put(up);
                w.put_f64(*fov_y);
            }
            SteeringCommand::SetField(f) => {
                w.put_u8(1);
                w.put_u8(f.code());
            }
            SteeringCommand::SetVisRate(n) => {
                w.put_u8(2);
                w.put_u32(*n);
            }
            SteeringCommand::SetRoi { lo, hi } => {
                w.put_u8(3);
                for v in lo.iter().chain(hi.iter()) {
                    w.put_u32(*v);
                }
            }
            SteeringCommand::SetInletPressure { id, rho } => {
                w.put_u8(4);
                w.put_u32(*id);
                w.put_f64(*rho);
            }
            SteeringCommand::Pause => w.put_u8(5),
            SteeringCommand::Resume => w.put_u8(6),
            SteeringCommand::RequestFrame => w.put_u8(7),
            SteeringCommand::Terminate => w.put_u8(8),
            SteeringCommand::RequestObservables => w.put_u8(9),
            SteeringCommand::SetAdaptiveLb(on) => {
                w.put_u8(10);
                w.put_bool(*on);
            }
            SteeringCommand::ReleaseDriver => w.put_u8(11),
        }
    }

    fn decode(r: &mut WireReader) -> CommResult<Self> {
        match r.get_u8()? {
            0 => Ok(SteeringCommand::SetCamera {
                eye: r.get()?,
                target: r.get()?,
                up: r.get()?,
                fov_y: r.get_f64()?,
            }),
            1 => Ok(SteeringCommand::SetField(FieldChoice::from_code(
                r.get_u8()?,
            )?)),
            2 => Ok(SteeringCommand::SetVisRate(r.get_u32()?)),
            3 => Ok(SteeringCommand::SetRoi {
                lo: [r.get_u32()?, r.get_u32()?, r.get_u32()?],
                hi: [r.get_u32()?, r.get_u32()?, r.get_u32()?],
            }),
            4 => Ok(SteeringCommand::SetInletPressure {
                id: r.get_u32()?,
                rho: r.get_f64()?,
            }),
            5 => Ok(SteeringCommand::Pause),
            6 => Ok(SteeringCommand::Resume),
            7 => Ok(SteeringCommand::RequestFrame),
            8 => Ok(SteeringCommand::Terminate),
            9 => Ok(SteeringCommand::RequestObservables),
            10 => Ok(SteeringCommand::SetAdaptiveLb(r.get_bool()?)),
            11 => Ok(SteeringCommand::ReleaseDriver),
            k => Err(CommError::Decode {
                reason: format!("invalid steering command kind {k}"),
            }),
        }
    }
}

/// Status information returned to the client (paper §I: "consistency
/// and validity checks, or estimates on the remaining runtime").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Completed simulation steps.
    pub step: u64,
    /// Total mass (conservation monitor).
    pub mass: f64,
    /// Maximum lattice speed (stability monitor).
    pub max_speed: f64,
    /// RMS velocity change per step (convergence monitor).
    pub residual: f64,
    /// Validity problems found (empty = healthy).
    pub problems: Vec<String>,
    /// Estimated steps remaining until the configured end.
    pub eta_steps: u64,
    /// Whether time stepping is currently paused.
    pub paused: bool,
    /// Repartitions applied so far (steered and adaptive).
    pub rebalances: u64,
    /// Most recently measured max/mean step-time imbalance (1.0 when no
    /// adaptive-LB window has completed yet).
    pub lb_imbalance: f64,
    /// Steering sessions currently attached (0 or 1 in single-client
    /// mode; any number under the session gateway).
    pub sessions: u32,
    /// Rendered-frame cache hits so far (0 without a gateway).
    pub cache_hits: u64,
    /// Rendered-frame cache misses so far (0 without a gateway).
    pub cache_misses: u64,
}

impl Wire for StatusReport {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.step);
        w.put_f64(self.mass);
        w.put_f64(self.max_speed);
        w.put_f64(self.residual);
        w.put(&self.problems);
        w.put_u64(self.eta_steps);
        w.put_bool(self.paused);
        w.put_u64(self.rebalances);
        w.put_f64(self.lb_imbalance);
        w.put_u32(self.sessions);
        w.put_u64(self.cache_hits);
        w.put_u64(self.cache_misses);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        Ok(StatusReport {
            step: r.get_u64()?,
            mass: r.get_f64()?,
            max_speed: r.get_f64()?,
            residual: r.get_f64()?,
            problems: r.get()?,
            eta_steps: r.get_u64()?,
            paused: r.get_bool()?,
            rebalances: r.get_u64()?,
            lb_imbalance: r.get_f64()?,
            sessions: r.get_u32()?,
            cache_hits: r.get_u64()?,
            cache_misses: r.get_u64()?,
        })
    }
}

/// A rendered frame returned to the client (RGB, 8-bit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageFrame {
    /// Simulation step the frame shows.
    pub step: u64,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major RGB bytes (white background).
    pub rgb: Vec<u8>,
}

impl Wire for ImageFrame {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.step);
        w.put_u32(self.width);
        w.put_u32(self.height);
        w.put_bytes(&self.rgb);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        let step = r.get_u64()?;
        let width = r.get_u32()?;
        let height = r.get_u32()?;
        // u64 arithmetic: `width * height * 3` in u32 silently wraps for
        // a hostile 65536×65536 header, which would make a mismatched
        // payload pass the check below.
        let expect = width as u64 * height as u64 * 3;
        check_frame_len(expect.min(usize::MAX as u64) as usize)?;
        let rgb = r.get_bytes()?.to_vec();
        if rgb.len() as u64 != expect {
            return Err(CommError::Decode {
                reason: format!(
                    "image payload {} bytes does not match {}x{} RGB",
                    rgb.len(),
                    width,
                    height
                ),
            });
        }
        Ok(ImageFrame {
            step,
            width,
            height,
            rgb,
        })
    }
}

/// A rendered frame in the sparse run-length wire form the gateway
/// broadcasts: only the pixels that differ from the background are
/// shipped, as `(offset, count)` runs over the row-major pixel index
/// plus one concatenated RGB slice — the same idea as PR 3's sparse
/// compositing format, applied to the client-facing payload. A vessel
/// frame is mostly white background, so fanning this out to hundreds of
/// observers costs a fraction of the dense bytes. Lossless:
/// `SparseImageFrame::from_dense` → [`SparseImageFrame::to_dense`] is
/// bit-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseImageFrame {
    /// Simulation step the frame shows.
    pub step: u64,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// The RGB value of every pixel not covered by a run.
    pub background: [u8; 3],
    /// `(first_pixel, pixel_count)` runs, strictly increasing and
    /// non-overlapping, in row-major pixel indices.
    pub runs: Vec<(u32, u32)>,
    /// RGB bytes of all run pixels, concatenated in run order.
    pub rgb: Vec<u8>,
}

impl SparseImageFrame {
    /// Run-length encode a dense frame against `background`.
    pub fn from_dense(img: &ImageFrame, background: [u8; 3]) -> Self {
        let npx = img.rgb.len() / 3;
        let mut runs: Vec<(u32, u32)> = Vec::new();
        let mut rgb = Vec::new();
        let mut i = 0usize;
        while i < npx {
            let px = &img.rgb[i * 3..i * 3 + 3];
            if px == background {
                i += 1;
                continue;
            }
            let start = i;
            while i < npx && img.rgb[i * 3..i * 3 + 3] != background[..] {
                i += 1;
            }
            runs.push((start as u32, (i - start) as u32));
            rgb.extend_from_slice(&img.rgb[start * 3..i * 3]);
        }
        SparseImageFrame {
            step: img.step,
            width: img.width,
            height: img.height,
            background,
            runs,
            rgb,
        }
    }

    /// Expand back to the dense frame (bit-exact inverse of
    /// [`SparseImageFrame::from_dense`]).
    pub fn to_dense(&self) -> ImageFrame {
        let npx = self.width as usize * self.height as usize;
        let mut rgb = Vec::with_capacity(npx * 3);
        for _ in 0..npx {
            rgb.extend_from_slice(&self.background);
        }
        let mut src = 0usize;
        for &(start, count) in &self.runs {
            let (start, count) = (start as usize, count as usize);
            rgb[start * 3..(start + count) * 3].copy_from_slice(&self.rgb[src..src + count * 3]);
            src += count * 3;
        }
        ImageFrame {
            step: self.step,
            width: self.width,
            height: self.height,
            rgb,
        }
    }

    /// Encoded payload bytes (what the wire carries, modulo framing).
    pub fn wire_bytes(&self) -> usize {
        8 + 4 + 4 + 3 + 8 + self.runs.len() * 8 + 8 + self.rgb.len()
    }
}

impl Wire for SparseImageFrame {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.step);
        w.put_u32(self.width);
        w.put_u32(self.height);
        for b in self.background {
            w.put_u8(b);
        }
        w.put_usize(self.runs.len());
        for &(start, count) in &self.runs {
            w.put_u32(start);
            w.put_u32(count);
        }
        w.put_bytes(&self.rgb);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        let step = r.get_u64()?;
        let width = r.get_u32()?;
        let height = r.get_u32()?;
        let npx = width as u64 * height as u64;
        check_frame_len((npx.min(usize::MAX as u64 / 3) * 3) as usize)?;
        let background = [r.get_u8()?, r.get_u8()?, r.get_u8()?];
        let nruns = r.get_usize()?;
        if nruns as u64 > npx {
            return Err(CommError::Decode {
                reason: format!("sparse image claims {nruns} runs over {npx} pixels"),
            });
        }
        let mut runs = Vec::with_capacity(nruns);
        let mut covered = 0u64;
        let mut prev_end = 0u64;
        for _ in 0..nruns {
            let start = r.get_u32()? as u64;
            let count = r.get_u32()? as u64;
            if start < prev_end || count == 0 || start + count > npx {
                return Err(CommError::Decode {
                    reason: format!(
                        "sparse image run ({start},{count}) out of order or past {npx} pixels"
                    ),
                });
            }
            prev_end = start + count;
            covered += count;
            runs.push((start as u32, count as u32));
        }
        let rgb = r.get_bytes()?.to_vec();
        if rgb.len() as u64 != covered * 3 {
            return Err(CommError::Decode {
                reason: format!(
                    "sparse image payload {} bytes does not match {covered} run pixels",
                    rgb.len()
                ),
            });
        }
        Ok(SparseImageFrame {
            step,
            width,
            height,
            background,
            runs,
            rgb,
        })
    }
}

/// Hydrodynamic observables over a site subset (the ROI, or the whole
/// domain), computed in situ without shipping the fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservableReport {
    /// Simulation step of the measurement.
    pub step: u64,
    /// Sites in the subset.
    pub sites: u64,
    /// Mean lattice density over the subset (pressure = cs²ρ).
    pub mean_density: f64,
    /// Mean speed over the subset.
    pub mean_speed: f64,
    /// Maximum speed over the subset.
    pub max_speed: f64,
    /// Maximum wall shear stress over the subset's wall sites (lattice
    /// units).
    pub max_wss: f64,
    /// The ROI used (`None` = whole domain).
    pub roi: Option<([u32; 3], [u32; 3])>,
}

impl Wire for ObservableReport {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.step);
        w.put_u64(self.sites);
        w.put_f64(self.mean_density);
        w.put_f64(self.mean_speed);
        w.put_f64(self.max_speed);
        w.put_f64(self.max_wss);
        match self.roi {
            None => w.put_u8(0),
            Some((lo, hi)) => {
                w.put_u8(1);
                for v in lo.iter().chain(hi.iter()) {
                    w.put_u32(*v);
                }
            }
        }
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        let step = r.get_u64()?;
        let sites = r.get_u64()?;
        let mean_density = r.get_f64()?;
        let mean_speed = r.get_f64()?;
        let max_speed = r.get_f64()?;
        let max_wss = r.get_f64()?;
        let roi = match r.get_u8()? {
            0 => None,
            1 => Some((
                [r.get_u32()?, r.get_u32()?, r.get_u32()?],
                [r.get_u32()?, r.get_u32()?, r.get_u32()?],
            )),
            k => {
                return Err(CommError::Decode {
                    reason: format!("invalid roi flag {k}"),
                })
            }
        };
        Ok(ObservableReport {
            step,
            sites,
            mean_density,
            mean_speed,
            max_speed,
            max_wss,
            roi,
        })
    }
}

/// A framed message from the simulation to the client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// A status report.
    Status(StatusReport),
    /// A rendered image.
    Image(ImageFrame),
    /// In situ observables over the ROI.
    Observables(ObservableReport),
    /// A rendered image in the sparse run-length form (gateway
    /// broadcasts; [`crate::SteeringClient`] converts it back to a
    /// dense [`ImageFrame`] transparently).
    ImageSparse(SparseImageFrame),
}

impl Wire for ServerMessage {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ServerMessage::Status(s) => {
                w.put_u8(0);
                s.encode(w);
            }
            ServerMessage::Image(i) => {
                w.put_u8(1);
                i.encode(w);
            }
            ServerMessage::Observables(o) => {
                w.put_u8(2);
                o.encode(w);
            }
            ServerMessage::ImageSparse(s) => {
                w.put_u8(3);
                s.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        match r.get_u8()? {
            0 => Ok(ServerMessage::Status(StatusReport::decode(r)?)),
            1 => Ok(ServerMessage::Image(ImageFrame::decode(r)?)),
            2 => Ok(ServerMessage::Observables(ObservableReport::decode(r)?)),
            3 => Ok(ServerMessage::ImageSparse(SparseImageFrame::decode(r)?)),
            k => Err(CommError::Decode {
                reason: format!("invalid server message kind {k}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let b = v.to_bytes();
        assert_eq!(T::from_bytes(b).unwrap(), v);
    }

    #[test]
    fn all_commands_round_trip() {
        round_trip(SteeringCommand::SetCamera {
            eye: [1.0, 2.0, 3.0],
            target: [0.0, 0.0, 0.0],
            up: [0.0, 0.0, 1.0],
            fov_y: 0.8,
        });
        round_trip(SteeringCommand::SetField(FieldChoice::Shear));
        round_trip(SteeringCommand::SetVisRate(25));
        round_trip(SteeringCommand::SetRoi {
            lo: [0, 1, 2],
            hi: [10, 11, 12],
        });
        round_trip(SteeringCommand::SetInletPressure { id: 0, rho: 1.02 });
        round_trip(SteeringCommand::Pause);
        round_trip(SteeringCommand::Resume);
        round_trip(SteeringCommand::RequestFrame);
        round_trip(SteeringCommand::RequestObservables);
        round_trip(SteeringCommand::SetAdaptiveLb(true));
        round_trip(SteeringCommand::SetAdaptiveLb(false));
        round_trip(SteeringCommand::ReleaseDriver);
        round_trip(SteeringCommand::Terminate);
    }

    #[test]
    fn status_and_image_round_trip() {
        round_trip(StatusReport {
            step: 1000,
            mass: 12345.6,
            max_speed: 0.08,
            residual: 1e-7,
            problems: vec!["example".into()],
            eta_steps: 500,
            paused: false,
            rebalances: 2,
            lb_imbalance: 1.37,
            sessions: 42,
            cache_hits: 7,
            cache_misses: 3,
        });
        round_trip(ServerMessage::Image(ImageFrame {
            step: 7,
            width: 2,
            height: 3,
            rgb: vec![0; 18],
        }));
        round_trip(ServerMessage::Observables(ObservableReport {
            step: 11,
            sites: 512,
            mean_density: 1.002,
            mean_speed: 0.03,
            max_speed: 0.09,
            max_wss: 1.5e-3,
            roi: Some(([1, 2, 3], [4, 5, 6])),
        }));
        round_trip(ServerMessage::Observables(ObservableReport {
            step: 0,
            sites: 0,
            mean_density: 0.0,
            mean_speed: 0.0,
            max_speed: 0.0,
            max_wss: 0.0,
            roi: None,
        }));
    }

    #[test]
    fn image_size_mismatch_rejected() {
        let bad = ImageFrame {
            step: 0,
            width: 4,
            height: 4,
            rgb: vec![0; 10],
        };
        let b = bad.to_bytes();
        assert!(ImageFrame::from_bytes(b).is_err());
    }

    #[test]
    fn garbage_kind_rejected() {
        let mut w = hemelb_parallel::WireWriter::new();
        w.put_u8(99);
        assert!(SteeringCommand::from_bytes(w.finish()).is_err());
    }

    #[test]
    fn truncated_frames_are_errors_not_panics() {
        // Every proper prefix of a valid encoding must decode to an
        // error (a half-received TCP frame shows up exactly like this).
        let cmd = SteeringCommand::SetCamera {
            eye: [1.0, 2.0, 3.0],
            target: [4.0, 5.0, 6.0],
            up: [0.0, 0.0, 1.0],
            fov_y: 0.7,
        };
        let full = cmd.to_bytes();
        for n in 0..full.len() {
            let prefix = bytes::Bytes::from(full[..n].to_vec());
            assert!(
                SteeringCommand::from_bytes(prefix).is_err(),
                "prefix of {n} bytes must not decode"
            );
        }
        let msg = ServerMessage::Status(StatusReport {
            step: 9,
            mass: 1.0,
            max_speed: 0.1,
            residual: 1e-6,
            problems: vec!["p".into()],
            eta_steps: 3,
            paused: true,
            rebalances: 1,
            lb_imbalance: 1.2,
            sessions: 1,
            cache_hits: 0,
            cache_misses: 0,
        });
        let full = msg.to_bytes();
        for n in 0..full.len() {
            let prefix = bytes::Bytes::from(full[..n].to_vec());
            assert!(ServerMessage::from_bytes(prefix).is_err());
        }
    }

    #[test]
    fn bad_tags_are_errors_on_both_directions() {
        for kind in [12u8, 42, 255] {
            let mut w = hemelb_parallel::WireWriter::new();
            w.put_u8(kind);
            assert!(SteeringCommand::from_bytes(w.finish()).is_err());
        }
        for kind in [4u8, 77, 255] {
            let mut w = hemelb_parallel::WireWriter::new();
            w.put_u8(kind);
            assert!(ServerMessage::from_bytes(w.finish()).is_err());
        }
    }

    #[test]
    fn sparse_image_round_trips_and_is_lossless() {
        // A frame with background margins, interior runs and runs that
        // touch both ends of the pixel range.
        let w = 8u32;
        let h = 4u32;
        let bg = [255u8, 255, 255];
        let mut rgb = vec![255u8; (w * h * 3) as usize];
        for px in [0usize, 3, 4, 5, 12, 30, 31] {
            rgb[px * 3..px * 3 + 3].copy_from_slice(&[px as u8, 0, 7]);
        }
        let dense = ImageFrame {
            step: 12,
            width: w,
            height: h,
            rgb,
        };
        let sparse = SparseImageFrame::from_dense(&dense, bg);
        assert_eq!(sparse.runs, vec![(0, 1), (3, 3), (12, 1), (30, 2)]);
        assert_eq!(sparse.to_dense(), dense, "lossless round trip");
        round_trip(sparse.clone());
        round_trip(ServerMessage::ImageSparse(sparse.clone()));
        assert!(
            sparse.wire_bytes() < dense.rgb.len(),
            "sparse beats dense on a mostly-background frame"
        );
        // An all-background frame has no runs at all.
        let blank = ImageFrame {
            step: 0,
            width: 4,
            height: 4,
            rgb: vec![255; 48],
        };
        let s = SparseImageFrame::from_dense(&blank, bg);
        assert!(s.runs.is_empty() && s.rgb.is_empty());
        assert_eq!(s.to_dense(), blank);
    }

    #[test]
    fn sparse_image_rejects_malformed_runs() {
        let good = SparseImageFrame {
            step: 1,
            width: 4,
            height: 1,
            background: [255, 255, 255],
            runs: vec![(0, 2)],
            rgb: vec![1, 2, 3, 4, 5, 6],
        };
        round_trip(good.clone());
        // Run past the pixel range.
        let mut bad = good.clone();
        bad.runs = vec![(3, 2)];
        assert!(SparseImageFrame::from_bytes(bad.to_bytes()).is_err());
        // Overlapping / out-of-order runs.
        let mut bad = good.clone();
        bad.runs = vec![(2, 1), (0, 1)];
        assert!(SparseImageFrame::from_bytes(bad.to_bytes()).is_err());
        // Payload length not matching the runs.
        let mut bad = good.clone();
        bad.rgb = vec![1, 2, 3];
        assert!(SparseImageFrame::from_bytes(bad.to_bytes()).is_err());
    }

    #[test]
    fn max_frame_len_guards_every_decode_direction() {
        assert!(check_frame_len(MAX_FRAME_LEN).is_ok());
        assert!(check_frame_len(MAX_FRAME_LEN + 1).is_err());
        // Server → client: an image header whose dimensions imply a
        // payload past the ceiling fails before looking at the bytes —
        // including the 65536×65536 header that used to wrap u32
        // arithmetic to zero.
        for (w, h) in [(65536u32, 65536u32), (1 << 16, 1 << 10)] {
            let mut wr = hemelb_parallel::WireWriter::new();
            wr.put_u8(1); // ServerMessage::Image
            wr.put_u64(0);
            wr.put_u32(w);
            wr.put_u32(h);
            wr.put_u64(0); // empty payload: only the guard can reject
            assert!(
                ServerMessage::from_bytes(wr.finish()).is_err(),
                "{w}x{h} header must be rejected"
            );
        }
        // Same ceiling on the sparse path.
        let mut wr = hemelb_parallel::WireWriter::new();
        wr.put_u8(3); // ServerMessage::ImageSparse
        wr.put_u64(0);
        wr.put_u32(65536);
        wr.put_u32(65536);
        assert!(ServerMessage::from_bytes(wr.finish()).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_an_error_not_an_allocation() {
        // An image frame whose pixel-payload length prefix claims far
        // more bytes than the frame carries: must fail cleanly, not
        // attempt a huge allocation or panic.
        let mut w = hemelb_parallel::WireWriter::new();
        w.put_u8(1); // ServerMessage::Image
        w.put_u64(0); // step
        w.put_u32(2); // width
        w.put_u32(2); // height
        w.put_u64(u64::MAX / 2); // absurd RGB byte count
        assert!(ServerMessage::from_bytes(w.finish()).is_err());

        // Same for the problems list of a status report.
        let mut w = hemelb_parallel::WireWriter::new();
        w.put_u8(0); // ServerMessage::Status
        w.put_u64(1); // step
        w.put_f64(1.0); // mass
        w.put_f64(0.1); // max_speed
        w.put_f64(0.0); // residual
        w.put_u64(u64::MAX); // absurd problems count
        assert!(ServerMessage::from_bytes(w.finish()).is_err());
    }
}
