//! Client ↔ simulation transports.
//!
//! The steering link is *outside* the rank communicator (the client is
//! not a rank). Two implementations: an in-memory duplex (tests,
//! benches, in-process dashboards) and length-prefixed framing over TCP
//! (an out-of-process client, as in the original HemeLB steering
//! architecture).

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// A bidirectional, message-framed byte transport.
pub trait Transport: Send {
    /// Send one frame.
    fn send_frame(&self, frame: Bytes) -> std::io::Result<()>;
    /// Receive one frame if available (non-blocking).
    fn try_recv_frame(&self) -> std::io::Result<Option<Bytes>>;
    /// Receive one frame, blocking until it arrives or the peer closes.
    fn recv_frame(&self) -> std::io::Result<Bytes>;
    /// Bytes sent so far (steering traffic accounting).
    fn bytes_sent(&self) -> u64;
}

/// A listener that yields server-side transports as clients dial in,
/// without ever blocking the simulation loop. The closed loop polls
/// this once per cycle while running headless, so a steering client can
/// attach (or re-attach) to a simulation already in flight.
pub trait Acceptor: Send {
    /// Accept one pending connection, if any (non-blocking).
    fn try_accept(&self) -> std::io::Result<Option<Box<dyn Transport>>>;
}

/// One endpoint of an in-memory duplex.
pub struct InMemoryTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    sent: Mutex<u64>,
}

/// Create a connected pair of in-memory endpoints.
pub fn duplex_pair() -> (InMemoryTransport, InMemoryTransport) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    (
        InMemoryTransport {
            tx: a_tx,
            rx: a_rx,
            sent: Mutex::new(0),
        },
        InMemoryTransport {
            tx: b_tx,
            rx: b_rx,
            sent: Mutex::new(0),
        },
    )
}

fn broken() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "steering peer disconnected")
}

/// An in-process connection rendezvous: the server side holds the
/// [`DuplexAcceptor`], clients clone the [`DuplexConnector`] and dial
/// as many times as they like. The in-memory analogue of a TCP
/// listener, for tests and benches that exercise client loss and
/// re-attachment without sockets.
pub fn duplex_listener() -> (DuplexConnector, DuplexAcceptor) {
    let (tx, rx) = unbounded();
    (DuplexConnector { tx }, DuplexAcceptor { rx })
}

/// The dialing side of [`duplex_listener`].
#[derive(Clone)]
pub struct DuplexConnector {
    tx: Sender<InMemoryTransport>,
}

impl DuplexConnector {
    /// Dial the acceptor, returning the client end of a fresh duplex.
    pub fn connect(&self) -> std::io::Result<InMemoryTransport> {
        let (client_end, server_end) = duplex_pair();
        self.tx.send(server_end).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "steering acceptor is gone",
            )
        })?;
        Ok(client_end)
    }
}

/// The listening side of [`duplex_listener`].
pub struct DuplexAcceptor {
    rx: Receiver<InMemoryTransport>,
}

impl Acceptor for DuplexAcceptor {
    fn try_accept(&self) -> std::io::Result<Option<Box<dyn Transport>>> {
        match self.rx.try_recv() {
            Ok(t) => Ok(Some(Box::new(t))),
            // Empty and "no connectors left" both mean nobody is
            // dialing right now.
            Err(_) => Ok(None),
        }
    }
}

impl Transport for InMemoryTransport {
    fn send_frame(&self, frame: Bytes) -> std::io::Result<()> {
        *self.sent.lock() += frame.len() as u64;
        self.tx.send(frame).map_err(|_| broken())
    }
    fn try_recv_frame(&self) -> std::io::Result<Option<Bytes>> {
        match self.rx.try_recv() {
            Ok(f) => Ok(Some(f)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(broken()),
        }
    }
    fn recv_frame(&self) -> std::io::Result<Bytes> {
        self.rx.recv().map_err(|_| broken())
    }
    fn bytes_sent(&self) -> u64 {
        *self.sent.lock()
    }
}

/// Length-prefixed frames over a TCP stream (u32 little-endian length,
/// then payload).
pub struct TcpTransport {
    stream: Mutex<TcpStream>,
    sent: Mutex<u64>,
}

impl TcpTransport {
    /// Wrap a connected stream. The stream is set to non-blocking-free
    /// blocking mode; `try_recv_frame` uses a zero read timeout probe.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream: Mutex::new(stream),
            sent: Mutex::new(0),
        })
    }

    /// Dial `addr` with a connect timeout, so a down or unroutable
    /// steering server fails fast instead of hanging the caller in the
    /// kernel's (minutes-long) default connect wait.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        Self::new(stream)
    }

    /// Bound every blocking read: a peer that stops talking surfaces as
    /// a `WouldBlock`/`TimedOut` I/O error instead of wedging
    /// `recv_frame` forever. A timeout can split a frame mid-read, so
    /// treat a timed-out transport as dead and reconnect rather than
    /// retrying the read.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.lock().set_read_timeout(timeout)
    }

    fn read_exact_frame(stream: &mut TcpStream) -> std::io::Result<Bytes> {
        let mut len = [0u8; 4];
        stream.read_exact(&mut len)?;
        let n = u32::from_le_bytes(len) as usize;
        if n > 1 << 30 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "implausible frame length",
            ));
        }
        let mut buf = vec![0u8; n];
        stream.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }
}

impl Transport for TcpTransport {
    fn send_frame(&self, frame: Bytes) -> std::io::Result<()> {
        let mut s = self.stream.lock();
        s.write_all(&(frame.len() as u32).to_le_bytes())?;
        s.write_all(&frame)?;
        s.flush()?;
        *self.sent.lock() += frame.len() as u64 + 4;
        Ok(())
    }

    fn try_recv_frame(&self) -> std::io::Result<Option<Bytes>> {
        let mut s = self.stream.lock();
        s.set_nonblocking(true)?;
        let mut first = [0u8; 1];
        let peeked = s.peek(&mut first);
        // Restore blocking mode before acting on the probe: the early
        // returns used to leave the socket non-blocking, which turned
        // every later blocking `recv_frame` on a half-closed connection
        // into a WouldBlock busy spin instead of a clean disconnect.
        s.set_nonblocking(false)?;
        match peeked {
            Ok(0) => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "steering peer closed the connection",
            )),
            Ok(_) => Ok(Some(Self::read_exact_frame(&mut s)?)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn recv_frame(&self) -> std::io::Result<Bytes> {
        let mut s = self.stream.lock();
        Self::read_exact_frame(&mut s)
    }

    fn bytes_sent(&self) -> u64 {
        *self.sent.lock()
    }
}

/// A non-blocking TCP listener yielding [`TcpTransport`]s: the
/// server-side door steering clients knock on.
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Bind and start listening (non-blocking).
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpAcceptor { listener })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }
}

impl Acceptor for TcpAcceptor {
    fn try_accept(&self) -> std::io::Result<Option<Box<dyn Transport>>> {
        match self.listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets inherit the listener's non-blocking
                // flag on some platforms; transports expect blocking.
                stream.set_nonblocking(false)?;
                Ok(Some(Box::new(TcpTransport::new(stream)?)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_duplex_round_trip() {
        let (a, b) = duplex_pair();
        a.send_frame(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(&b.recv_frame().unwrap()[..], b"hello");
        b.send_frame(Bytes::from_static(b"world")).unwrap();
        assert_eq!(&a.recv_frame().unwrap()[..], b"world");
        assert_eq!(a.bytes_sent(), 5);
    }

    #[test]
    fn in_memory_try_recv_is_nonblocking() {
        let (a, b) = duplex_pair();
        assert!(b.try_recv_frame().unwrap().is_none());
        a.send_frame(Bytes::from_static(b"x")).unwrap();
        // The channel delivers promptly (same process).
        let mut got = None;
        while got.is_none() {
            got = b.try_recv_frame().unwrap();
        }
        assert_eq!(&got.unwrap()[..], b"x");
    }

    #[test]
    fn disconnected_peer_is_an_error() {
        let (a, b) = duplex_pair();
        drop(b);
        assert!(a.send_frame(Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn tcp_transport_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let t = TcpTransport::new(stream).unwrap();
            t.send_frame(Bytes::from_static(b"ping")).unwrap();
            t.recv_frame().unwrap()
        });
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();
        assert_eq!(&server.recv_frame().unwrap()[..], b"ping");
        server.send_frame(Bytes::from_static(b"pong")).unwrap();
        let reply = client_thread.join().unwrap();
        assert_eq!(&reply[..], b"pong");
        assert!(server.bytes_sent() >= 8);
    }

    #[test]
    fn half_closed_socket_is_terminal_not_a_busy_spin() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            drop(stream); // connect, then vanish
        });
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();
        client.join().unwrap();
        // Poll until the FIN is visible; must surface as UnexpectedEof.
        let err = loop {
            match server.try_recv_frame() {
                Ok(None) => std::thread::yield_now(),
                Ok(Some(_)) => panic!("no frame was ever sent"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // The socket must be back in blocking mode: a blocking recv on
        // the half-closed stream fails promptly with EOF rather than
        // spinning on WouldBlock.
        let err = server.recv_frame().unwrap_err();
        assert_ne!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn tcp_acceptor_is_nonblocking_and_yields_transports() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        assert!(acceptor.try_accept().unwrap().is_none(), "nobody dialing");
        let client = std::thread::spawn(move || {
            let t = TcpTransport::connect(addr, Duration::from_secs(5)).unwrap();
            t.send_frame(Bytes::from_static(b"knock")).unwrap();
        });
        let server = loop {
            if let Some(t) = acceptor.try_accept().unwrap() {
                break t;
            }
            std::thread::yield_now();
        };
        assert_eq!(&server.recv_frame().unwrap()[..], b"knock");
        client.join().unwrap();
    }

    #[test]
    fn duplex_listener_accepts_repeated_dials() {
        let (connector, acceptor) = duplex_listener();
        assert!(acceptor.try_accept().unwrap().is_none());
        let c1 = connector.connect().unwrap();
        let s1 = acceptor.try_accept().unwrap().expect("first dial");
        c1.send_frame(Bytes::from_static(b"one")).unwrap();
        assert_eq!(&s1.recv_frame().unwrap()[..], b"one");
        // A second client can dial after the first goes away.
        drop(c1);
        let c2 = connector.connect().unwrap();
        let s2 = acceptor.try_accept().unwrap().expect("second dial");
        s2.send_frame(Bytes::from_static(b"two")).unwrap();
        assert_eq!(&c2.recv_frame().unwrap()[..], b"two");
    }

    #[test]
    fn tcp_large_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let client_thread = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let t = TcpTransport::new(stream).unwrap();
            t.send_frame(Bytes::from(payload)).unwrap();
        });
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();
        let got = server.recv_frame().unwrap();
        assert_eq!(&got[..], &expect[..]);
        client_thread.join().unwrap();
    }
}
