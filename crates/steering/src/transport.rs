//! Client ↔ simulation transports.
//!
//! The steering link is *outside* the rank communicator (the client is
//! not a rank). Two implementations: an in-memory duplex (tests,
//! benches, in-process dashboards) and length-prefixed framing over TCP
//! (an out-of-process client, as in the original HemeLB steering
//! architecture).

use crate::protocol::MAX_FRAME_LEN;
use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// A bidirectional, message-framed byte transport.
pub trait Transport: Send {
    /// Send one frame, blocking until the transport has accepted it.
    fn send_frame(&self, frame: Bytes) -> std::io::Result<()>;
    /// Receive one frame if available (non-blocking).
    fn try_recv_frame(&self) -> std::io::Result<Option<Bytes>>;
    /// Receive one frame, blocking until it arrives or the peer closes.
    fn recv_frame(&self) -> std::io::Result<Bytes>;
    /// Bytes sent so far (steering traffic accounting).
    fn bytes_sent(&self) -> u64;

    /// Enqueue one frame without ever blocking the caller: as much as
    /// possible is written immediately, the rest is buffered inside the
    /// transport until a later [`Transport::flush_pending`] (or the
    /// next send) drains it. The session gateway uses this so one slow
    /// client cannot stall the simulation loop. Default: fall back to
    /// the blocking send (correct for transports that never block, like
    /// the in-memory duplex).
    fn try_send_frame(&self, frame: Bytes) -> std::io::Result<()> {
        self.send_frame(frame)
    }

    /// Attempt to drain any internally buffered send bytes without
    /// blocking; returns the bytes still pending afterwards.
    fn flush_pending(&self) -> std::io::Result<u64> {
        Ok(0)
    }

    /// Send bytes accepted by [`Transport::try_send_frame`] but not yet
    /// handed to the OS / peer (a growing value means the peer is slow
    /// or wedged).
    fn pending_bytes(&self) -> u64 {
        0
    }
}

/// A listener that yields server-side transports as clients dial in,
/// without ever blocking the simulation loop. The closed loop polls
/// this once per cycle while running headless, so a steering client can
/// attach (or re-attach) to a simulation already in flight.
pub trait Acceptor: Send {
    /// Accept one pending connection, if any (non-blocking).
    fn try_accept(&self) -> std::io::Result<Option<Box<dyn Transport>>>;
}

/// One endpoint of an in-memory duplex.
pub struct InMemoryTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    sent: Mutex<u64>,
}

/// Create a connected pair of in-memory endpoints.
pub fn duplex_pair() -> (InMemoryTransport, InMemoryTransport) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    (
        InMemoryTransport {
            tx: a_tx,
            rx: a_rx,
            sent: Mutex::new(0),
        },
        InMemoryTransport {
            tx: b_tx,
            rx: b_rx,
            sent: Mutex::new(0),
        },
    )
}

fn broken() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "steering peer disconnected")
}

/// An in-process connection rendezvous: the server side holds the
/// [`DuplexAcceptor`], clients clone the [`DuplexConnector`] and dial
/// as many times as they like. The in-memory analogue of a TCP
/// listener, for tests and benches that exercise client loss and
/// re-attachment without sockets.
pub fn duplex_listener() -> (DuplexConnector, DuplexAcceptor) {
    let (tx, rx) = unbounded();
    (DuplexConnector { tx }, DuplexAcceptor { rx })
}

/// The dialing side of [`duplex_listener`].
#[derive(Clone)]
pub struct DuplexConnector {
    tx: Sender<InMemoryTransport>,
}

impl DuplexConnector {
    /// Dial the acceptor, returning the client end of a fresh duplex.
    pub fn connect(&self) -> std::io::Result<InMemoryTransport> {
        let (client_end, server_end) = duplex_pair();
        self.tx.send(server_end).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "steering acceptor is gone",
            )
        })?;
        Ok(client_end)
    }
}

/// The listening side of [`duplex_listener`].
pub struct DuplexAcceptor {
    rx: Receiver<InMemoryTransport>,
}

impl Acceptor for DuplexAcceptor {
    fn try_accept(&self) -> std::io::Result<Option<Box<dyn Transport>>> {
        match self.rx.try_recv() {
            Ok(t) => Ok(Some(Box::new(t))),
            // Empty and "no connectors left" both mean nobody is
            // dialing right now.
            Err(_) => Ok(None),
        }
    }
}

impl Transport for InMemoryTransport {
    fn send_frame(&self, frame: Bytes) -> std::io::Result<()> {
        *self.sent.lock() += frame.len() as u64;
        self.tx.send(frame).map_err(|_| broken())
    }
    fn try_recv_frame(&self) -> std::io::Result<Option<Bytes>> {
        match self.rx.try_recv() {
            Ok(f) => Ok(Some(f)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(broken()),
        }
    }
    fn recv_frame(&self) -> std::io::Result<Bytes> {
        self.rx.recv().map_err(|_| broken())
    }
    fn bytes_sent(&self) -> u64 {
        *self.sent.lock()
    }
}

/// Length-prefixed frames over a TCP stream (u32 little-endian length,
/// then payload).
///
/// Sends are **terminal on error**: the length prefix and payload leave
/// in one coalesced buffered write, and any send failure poisons the
/// transport — a partial write desyncs the length-prefixed stream for
/// every subsequent reader, so the only safe reaction is to detach the
/// session, never to retry mid-frame. Poisoned transports fail every
/// later send with `BrokenPipe` immediately.
pub struct TcpTransport {
    stream: Mutex<TcpStream>,
    /// Bytes accepted by `try_send_frame` but not yet written to the
    /// socket (whole frames plus, possibly, the tail of a partially
    /// written one — the head of the queue is always the exact
    /// continuation of what the peer has seen).
    outbuf: Mutex<VecDeque<u8>>,
    /// Set on the first send error; all later sends fail fast.
    poisoned: Mutex<bool>,
    sent: Mutex<u64>,
}

impl TcpTransport {
    /// Wrap a connected stream. The stream is set to non-blocking-free
    /// blocking mode; `try_recv_frame` uses a zero read timeout probe.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream: Mutex::new(stream),
            outbuf: Mutex::new(VecDeque::new()),
            poisoned: Mutex::new(false),
            sent: Mutex::new(0),
        })
    }

    /// Dial `addr` with a connect timeout, so a down or unroutable
    /// steering server fails fast instead of hanging the caller in the
    /// kernel's (minutes-long) default connect wait.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        Self::new(stream)
    }

    /// Bound every blocking read: a peer that stops talking surfaces as
    /// a `WouldBlock`/`TimedOut` I/O error instead of wedging
    /// `recv_frame` forever. A timeout can split a frame mid-read, so
    /// treat a timed-out transport as dead and reconnect rather than
    /// retrying the read.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.lock().set_read_timeout(timeout)
    }

    fn read_exact_frame(stream: &mut TcpStream) -> std::io::Result<Bytes> {
        let mut len = [0u8; 4];
        stream.read_exact(&mut len)?;
        let n = u32::from_le_bytes(len) as usize;
        if n > MAX_FRAME_LEN {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "implausible frame length",
            ));
        }
        let mut buf = vec![0u8; n];
        stream.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn poisoned_err() -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "transport poisoned by an earlier send error",
        )
    }

    fn check_sendable(&self, frame: &Bytes) -> std::io::Result<()> {
        if *self.poisoned.lock() {
            return Err(Self::poisoned_err());
        }
        if frame.len() > MAX_FRAME_LEN {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "frame exceeds MAX_FRAME_LEN",
            ));
        }
        Ok(())
    }

    /// Non-blockingly drain as much of `out` as the socket accepts.
    /// Returns the bytes still pending. Any real error poisons the
    /// transport. The socket is restored to blocking mode before return.
    fn drain_nonblocking(
        &self,
        stream: &mut TcpStream,
        out: &mut VecDeque<u8>,
    ) -> std::io::Result<u64> {
        if out.is_empty() {
            return Ok(0);
        }
        stream.set_nonblocking(true)?;
        let result = loop {
            let (head, _) = out.as_slices();
            if head.is_empty() {
                break Ok(());
            }
            match stream.write(head) {
                Ok(0) => {
                    break Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "steering peer stopped accepting bytes",
                    ))
                }
                Ok(n) => {
                    out.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => break Err(e),
            }
        };
        stream.set_nonblocking(false)?;
        match result {
            Ok(()) => Ok(out.len() as u64),
            Err(e) => {
                *self.poisoned.lock() = true;
                Err(e)
            }
        }
    }

    /// Blockingly drain every buffered byte (frame ordering: a blocking
    /// send must not overtake frames enqueued via `try_send_frame`).
    fn drain_blocking(
        &self,
        stream: &mut TcpStream,
        out: &mut VecDeque<u8>,
    ) -> std::io::Result<()> {
        while !out.is_empty() {
            let (head, _) = out.as_slices();
            match stream.write(head) {
                Ok(0) => {
                    *self.poisoned.lock() = true;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "steering peer stopped accepting bytes",
                    ));
                }
                Ok(n) => {
                    out.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    *self.poisoned.lock() = true;
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

/// One coalesced wire image of a frame: 4-byte LE length prefix and
/// payload in a single buffer, so the prefix and body can never be
/// split across two syscalls by the sender (a failure between two
/// writes would desync the stream for every later frame).
fn coalesce(frame: &Bytes) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + frame.len());
    buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    buf.extend_from_slice(frame);
    buf
}

impl Transport for TcpTransport {
    fn send_frame(&self, frame: Bytes) -> std::io::Result<()> {
        self.check_sendable(&frame)?;
        let mut s = self.stream.lock();
        let mut out = self.outbuf.lock();
        // Older enqueued frames first, then this one, as ONE write.
        self.drain_blocking(&mut s, &mut out)?;
        let buf = coalesce(&frame);
        if let Err(e) = s.write_all(&buf).and_then(|()| s.flush()) {
            // Terminal: part of the frame may be on the wire; the
            // stream is unrecoverable, so poison rather than retry.
            *self.poisoned.lock() = true;
            return Err(e);
        }
        *self.sent.lock() += buf.len() as u64;
        Ok(())
    }

    fn try_send_frame(&self, frame: Bytes) -> std::io::Result<()> {
        self.check_sendable(&frame)?;
        let mut s = self.stream.lock();
        let mut out = self.outbuf.lock();
        let buf = coalesce(&frame);
        *self.sent.lock() += buf.len() as u64;
        out.extend(buf);
        self.drain_nonblocking(&mut s, &mut out).map(|_| ())
    }

    fn flush_pending(&self) -> std::io::Result<u64> {
        if *self.poisoned.lock() {
            return Err(Self::poisoned_err());
        }
        let mut s = self.stream.lock();
        let mut out = self.outbuf.lock();
        self.drain_nonblocking(&mut s, &mut out)
    }

    fn pending_bytes(&self) -> u64 {
        self.outbuf.lock().len() as u64
    }

    fn try_recv_frame(&self) -> std::io::Result<Option<Bytes>> {
        let mut s = self.stream.lock();
        s.set_nonblocking(true)?;
        let mut first = [0u8; 1];
        let peeked = s.peek(&mut first);
        // Restore blocking mode before acting on the probe: the early
        // returns used to leave the socket non-blocking, which turned
        // every later blocking `recv_frame` on a half-closed connection
        // into a WouldBlock busy spin instead of a clean disconnect.
        s.set_nonblocking(false)?;
        match peeked {
            Ok(0) => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "steering peer closed the connection",
            )),
            Ok(_) => Ok(Some(Self::read_exact_frame(&mut s)?)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn recv_frame(&self) -> std::io::Result<Bytes> {
        let mut s = self.stream.lock();
        Self::read_exact_frame(&mut s)
    }

    fn bytes_sent(&self) -> u64 {
        *self.sent.lock()
    }
}

/// A non-blocking TCP listener yielding [`TcpTransport`]s: the
/// server-side door steering clients knock on.
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Bind and start listening (non-blocking).
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpAcceptor { listener })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }
}

impl Acceptor for TcpAcceptor {
    fn try_accept(&self) -> std::io::Result<Option<Box<dyn Transport>>> {
        match self.listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets inherit the listener's non-blocking
                // flag on some platforms; transports expect blocking.
                stream.set_nonblocking(false)?;
                Ok(Some(Box::new(TcpTransport::new(stream)?)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_duplex_round_trip() {
        let (a, b) = duplex_pair();
        a.send_frame(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(&b.recv_frame().unwrap()[..], b"hello");
        b.send_frame(Bytes::from_static(b"world")).unwrap();
        assert_eq!(&a.recv_frame().unwrap()[..], b"world");
        assert_eq!(a.bytes_sent(), 5);
    }

    #[test]
    fn in_memory_try_recv_is_nonblocking() {
        let (a, b) = duplex_pair();
        assert!(b.try_recv_frame().unwrap().is_none());
        a.send_frame(Bytes::from_static(b"x")).unwrap();
        // The channel delivers promptly (same process).
        let mut got = None;
        while got.is_none() {
            got = b.try_recv_frame().unwrap();
        }
        assert_eq!(&got.unwrap()[..], b"x");
    }

    #[test]
    fn disconnected_peer_is_an_error() {
        let (a, b) = duplex_pair();
        drop(b);
        assert!(a.send_frame(Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn tcp_transport_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let t = TcpTransport::new(stream).unwrap();
            t.send_frame(Bytes::from_static(b"ping")).unwrap();
            t.recv_frame().unwrap()
        });
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();
        assert_eq!(&server.recv_frame().unwrap()[..], b"ping");
        server.send_frame(Bytes::from_static(b"pong")).unwrap();
        let reply = client_thread.join().unwrap();
        assert_eq!(&reply[..], b"pong");
        assert!(server.bytes_sent() >= 8);
    }

    #[test]
    fn half_closed_socket_is_terminal_not_a_busy_spin() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            drop(stream); // connect, then vanish
        });
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();
        client.join().unwrap();
        // Poll until the FIN is visible; must surface as UnexpectedEof.
        let err = loop {
            match server.try_recv_frame() {
                Ok(None) => std::thread::yield_now(),
                Ok(Some(_)) => panic!("no frame was ever sent"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // The socket must be back in blocking mode: a blocking recv on
        // the half-closed stream fails promptly with EOF rather than
        // spinning on WouldBlock.
        let err = server.recv_frame().unwrap_err();
        assert_ne!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn tcp_acceptor_is_nonblocking_and_yields_transports() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        assert!(acceptor.try_accept().unwrap().is_none(), "nobody dialing");
        let client = std::thread::spawn(move || {
            let t = TcpTransport::connect(addr, Duration::from_secs(5)).unwrap();
            t.send_frame(Bytes::from_static(b"knock")).unwrap();
        });
        let server = loop {
            if let Some(t) = acceptor.try_accept().unwrap() {
                break t;
            }
            std::thread::yield_now();
        };
        assert_eq!(&server.recv_frame().unwrap()[..], b"knock");
        client.join().unwrap();
    }

    #[test]
    fn duplex_listener_accepts_repeated_dials() {
        let (connector, acceptor) = duplex_listener();
        assert!(acceptor.try_accept().unwrap().is_none());
        let c1 = connector.connect().unwrap();
        let s1 = acceptor.try_accept().unwrap().expect("first dial");
        c1.send_frame(Bytes::from_static(b"one")).unwrap();
        assert_eq!(&s1.recv_frame().unwrap()[..], b"one");
        // A second client can dial after the first goes away.
        drop(c1);
        let c2 = connector.connect().unwrap();
        let s2 = acceptor.try_accept().unwrap().expect("second dial");
        s2.send_frame(Bytes::from_static(b"two")).unwrap();
        assert_eq!(&c2.recv_frame().unwrap()[..], b"two");
    }

    #[test]
    fn oversized_send_is_refused_without_touching_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();
        let oversized = Bytes::from(vec![0u8; MAX_FRAME_LEN + 1]);
        let err = server.send_frame(oversized.clone()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        let err = server.try_send_frame(oversized).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // Nothing was counted or buffered.
        assert_eq!(server.bytes_sent(), 0);
        assert_eq!(server.pending_bytes(), 0);
    }

    #[test]
    fn send_error_poisons_the_transport_terminally() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();
        drop(client); // peer vanishes
        let payload = Bytes::from(vec![7u8; 64 * 1024]);
        // The kernel may accept a few frames into its buffer before the
        // RST surfaces; keep sending until the error shows up.
        let mut saw_error = false;
        for _ in 0..1000 {
            if server.send_frame(payload.clone()).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "send to a gone peer must eventually fail");
        // Terminal: every later send fails fast with BrokenPipe — the
        // stream may hold a half-written frame, so no retry is safe.
        let err = server.send_frame(payload.clone()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        let err = server.try_send_frame(payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(server.flush_pending().is_err());
    }

    #[test]
    fn try_send_buffers_instead_of_blocking_and_flush_drains() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_stream = TcpStream::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();

        // A peer that reads nothing: the socket buffer eventually
        // fills, and try_send must buffer internally, never block.
        let frame = Bytes::from(vec![42u8; 256 * 1024]);
        let nframes = 64usize;
        for _ in 0..nframes {
            server.try_send_frame(frame.clone()).unwrap();
        }
        assert!(
            server.pending_bytes() > 0,
            "64 x 256KiB against an idle peer must exceed the socket buffer"
        );
        // bytes_sent counts at enqueue: prefix + payload per frame.
        assert_eq!(server.bytes_sent(), (nframes * (4 + frame.len())) as u64);

        // Reader drains; flush_pending pushes the backlog through.
        let client = TcpTransport::new(client_stream).unwrap();
        let reader = std::thread::spawn(move || {
            let mut total = 0usize;
            for _ in 0..nframes {
                total += client.recv_frame().unwrap().len();
            }
            total
        });
        loop {
            if server.flush_pending().unwrap() == 0 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(server.pending_bytes(), 0);
        assert_eq!(reader.join().unwrap(), nframes * frame.len());
    }

    #[test]
    fn in_memory_transport_never_backlogs() {
        let (a, b) = duplex_pair();
        a.try_send_frame(Bytes::from_static(b"now")).unwrap();
        assert_eq!(a.pending_bytes(), 0);
        assert_eq!(a.flush_pending().unwrap(), 0);
        assert_eq!(&b.recv_frame().unwrap()[..], b"now");
    }

    #[test]
    fn tcp_large_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let client_thread = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let t = TcpTransport::new(stream).unwrap();
            t.send_frame(Bytes::from(payload)).unwrap();
        });
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();
        let got = server.recv_frame().unwrap();
        assert_eq!(&got[..], &expect[..]);
        client_thread.join().unwrap();
    }
}
