//! Client ↔ simulation transports.
//!
//! The steering link is *outside* the rank communicator (the client is
//! not a rank). Two implementations: an in-memory duplex (tests,
//! benches, in-process dashboards) and length-prefixed framing over TCP
//! (an out-of-process client, as in the original HemeLB steering
//! architecture).

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::TcpStream;

/// A bidirectional, message-framed byte transport.
pub trait Transport: Send {
    /// Send one frame.
    fn send_frame(&self, frame: Bytes) -> std::io::Result<()>;
    /// Receive one frame if available (non-blocking).
    fn try_recv_frame(&self) -> std::io::Result<Option<Bytes>>;
    /// Receive one frame, blocking until it arrives or the peer closes.
    fn recv_frame(&self) -> std::io::Result<Bytes>;
    /// Bytes sent so far (steering traffic accounting).
    fn bytes_sent(&self) -> u64;
}

/// One endpoint of an in-memory duplex.
pub struct InMemoryTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    sent: Mutex<u64>,
}

/// Create a connected pair of in-memory endpoints.
pub fn duplex_pair() -> (InMemoryTransport, InMemoryTransport) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    (
        InMemoryTransport {
            tx: a_tx,
            rx: a_rx,
            sent: Mutex::new(0),
        },
        InMemoryTransport {
            tx: b_tx,
            rx: b_rx,
            sent: Mutex::new(0),
        },
    )
}

fn broken() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "steering peer disconnected")
}

impl Transport for InMemoryTransport {
    fn send_frame(&self, frame: Bytes) -> std::io::Result<()> {
        *self.sent.lock() += frame.len() as u64;
        self.tx.send(frame).map_err(|_| broken())
    }
    fn try_recv_frame(&self) -> std::io::Result<Option<Bytes>> {
        match self.rx.try_recv() {
            Ok(f) => Ok(Some(f)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(broken()),
        }
    }
    fn recv_frame(&self) -> std::io::Result<Bytes> {
        self.rx.recv().map_err(|_| broken())
    }
    fn bytes_sent(&self) -> u64 {
        *self.sent.lock()
    }
}

/// Length-prefixed frames over a TCP stream (u32 little-endian length,
/// then payload).
pub struct TcpTransport {
    stream: Mutex<TcpStream>,
    sent: Mutex<u64>,
}

impl TcpTransport {
    /// Wrap a connected stream. The stream is set to non-blocking-free
    /// blocking mode; `try_recv_frame` uses a zero read timeout probe.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream: Mutex::new(stream),
            sent: Mutex::new(0),
        })
    }

    fn read_exact_frame(stream: &mut TcpStream) -> std::io::Result<Bytes> {
        let mut len = [0u8; 4];
        stream.read_exact(&mut len)?;
        let n = u32::from_le_bytes(len) as usize;
        if n > 1 << 30 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "implausible frame length",
            ));
        }
        let mut buf = vec![0u8; n];
        stream.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }
}

impl Transport for TcpTransport {
    fn send_frame(&self, frame: Bytes) -> std::io::Result<()> {
        let mut s = self.stream.lock();
        s.write_all(&(frame.len() as u32).to_le_bytes())?;
        s.write_all(&frame)?;
        s.flush()?;
        *self.sent.lock() += frame.len() as u64 + 4;
        Ok(())
    }

    fn try_recv_frame(&self) -> std::io::Result<Option<Bytes>> {
        let mut s = self.stream.lock();
        s.set_nonblocking(true)?;
        let mut first = [0u8; 1];
        let peeked = s.peek(&mut first);
        let has_data = match peeked {
            Ok(0) => return Err(broken()),
            Ok(_) => true,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
            Err(e) => return Err(e),
        };
        s.set_nonblocking(false)?;
        if !has_data {
            return Ok(None);
        }
        Ok(Some(Self::read_exact_frame(&mut s)?))
    }

    fn recv_frame(&self) -> std::io::Result<Bytes> {
        let mut s = self.stream.lock();
        Self::read_exact_frame(&mut s)
    }

    fn bytes_sent(&self) -> u64 {
        *self.sent.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn in_memory_duplex_round_trip() {
        let (a, b) = duplex_pair();
        a.send_frame(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(&b.recv_frame().unwrap()[..], b"hello");
        b.send_frame(Bytes::from_static(b"world")).unwrap();
        assert_eq!(&a.recv_frame().unwrap()[..], b"world");
        assert_eq!(a.bytes_sent(), 5);
    }

    #[test]
    fn in_memory_try_recv_is_nonblocking() {
        let (a, b) = duplex_pair();
        assert!(b.try_recv_frame().unwrap().is_none());
        a.send_frame(Bytes::from_static(b"x")).unwrap();
        // The channel delivers promptly (same process).
        let mut got = None;
        while got.is_none() {
            got = b.try_recv_frame().unwrap();
        }
        assert_eq!(&got.unwrap()[..], b"x");
    }

    #[test]
    fn disconnected_peer_is_an_error() {
        let (a, b) = duplex_pair();
        drop(b);
        assert!(a.send_frame(Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn tcp_transport_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let t = TcpTransport::new(stream).unwrap();
            t.send_frame(Bytes::from_static(b"ping")).unwrap();
            t.recv_frame().unwrap()
        });
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();
        assert_eq!(&server.recv_frame().unwrap()[..], b"ping");
        server.send_frame(Bytes::from_static(b"pong")).unwrap();
        let reply = client_thread.join().unwrap();
        assert_eq!(&reply[..], b"pong");
        assert!(server.bytes_sent() >= 8);
    }

    #[test]
    fn tcp_large_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let client_thread = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let t = TcpTransport::new(stream).unwrap();
            t.send_frame(Bytes::from(payload)).unwrap();
        });
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server_stream).unwrap();
        let got = server.recv_frame().unwrap();
        assert_eq!(&got[..], &expect[..]);
        client_thread.join().unwrap();
    }
}
