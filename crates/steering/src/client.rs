//! The headless steering client.

use crate::error::{SteeringError, SteeringResult};
use crate::protocol::{ImageFrame, ServerMessage, StatusReport, SteeringCommand};
use crate::transport::Transport;
use hemelb_obs::{ObsReport, Recorder};
use hemelb_parallel::Wire;
use std::cell::{Cell, RefCell};
use std::time::Duration;

/// How a client paces its reconnect attempts after losing the server:
/// capped exponential backoff, giving up after `max_attempts` dials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Ceiling on the delay between retries.
    pub max: Duration,
    /// Multiplier between consecutive delays.
    pub factor: u32,
    /// Dials per reconnect episode before giving up.
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            initial: Duration::from_millis(10),
            max: Duration::from_secs(1),
            factor: 2,
            max_attempts: 8,
        }
    }
}

impl BackoffPolicy {
    /// The delay before attempt `i` (0-based): `initial · factorⁱ`,
    /// capped at `max`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = self.factor.max(1) as u64;
        let mult = factor.checked_pow(attempt).unwrap_or(u64::MAX);
        self.initial
            .checked_mul(mult as u32)
            .unwrap_or(self.max)
            .min(self.max)
    }
}

/// Dials a fresh connection to the steering server; the client invokes
/// it under [`BackoffPolicy`] whenever the current transport dies.
pub type TransportFactory = Box<dyn Fn() -> std::io::Result<Box<dyn Transport>> + Send>;

/// A steering client driving a running simulation over a transport.
///
/// Every blocking request/response round is recorded as a `steer.rtt`
/// phase in the client's observability recorder, so after a session
/// [`SteeringClient::obs_report`] yields the end-to-end steering
/// latency distribution (p50/p95/p99/max) the paper's responsiveness
/// argument is about.
///
/// Built with [`SteeringClient::with_reconnect`], the client survives a
/// vanishing server: a [`SteeringError::Disconnected`] on any operation
/// triggers a redial loop under the backoff policy, and the operation
/// is retried on the fresh connection. Reconnects are counted as
/// `steer.reconnect` (and dials as `steer.reconnect.attempts`) in the
/// observability report.
pub struct SteeringClient {
    transport: RefCell<Option<Box<dyn Transport>>>,
    factory: Option<TransportFactory>,
    backoff: BackoffPolicy,
    /// Bytes sent over transports that have since been dropped.
    bytes_retired: Cell<u64>,
    obs: RefCell<Recorder>,
}

impl SteeringClient {
    /// Wrap a connected transport. Without a factory a disconnect is
    /// terminal: every later operation returns
    /// [`SteeringError::Disconnected`].
    pub fn new(transport: Box<dyn Transport>) -> Self {
        SteeringClient {
            transport: RefCell::new(Some(transport)),
            factory: None,
            backoff: BackoffPolicy::default(),
            bytes_retired: Cell::new(0),
            obs: RefCell::new(Recorder::new()),
        }
    }

    /// Dial through `factory` (under `backoff`) and keep the factory
    /// for automatic reconnection when the server goes away mid-run.
    pub fn with_reconnect(
        factory: TransportFactory,
        backoff: BackoffPolicy,
    ) -> SteeringResult<Self> {
        let client = SteeringClient {
            transport: RefCell::new(None),
            factory: Some(factory),
            backoff,
            bytes_retired: Cell::new(0),
            obs: RefCell::new(Recorder::new()),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Drop the current transport and dial a new one under the backoff
    /// policy. Terminal [`SteeringError::Disconnected`] once the
    /// attempts are exhausted (or when there is no factory).
    fn reconnect(&self) -> SteeringResult<()> {
        if let Some(old) = self.transport.borrow_mut().take() {
            self.bytes_retired
                .set(self.bytes_retired.get() + old.bytes_sent());
        }
        let Some(factory) = &self.factory else {
            return Err(SteeringError::Disconnected(
                "steering transport lost and no reconnect factory configured".into(),
            ));
        };
        let mut last = String::new();
        for attempt in 0..self.backoff.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.backoff.delay(attempt - 1));
            }
            self.obs.borrow_mut().count("steer.reconnect.attempts", 1);
            match factory() {
                Ok(t) => {
                    *self.transport.borrow_mut() = Some(t);
                    self.obs.borrow_mut().count("steer.reconnect", 1);
                    return Ok(());
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(SteeringError::Disconnected(format!(
            "reconnect gave up after {} attempts: {last}",
            self.backoff.max_attempts.max(1)
        )))
    }

    /// Run `op` against the live transport; on a disconnect, redial and
    /// retry. Bounded episodes: a server that accepts and immediately
    /// dies cannot trap the client in an infinite connect/fail loop.
    fn with_transport<R>(
        &self,
        mut op: impl FnMut(&dyn Transport) -> SteeringResult<R>,
    ) -> SteeringResult<R> {
        const EPISODES: u32 = 3;
        for episode in 0..EPISODES {
            let result = {
                let guard = self.transport.borrow();
                match guard.as_deref() {
                    Some(t) => op(t),
                    None => Err(SteeringError::Disconnected(
                        "steering transport is not connected".into(),
                    )),
                }
            };
            match result {
                Err(e)
                    if e.is_disconnected() && self.factory.is_some() && episode + 1 < EPISODES =>
                {
                    self.reconnect()?;
                }
                other => return other,
            }
        }
        unreachable!("loop always returns on its last episode")
    }

    /// Run `op` once against the live transport, without reconnecting.
    /// Used by the receive paths: blindly retrying a *receive* on a
    /// fresh connection would block forever, because the request that
    /// elicited the lost response died with the old connection. The
    /// request/response wrappers retry at their own level instead.
    fn once<R>(&self, op: impl FnOnce(&dyn Transport) -> SteeringResult<R>) -> SteeringResult<R> {
        let guard = self.transport.borrow();
        match guard.as_deref() {
            Some(t) => op(t),
            None => Err(SteeringError::Disconnected(
                "steering transport is not connected".into(),
            )),
        }
    }

    /// Send one command (redialing first if the server went away).
    pub fn send(&self, cmd: &SteeringCommand) -> SteeringResult<()> {
        self.with_transport(|t| {
            t.send_frame(cmd.to_bytes())?;
            Ok(())
        })
    }

    /// Expand the gateway's run-length-encoded frames transparently:
    /// callers always see dense [`ServerMessage::Image`]s, whichever
    /// wire form the server chose.
    fn densify(msg: ServerMessage) -> ServerMessage {
        match msg {
            ServerMessage::ImageSparse(s) => ServerMessage::Image(s.to_dense()),
            other => other,
        }
    }

    /// Blocking receive of the next server message.
    pub fn recv(&self) -> SteeringResult<ServerMessage> {
        self.once(|t| {
            let frame = t.recv_frame()?;
            ServerMessage::from_bytes(frame)
                .map(Self::densify)
                .map_err(|e| SteeringError::Protocol(e.to_string()))
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> SteeringResult<Option<ServerMessage>> {
        self.once(|t| match t.try_recv_frame()? {
            None => Ok(None),
            Some(frame) => ServerMessage::from_bytes(frame)
                .map(|m| Some(Self::densify(m)))
                .map_err(|e| SteeringError::Protocol(e.to_string())),
        })
    }

    /// Block until the next image arrives, returning it together with
    /// the status reports that preceded it.
    pub fn wait_for_image(&self) -> SteeringResult<(ImageFrame, Vec<StatusReport>)> {
        let mut statuses = Vec::new();
        loop {
            match self.recv()? {
                ServerMessage::Image(img) => return Ok((img, statuses)),
                // recv() densifies, but stay exhaustive for safety.
                ServerMessage::ImageSparse(s) => return Ok((s.to_dense(), statuses)),
                ServerMessage::Status(s) => statuses.push(s),
                ServerMessage::Observables(_) => {}
            }
        }
    }

    /// Request a frame and wait for it (one full steps 2–6 round of the
    /// paper's in situ loop). Returns the frame and the round-trip wall
    /// time; the latency also lands in the `steer.rtt` phase of
    /// [`SteeringClient::obs_report`].
    ///
    /// If the server vanishes mid-round and a reconnect factory is
    /// configured, the *whole round* (request and wait) is retried on
    /// the fresh connection — the response to the lost request died
    /// with the old one.
    pub fn request_frame(&self) -> SteeringResult<(ImageFrame, std::time::Duration)> {
        const EPISODES: u32 = 3;
        let span = self.obs.borrow().begin();
        let img = 'round: {
            for episode in 0..EPISODES {
                self.send(&SteeringCommand::RequestFrame)?;
                match self.wait_for_image() {
                    Ok((img, _statuses)) => break 'round img,
                    Err(e)
                        if e.is_disconnected()
                            && self.factory.is_some()
                            && episode + 1 < EPISODES =>
                    {
                        self.reconnect()?;
                    }
                    Err(e) => return Err(e),
                }
            }
            unreachable!("the final episode returns or breaks")
        };
        let secs = span.end(&mut self.obs.borrow_mut(), "steer.rtt");
        Ok((img, std::time::Duration::from_secs_f64(secs)))
    }

    /// Request in situ observables over the current ROI and wait for
    /// the report (other messages received in between are returned too).
    /// The round trip is recorded under `steer.rtt` like a frame round.
    pub fn request_observables(
        &self,
    ) -> SteeringResult<(crate::protocol::ObservableReport, Vec<ServerMessage>)> {
        let span = self.obs.borrow().begin();
        self.send(&SteeringCommand::RequestObservables)?;
        let mut others = Vec::new();
        let result = loop {
            match self.recv()? {
                ServerMessage::Observables(o) => break (o, others),
                other => others.push(other),
            }
        };
        span.end(&mut self.obs.borrow_mut(), "steer.rtt");
        Ok(result)
    }

    /// Steering bytes this client has sent, across all connections.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_retired.get()
            + self
                .transport
                .borrow()
                .as_ref()
                .map_or(0, |t| t.bytes_sent())
    }

    /// Observability report, including the `steer.rtt` round-trip
    /// latency distribution.
    pub fn obs_report(&self) -> ObsReport {
        self.obs.borrow().report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex_pair;

    #[test]
    fn client_receives_interleaved_messages() {
        let (client_end, server_end) = duplex_pair();
        let client = SteeringClient::new(Box::new(client_end));
        // Simulate the server side by hand.
        let status = StatusReport {
            step: 5,
            mass: 1.0,
            max_speed: 0.01,
            residual: 0.0,
            problems: vec![],
            eta_steps: 95,
            paused: false,
            rebalances: 0,
            lb_imbalance: 1.0,
            sessions: 1,
            cache_hits: 0,
            cache_misses: 0,
        };
        server_end
            .send_frame(ServerMessage::Status(status.clone()).to_bytes())
            .unwrap();
        let img = ImageFrame {
            step: 5,
            width: 1,
            height: 1,
            rgb: vec![1, 2, 3],
        };
        server_end
            .send_frame(ServerMessage::Image(img.clone()).to_bytes())
            .unwrap();
        let (got_img, statuses) = client.wait_for_image().unwrap();
        assert_eq!(got_img, img);
        assert_eq!(statuses, vec![status]);
    }

    #[test]
    fn sparse_frames_arrive_as_dense_images() {
        use crate::protocol::SparseImageFrame;
        let (client_end, server_end) = duplex_pair();
        let client = SteeringClient::new(Box::new(client_end));
        let mut img = ImageFrame {
            step: 9,
            width: 4,
            height: 2,
            rgb: vec![0; 24],
        };
        img.rgb[3..6].copy_from_slice(&[10, 20, 30]);
        img.rgb[21..24].copy_from_slice(&[1, 2, 3]);
        let sparse = SparseImageFrame::from_dense(&img, [0, 0, 0]);
        server_end
            .send_frame(ServerMessage::ImageSparse(sparse).to_bytes())
            .unwrap();
        // The client never sees the sparse form.
        match client.recv().unwrap() {
            ServerMessage::Image(got) => assert_eq!(got, img),
            other => panic!("expected a dense image, got {other:?}"),
        }
    }

    #[test]
    fn backoff_delays_grow_and_cap() {
        let b = BackoffPolicy {
            initial: Duration::from_millis(10),
            max: Duration::from_millis(100),
            factor: 3,
            max_attempts: 8,
        };
        assert_eq!(b.delay(0), Duration::from_millis(10));
        assert_eq!(b.delay(1), Duration::from_millis(30));
        assert_eq!(b.delay(2), Duration::from_millis(90));
        assert_eq!(b.delay(3), Duration::from_millis(100), "capped");
        assert_eq!(b.delay(30), Duration::from_millis(100), "no overflow");
    }

    #[test]
    fn client_redials_after_server_loss_and_accumulates_bytes() {
        use crate::transport::{duplex_listener, Acceptor};
        let (connector, acceptor) = duplex_listener();
        let factory: TransportFactory = Box::new(move || {
            connector
                .connect()
                .map(|t| Box::new(t) as Box<dyn Transport>)
        });
        let backoff = BackoffPolicy {
            initial: Duration::from_millis(1),
            max: Duration::from_millis(4),
            factor: 2,
            max_attempts: 4,
        };
        let client = SteeringClient::with_reconnect(factory, backoff).unwrap();
        let s1 = acceptor.try_accept().unwrap().expect("initial dial");
        client.send(&SteeringCommand::Pause).unwrap();
        assert_eq!(
            SteeringCommand::from_bytes(s1.recv_frame().unwrap()).unwrap(),
            SteeringCommand::Pause
        );
        let bytes_before_loss = client.bytes_sent();
        assert!(bytes_before_loss > 0);

        // The server dies; the next send transparently redials.
        drop(s1);
        client.send(&SteeringCommand::Resume).unwrap();
        let s2 = acceptor.try_accept().unwrap().expect("client redialed");
        assert_eq!(
            SteeringCommand::from_bytes(s2.recv_frame().unwrap()).unwrap(),
            SteeringCommand::Resume
        );
        assert!(
            client.bytes_sent() > bytes_before_loss,
            "byte accounting spans connections"
        );
        let report = client.obs_report();
        assert_eq!(report.counters["steer.reconnect"], 2, "dial + redial");
        assert!(report.counters["steer.reconnect.attempts"] >= 2);
    }

    #[test]
    fn reconnect_gives_up_after_max_attempts() {
        let dials = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let dials2 = dials.clone();
        let factory: TransportFactory = Box::new(move || {
            dials2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "nobody home",
            ))
        });
        let backoff = BackoffPolicy {
            initial: Duration::from_millis(1),
            max: Duration::from_millis(2),
            factor: 2,
            max_attempts: 3,
        };
        let err = match SteeringClient::with_reconnect(factory, backoff) {
            Ok(_) => panic!("dial must fail"),
            Err(e) => e,
        };
        assert!(err.is_disconnected(), "{err}");
        assert!(err.to_string().contains("gave up after 3 attempts"));
        assert_eq!(dials.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn disconnect_without_factory_is_terminal() {
        let (client_end, server_end) = duplex_pair();
        let client = SteeringClient::new(Box::new(client_end));
        drop(server_end);
        let err = client.send(&SteeringCommand::Pause).unwrap_err();
        assert!(err.is_disconnected(), "{err}");
    }

    #[test]
    fn commands_arrive_at_the_other_end() {
        let (client_end, server_end) = duplex_pair();
        let client = SteeringClient::new(Box::new(client_end));
        client.send(&SteeringCommand::SetVisRate(7)).unwrap();
        let frame = server_end.recv_frame().unwrap();
        assert_eq!(
            SteeringCommand::from_bytes(frame).unwrap(),
            SteeringCommand::SetVisRate(7)
        );
        assert!(client.bytes_sent() > 0);
    }
}
