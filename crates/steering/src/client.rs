//! The headless steering client.

use crate::protocol::{ImageFrame, ServerMessage, StatusReport, SteeringCommand};
use crate::transport::Transport;
use hemelb_parallel::Wire;

/// A steering client driving a running simulation over a transport.
pub struct SteeringClient {
    transport: Box<dyn Transport>,
}

impl SteeringClient {
    /// Wrap a connected transport.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        SteeringClient { transport }
    }

    /// Send one command.
    pub fn send(&self, cmd: &SteeringCommand) -> std::io::Result<()> {
        self.transport.send_frame(cmd.to_bytes())
    }

    /// Blocking receive of the next server message.
    pub fn recv(&self) -> std::io::Result<ServerMessage> {
        let frame = self.transport.recv_frame()?;
        ServerMessage::from_bytes(frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> std::io::Result<Option<ServerMessage>> {
        match self.transport.try_recv_frame()? {
            None => Ok(None),
            Some(frame) => ServerMessage::from_bytes(frame)
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Block until the next image arrives, returning it together with
    /// the status reports that preceded it.
    pub fn wait_for_image(&self) -> std::io::Result<(ImageFrame, Vec<StatusReport>)> {
        let mut statuses = Vec::new();
        loop {
            match self.recv()? {
                ServerMessage::Image(img) => return Ok((img, statuses)),
                ServerMessage::Status(s) => statuses.push(s),
                ServerMessage::Observables(_) => {}
            }
        }
    }

    /// Request a frame and wait for it (one full steps 2–6 round of the
    /// paper's in situ loop). Returns the frame and the round-trip wall
    /// time.
    pub fn request_frame(&self) -> std::io::Result<(ImageFrame, std::time::Duration)> {
        let t0 = std::time::Instant::now();
        self.send(&SteeringCommand::RequestFrame)?;
        let (img, _) = self.wait_for_image()?;
        Ok((img, t0.elapsed()))
    }

    /// Request in situ observables over the current ROI and wait for
    /// the report (other messages received in between are returned too).
    pub fn request_observables(
        &self,
    ) -> std::io::Result<(crate::protocol::ObservableReport, Vec<ServerMessage>)> {
        self.send(&SteeringCommand::RequestObservables)?;
        let mut others = Vec::new();
        loop {
            match self.recv()? {
                ServerMessage::Observables(o) => return Ok((o, others)),
                other => others.push(other),
            }
        }
    }

    /// Steering bytes this client has sent.
    pub fn bytes_sent(&self) -> u64 {
        self.transport.bytes_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex_pair;

    #[test]
    fn client_receives_interleaved_messages() {
        let (client_end, server_end) = duplex_pair();
        let client = SteeringClient::new(Box::new(client_end));
        // Simulate the server side by hand.
        let status = StatusReport {
            step: 5,
            mass: 1.0,
            max_speed: 0.01,
            residual: 0.0,
            problems: vec![],
            eta_steps: 95,
            paused: false,
        };
        server_end
            .send_frame(ServerMessage::Status(status.clone()).to_bytes())
            .unwrap();
        let img = ImageFrame {
            step: 5,
            width: 1,
            height: 1,
            rgb: vec![1, 2, 3],
        };
        server_end
            .send_frame(ServerMessage::Image(img.clone()).to_bytes())
            .unwrap();
        let (got_img, statuses) = client.wait_for_image().unwrap();
        assert_eq!(got_img, img);
        assert_eq!(statuses, vec![status]);
    }

    #[test]
    fn commands_arrive_at_the_other_end() {
        let (client_end, server_end) = duplex_pair();
        let client = SteeringClient::new(Box::new(client_end));
        client.send(&SteeringCommand::SetVisRate(7)).unwrap();
        let frame = server_end.recv_frame().unwrap();
        assert_eq!(
            SteeringCommand::from_bytes(frame).unwrap(),
            SteeringCommand::SetVisRate(7)
        );
        assert!(client.bytes_sent() > 0);
    }
}
