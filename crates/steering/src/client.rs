//! The headless steering client.

use crate::error::{SteeringError, SteeringResult};
use crate::protocol::{ImageFrame, ServerMessage, StatusReport, SteeringCommand};
use crate::transport::Transport;
use hemelb_obs::{ObsReport, Recorder};
use hemelb_parallel::Wire;
use std::cell::RefCell;

/// A steering client driving a running simulation over a transport.
///
/// Every blocking request/response round is recorded as a `steer.rtt`
/// phase in the client's observability recorder, so after a session
/// [`SteeringClient::obs_report`] yields the end-to-end steering
/// latency distribution (p50/p95/p99/max) the paper's responsiveness
/// argument is about.
pub struct SteeringClient {
    transport: Box<dyn Transport>,
    obs: RefCell<Recorder>,
}

impl SteeringClient {
    /// Wrap a connected transport.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        SteeringClient {
            transport,
            obs: RefCell::new(Recorder::new()),
        }
    }

    /// Send one command.
    pub fn send(&self, cmd: &SteeringCommand) -> SteeringResult<()> {
        self.transport.send_frame(cmd.to_bytes())?;
        Ok(())
    }

    /// Blocking receive of the next server message.
    pub fn recv(&self) -> SteeringResult<ServerMessage> {
        let frame = self.transport.recv_frame()?;
        ServerMessage::from_bytes(frame).map_err(|e| SteeringError::Protocol(e.to_string()))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> SteeringResult<Option<ServerMessage>> {
        match self.transport.try_recv_frame()? {
            None => Ok(None),
            Some(frame) => ServerMessage::from_bytes(frame)
                .map(Some)
                .map_err(|e| SteeringError::Protocol(e.to_string())),
        }
    }

    /// Block until the next image arrives, returning it together with
    /// the status reports that preceded it.
    pub fn wait_for_image(&self) -> SteeringResult<(ImageFrame, Vec<StatusReport>)> {
        let mut statuses = Vec::new();
        loop {
            match self.recv()? {
                ServerMessage::Image(img) => return Ok((img, statuses)),
                ServerMessage::Status(s) => statuses.push(s),
                ServerMessage::Observables(_) => {}
            }
        }
    }

    /// Request a frame and wait for it (one full steps 2–6 round of the
    /// paper's in situ loop). Returns the frame and the round-trip wall
    /// time; the latency also lands in the `steer.rtt` phase of
    /// [`SteeringClient::obs_report`].
    pub fn request_frame(&self) -> SteeringResult<(ImageFrame, std::time::Duration)> {
        let span = self.obs.borrow().begin();
        self.send(&SteeringCommand::RequestFrame)?;
        let (img, _) = self.wait_for_image()?;
        let secs = span.end(&mut self.obs.borrow_mut(), "steer.rtt");
        Ok((img, std::time::Duration::from_secs_f64(secs)))
    }

    /// Request in situ observables over the current ROI and wait for
    /// the report (other messages received in between are returned too).
    /// The round trip is recorded under `steer.rtt` like a frame round.
    pub fn request_observables(
        &self,
    ) -> SteeringResult<(crate::protocol::ObservableReport, Vec<ServerMessage>)> {
        let span = self.obs.borrow().begin();
        self.send(&SteeringCommand::RequestObservables)?;
        let mut others = Vec::new();
        let result = loop {
            match self.recv()? {
                ServerMessage::Observables(o) => break (o, others),
                other => others.push(other),
            }
        };
        span.end(&mut self.obs.borrow_mut(), "steer.rtt");
        Ok(result)
    }

    /// Steering bytes this client has sent.
    pub fn bytes_sent(&self) -> u64 {
        self.transport.bytes_sent()
    }

    /// Observability report, including the `steer.rtt` round-trip
    /// latency distribution.
    pub fn obs_report(&self) -> ObsReport {
        self.obs.borrow().report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex_pair;

    #[test]
    fn client_receives_interleaved_messages() {
        let (client_end, server_end) = duplex_pair();
        let client = SteeringClient::new(Box::new(client_end));
        // Simulate the server side by hand.
        let status = StatusReport {
            step: 5,
            mass: 1.0,
            max_speed: 0.01,
            residual: 0.0,
            problems: vec![],
            eta_steps: 95,
            paused: false,
        };
        server_end
            .send_frame(ServerMessage::Status(status.clone()).to_bytes())
            .unwrap();
        let img = ImageFrame {
            step: 5,
            width: 1,
            height: 1,
            rgb: vec![1, 2, 3],
        };
        server_end
            .send_frame(ServerMessage::Image(img.clone()).to_bytes())
            .unwrap();
        let (got_img, statuses) = client.wait_for_image().unwrap();
        assert_eq!(got_img, img);
        assert_eq!(statuses, vec![status]);
    }

    #[test]
    fn commands_arrive_at_the_other_end() {
        let (client_end, server_end) = duplex_pair();
        let client = SteeringClient::new(Box::new(client_end));
        client.send(&SteeringCommand::SetVisRate(7)).unwrap();
        let frame = server_end.recv_frame().unwrap();
        assert_eq!(
            SteeringCommand::from_bytes(frame).unwrap(),
            SteeringCommand::SetVisRate(7)
        );
        assert!(client.bytes_sent() > 0);
    }
}
