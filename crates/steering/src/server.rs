//! The steering server state machine (lives on the master rank).

use crate::protocol::{FieldChoice, ImageFrame, ServerMessage, StatusReport, SteeringCommand};
use crate::transport::Transport;
use hemelb_parallel::Wire;
use serde::{Deserialize, Serialize};

/// Steering-relevant state, replicated on every rank by broadcasting
/// the command stream (so the whole SPMD job stays consistent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteeringState {
    /// Camera eye.
    pub eye: [f64; 3],
    /// Camera target.
    pub target: [f64; 3],
    /// Camera up hint.
    pub up: [f64; 3],
    /// Vertical FOV (radians).
    pub fov_y: f64,
    /// Displayed field.
    pub field: FieldChoice,
    /// Render every this many steps.
    pub vis_rate: u32,
    /// Optional region of interest (lattice cells).
    pub roi: Option<([u32; 3], [u32; 3])>,
    /// Whether stepping is paused.
    pub paused: bool,
    /// Whether a frame was explicitly requested.
    pub frame_requested: bool,
    /// Whether an observable extraction was requested.
    pub observables_requested: bool,
    /// Whether termination was requested.
    pub terminate: bool,
    /// Pending inlet-pressure changes `(id, rho)`.
    pub pressure_changes: Vec<(u32, f64)>,
    /// Domain shape in lattice cells; ROIs are validated against it.
    pub domain: [u32; 3],
    /// Notices about rejected commands, drained into the next status
    /// report's `problems` list.
    pub rejections: Vec<String>,
}

impl SteeringState {
    /// Defaults: camera along −y, speed field, render every 50 steps.
    pub fn new(domain_shape: [usize; 3]) -> Self {
        let c = [
            domain_shape[0] as f64 / 2.0,
            domain_shape[1] as f64 / 2.0,
            domain_shape[2] as f64 / 2.0,
        ];
        let radius = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt();
        SteeringState {
            eye: [c[0], c[1] - 3.0 * radius, c[2]],
            target: c,
            up: [0.0, 0.0, 1.0],
            fov_y: 45f64.to_radians(),
            field: FieldChoice::Speed,
            vis_rate: 50,
            roi: None,
            paused: false,
            frame_requested: false,
            observables_requested: false,
            terminate: false,
            pressure_changes: Vec::new(),
            domain: [
                domain_shape[0] as u32,
                domain_shape[1] as u32,
                domain_shape[2] as u32,
            ],
            rejections: Vec::new(),
        }
    }

    /// Apply one command.
    pub fn apply(&mut self, cmd: &SteeringCommand) {
        match cmd {
            SteeringCommand::SetCamera {
                eye,
                target,
                up,
                fov_y,
            } => {
                self.eye = *eye;
                self.target = *target;
                self.up = *up;
                self.fov_y = *fov_y;
            }
            SteeringCommand::SetField(f) => self.field = *f,
            SteeringCommand::SetVisRate(n) => self.vis_rate = (*n).max(1),
            SteeringCommand::SetRoi { lo, hi } => {
                // Clamp to the domain, then reject empty or inverted
                // boxes instead of silently analysing nothing. The old
                // behaviour accepted any box verbatim, so an ROI past
                // the domain (or with lo ≥ hi) produced zero-site
                // observables with no indication why.
                let lo = [
                    lo[0].min(self.domain[0]),
                    lo[1].min(self.domain[1]),
                    lo[2].min(self.domain[2]),
                ];
                let hi = [
                    hi[0].min(self.domain[0]),
                    hi[1].min(self.domain[1]),
                    hi[2].min(self.domain[2]),
                ];
                if (0..3).all(|a| lo[a] < hi[a]) {
                    self.roi = Some((lo, hi));
                } else {
                    self.rejections.push(format!(
                        "rejected ROI {lo:?}..{hi:?}: empty or inverted after clamping \
                         to domain {:?}; keeping {:?}",
                        self.domain, self.roi
                    ));
                }
            }
            SteeringCommand::SetInletPressure { id, rho } => {
                self.pressure_changes.push((*id, *rho));
            }
            SteeringCommand::Pause => self.paused = true,
            SteeringCommand::Resume => self.paused = false,
            SteeringCommand::RequestFrame => self.frame_requested = true,
            SteeringCommand::RequestObservables => self.observables_requested = true,
            SteeringCommand::Terminate => self.terminate = true,
        }
    }

    /// Drain and return pending pressure changes.
    pub fn take_pressure_changes(&mut self) -> Vec<(u32, f64)> {
        std::mem::take(&mut self.pressure_changes)
    }

    /// Drain and return pending rejection notices (reported to the
    /// client via the next status report's `problems`).
    pub fn take_rejections(&mut self) -> Vec<String> {
        std::mem::take(&mut self.rejections)
    }
}

/// The master-rank endpoint: drains client commands, ships results.
pub struct SteeringServer {
    transport: Box<dyn Transport>,
}

impl SteeringServer {
    /// Wrap a connected transport.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        SteeringServer { transport }
    }

    /// Drain all commands currently queued by the client. A transport
    /// error (client gone) is reported as a terminate request, so a
    /// dead client never wedges the simulation.
    pub fn poll_commands(&self) -> Vec<SteeringCommand> {
        let mut out = Vec::new();
        loop {
            match self.transport.try_recv_frame() {
                Ok(Some(frame)) => match SteeringCommand::from_bytes(frame) {
                    Ok(cmd) => out.push(cmd),
                    Err(_) => {
                        out.push(SteeringCommand::Terminate);
                        break;
                    }
                },
                Ok(None) => break,
                Err(_) => {
                    out.push(SteeringCommand::Terminate);
                    break;
                }
            }
        }
        out
    }

    /// Send a status report (errors ignored: a vanished client must not
    /// kill the run mid-collective; the next poll sees the disconnect).
    pub fn send_status(&self, status: StatusReport) {
        let _ = self
            .transport
            .send_frame(ServerMessage::Status(status).to_bytes());
    }

    /// Send an image frame.
    pub fn send_image(&self, image: ImageFrame) {
        let _ = self
            .transport
            .send_frame(ServerMessage::Image(image).to_bytes());
    }

    /// Send an observable report.
    pub fn send_observables(&self, report: crate::protocol::ObservableReport) {
        let _ = self
            .transport
            .send_frame(ServerMessage::Observables(report).to_bytes());
    }

    /// Steering bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.transport.bytes_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex_pair;

    #[test]
    fn state_applies_commands() {
        let mut st = SteeringState::new([32, 16, 16]);
        assert!(!st.paused);
        st.apply(&SteeringCommand::Pause);
        assert!(st.paused);
        st.apply(&SteeringCommand::Resume);
        assert!(!st.paused);
        st.apply(&SteeringCommand::SetVisRate(0));
        assert_eq!(st.vis_rate, 1, "vis rate clamps to 1");
        st.apply(&SteeringCommand::SetField(FieldChoice::Density));
        assert_eq!(st.field, FieldChoice::Density);
        st.apply(&SteeringCommand::SetInletPressure { id: 0, rho: 1.03 });
        assert_eq!(st.take_pressure_changes(), vec![(0, 1.03)]);
        assert!(st.take_pressure_changes().is_empty(), "drained");
        st.apply(&SteeringCommand::Terminate);
        assert!(st.terminate);
    }

    #[test]
    fn valid_roi_is_accepted_and_clamped() {
        let mut st = SteeringState::new([32, 16, 16]);
        st.apply(&SteeringCommand::SetRoi {
            lo: [0, 0, 0],
            hi: [16, 16, 16],
        });
        assert_eq!(st.roi, Some(([0, 0, 0], [16, 16, 16])));
        assert!(st.take_rejections().is_empty());
        // A box poking past the domain is clamped, not rejected.
        st.apply(&SteeringCommand::SetRoi {
            lo: [8, 0, 0],
            hi: [1000, 1000, 1000],
        });
        assert_eq!(st.roi, Some(([8, 0, 0], [32, 16, 16])));
        assert!(st.take_rejections().is_empty());
    }

    #[test]
    fn inverted_or_empty_roi_is_rejected_and_reported() {
        let mut st = SteeringState::new([32, 16, 16]);
        let good = ([0, 0, 0], [8, 8, 8]);
        st.apply(&SteeringCommand::SetRoi {
            lo: good.0,
            hi: good.1,
        });
        // Inverted: lo > hi on the x axis.
        st.apply(&SteeringCommand::SetRoi {
            lo: [10, 0, 0],
            hi: [5, 16, 16],
        });
        assert_eq!(st.roi, Some(good), "previous valid ROI survives");
        // Empty: lo == hi.
        st.apply(&SteeringCommand::SetRoi {
            lo: [4, 4, 4],
            hi: [4, 8, 8],
        });
        // Entirely outside: clamping makes it empty.
        st.apply(&SteeringCommand::SetRoi {
            lo: [100, 0, 0],
            hi: [200, 16, 16],
        });
        assert_eq!(st.roi, Some(good));
        let rejections = st.take_rejections();
        assert_eq!(rejections.len(), 3);
        for r in &rejections {
            assert!(r.contains("rejected ROI"), "{r}");
        }
        assert!(st.take_rejections().is_empty(), "drained");
    }

    #[test]
    fn server_drains_queued_commands_in_order() {
        let (client_end, server_end) = duplex_pair();
        let server = SteeringServer::new(Box::new(server_end));
        client_end
            .send_frame(SteeringCommand::Pause.to_bytes())
            .unwrap();
        client_end
            .send_frame(SteeringCommand::SetVisRate(10).to_bytes())
            .unwrap();
        let cmds = server.poll_commands();
        assert_eq!(
            cmds,
            vec![SteeringCommand::Pause, SteeringCommand::SetVisRate(10)]
        );
        assert!(server.poll_commands().is_empty());
    }

    #[test]
    fn dead_client_becomes_terminate() {
        let (client_end, server_end) = duplex_pair();
        let server = SteeringServer::new(Box::new(server_end));
        drop(client_end);
        let cmds = server.poll_commands();
        assert_eq!(cmds, vec![SteeringCommand::Terminate]);
    }

    #[test]
    fn garbage_frame_becomes_terminate() {
        let (client_end, server_end) = duplex_pair();
        let server = SteeringServer::new(Box::new(server_end));
        client_end
            .send_frame(bytes::Bytes::from_static(&[250, 1, 2]))
            .unwrap();
        assert_eq!(server.poll_commands(), vec![SteeringCommand::Terminate]);
    }
}
