//! The steering server state machine (lives on the master rank).

use crate::protocol::{FieldChoice, ImageFrame, ServerMessage, StatusReport, SteeringCommand};
use crate::transport::{Acceptor, Transport};
use hemelb_parallel::Wire;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};

/// Steering-relevant state, replicated on every rank by broadcasting
/// the command stream (so the whole SPMD job stays consistent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteeringState {
    /// Camera eye.
    pub eye: [f64; 3],
    /// Camera target.
    pub target: [f64; 3],
    /// Camera up hint.
    pub up: [f64; 3],
    /// Vertical FOV (radians).
    pub fov_y: f64,
    /// Displayed field.
    pub field: FieldChoice,
    /// Render every this many steps.
    pub vis_rate: u32,
    /// Optional region of interest (lattice cells).
    pub roi: Option<([u32; 3], [u32; 3])>,
    /// Whether stepping is paused.
    pub paused: bool,
    /// Whether a frame was explicitly requested.
    pub frame_requested: bool,
    /// Whether an observable extraction was requested.
    pub observables_requested: bool,
    /// Whether termination was requested.
    pub terminate: bool,
    /// Pending inlet-pressure changes `(id, rho)`.
    pub pressure_changes: Vec<(u32, f64)>,
    /// Client override for adaptive load balancing: `None` until a
    /// client sends [`SteeringCommand::SetAdaptiveLb`], then the last
    /// value sent. The closed loop combines this with its configured
    /// default (`ClosedLoopConfig::adaptive_lb`).
    pub adaptive_lb_override: Option<bool>,
    /// Domain shape in lattice cells; ROIs are validated against it.
    pub domain: [u32; 3],
    /// Notices about rejected commands, drained into the next status
    /// report's `problems` list.
    pub rejections: Vec<String>,
}

impl SteeringState {
    /// Defaults: camera along −y, speed field, render every 50 steps.
    pub fn new(domain_shape: [usize; 3]) -> Self {
        let c = [
            domain_shape[0] as f64 / 2.0,
            domain_shape[1] as f64 / 2.0,
            domain_shape[2] as f64 / 2.0,
        ];
        let radius = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt();
        SteeringState {
            eye: [c[0], c[1] - 3.0 * radius, c[2]],
            target: c,
            up: [0.0, 0.0, 1.0],
            fov_y: 45f64.to_radians(),
            field: FieldChoice::Speed,
            vis_rate: 50,
            roi: None,
            paused: false,
            frame_requested: false,
            observables_requested: false,
            terminate: false,
            pressure_changes: Vec::new(),
            adaptive_lb_override: None,
            domain: [
                domain_shape[0] as u32,
                domain_shape[1] as u32,
                domain_shape[2] as u32,
            ],
            rejections: Vec::new(),
        }
    }

    /// Apply one command.
    pub fn apply(&mut self, cmd: &SteeringCommand) {
        match cmd {
            SteeringCommand::SetCamera {
                eye,
                target,
                up,
                fov_y,
            } => {
                self.eye = *eye;
                self.target = *target;
                self.up = *up;
                self.fov_y = *fov_y;
            }
            SteeringCommand::SetField(f) => self.field = *f,
            SteeringCommand::SetVisRate(n) => self.vis_rate = (*n).max(1),
            SteeringCommand::SetRoi { lo, hi } => {
                // Clamp to the domain, then reject empty or inverted
                // boxes instead of silently analysing nothing. The old
                // behaviour accepted any box verbatim, so an ROI past
                // the domain (or with lo ≥ hi) produced zero-site
                // observables with no indication why.
                let lo = [
                    lo[0].min(self.domain[0]),
                    lo[1].min(self.domain[1]),
                    lo[2].min(self.domain[2]),
                ];
                let hi = [
                    hi[0].min(self.domain[0]),
                    hi[1].min(self.domain[1]),
                    hi[2].min(self.domain[2]),
                ];
                if (0..3).all(|a| lo[a] < hi[a]) {
                    self.roi = Some((lo, hi));
                } else {
                    self.rejections.push(format!(
                        "rejected ROI {lo:?}..{hi:?}: empty or inverted after clamping \
                         to domain {:?}; keeping {:?}",
                        self.domain, self.roi
                    ));
                }
            }
            SteeringCommand::SetInletPressure { id, rho } => {
                self.pressure_changes.push((*id, *rho));
            }
            SteeringCommand::Pause => self.paused = true,
            SteeringCommand::Resume => self.paused = false,
            SteeringCommand::RequestFrame => self.frame_requested = true,
            SteeringCommand::RequestObservables => self.observables_requested = true,
            SteeringCommand::SetAdaptiveLb(on) => self.adaptive_lb_override = Some(*on),
            SteeringCommand::Terminate => self.terminate = true,
            // Session arbitration, not simulation state: the gateway
            // consumes this before commands reach the replicated state,
            // and a single-client server has no driver role to release.
            SteeringCommand::ReleaseDriver => {}
        }
    }

    /// Drain and return pending pressure changes.
    pub fn take_pressure_changes(&mut self) -> Vec<(u32, f64)> {
        std::mem::take(&mut self.pressure_changes)
    }

    /// Drain and return pending rejection notices (reported to the
    /// client via the next status report's `problems`).
    pub fn take_rejections(&mut self) -> Vec<String> {
        std::mem::take(&mut self.rejections)
    }
}

/// What the master does when the steering client vanishes (or sends
/// garbage) mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientLossPolicy {
    /// Treat the loss as a terminate request — the historical default:
    /// an interactive session without its human stops.
    #[default]
    Terminate,
    /// Keep simulating headless. With an [`Acceptor`] configured, a new
    /// client can attach later and resume steering where the old one
    /// left off.
    Headless,
}

/// The master-rank endpoint: drains client commands, ships results.
///
/// The transport slot may be empty (headless): sends become no-ops and
/// [`SteeringServer::poll_commands`] polls the acceptor, if any, for a
/// client (re-)attaching to the running simulation.
pub struct SteeringServer {
    transport: RefCell<Option<Box<dyn Transport>>>,
    acceptor: Option<Box<dyn Acceptor>>,
    loss_policy: ClientLossPolicy,
    /// Bytes sent over transports that have since been dropped.
    bytes_retired: Cell<u64>,
    /// Times a client attached via the acceptor.
    attach_count: Cell<u64>,
    /// Human-readable connection events (attach/loss), drained into
    /// status reports by the closed loop.
    events: RefCell<Vec<String>>,
    /// Commands drained off a dying transport at detach time, returned
    /// by the next [`SteeringServer::poll_commands`]. Before this
    /// existed, anything the client sent between the loss being noticed
    /// (often via a failed send) and the transport being dropped was
    /// silently lost.
    salvaged: RefCell<Vec<SteeringCommand>>,
}

impl SteeringServer {
    /// Wrap a connected transport. Client loss terminates the run (the
    /// historical behaviour); there is no acceptor to re-attach through.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        Self::with_policy(Some(transport), None, ClientLossPolicy::Terminate)
    }

    /// Full wiring: an optionally already-connected client, an optional
    /// acceptor for (re-)attachment, and the loss policy.
    pub fn with_policy(
        transport: Option<Box<dyn Transport>>,
        acceptor: Option<Box<dyn Acceptor>>,
        loss_policy: ClientLossPolicy,
    ) -> Self {
        SteeringServer {
            attach_count: Cell::new(transport.is_some() as u64),
            transport: RefCell::new(transport),
            acceptor,
            loss_policy,
            bytes_retired: Cell::new(0),
            events: RefCell::new(Vec::new()),
            salvaged: RefCell::new(Vec::new()),
        }
    }

    /// Headless from the start: simulate with no client, let one attach
    /// through `acceptor` whenever it likes.
    pub fn headless(acceptor: Box<dyn Acceptor>) -> Self {
        Self::with_policy(None, Some(acceptor), ClientLossPolicy::Headless)
    }

    /// Whether a client is currently attached.
    pub fn is_attached(&self) -> bool {
        self.transport.borrow().is_some()
    }

    /// How many times a client has attached (initial connection
    /// included).
    pub fn attach_count(&self) -> u64 {
        self.attach_count.get()
    }

    /// Drain pending connection events (client attached / client lost).
    pub fn take_events(&self) -> Vec<String> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Drop the current client connection, accounting its bytes.
    ///
    /// Before dropping the transport, drain any commands still queued
    /// on it: a loss is usually noticed on a *send* (e.g. a failed
    /// image ship), at which point the client may have decodable
    /// commands in flight that would otherwise vanish with the
    /// transport. Salvaged commands are returned by the next
    /// [`SteeringServer::poll_commands`]; undecodable leftovers are
    /// rejected explicitly. Both outcomes are surfaced in the loss
    /// event so `take_events()` / `StatusReport.problems` show what
    /// happened instead of losing commands silently.
    fn detach(&self, why: &str) {
        if let Some(old) = self.transport.borrow_mut().take() {
            let mut salvaged = 0usize;
            let mut rejected = 0usize;
            while let Ok(Some(frame)) = old.try_recv_frame() {
                match SteeringCommand::from_bytes(frame) {
                    Ok(cmd) => {
                        self.salvaged.borrow_mut().push(cmd);
                        salvaged += 1;
                    }
                    Err(_) => rejected += 1,
                }
            }
            self.bytes_retired
                .set(self.bytes_retired.get() + old.bytes_sent());
            let mut event = format!("steering client lost: {why}");
            if salvaged > 0 || rejected > 0 {
                event.push_str(&format!(
                    " (salvaged {salvaged} queued command(s), rejected {rejected} undecodable)"
                ));
            }
            self.events.borrow_mut().push(event);
        }
    }

    /// React to a dead or garbling client per the loss policy.
    fn on_client_loss(&self, why: &str, out: &mut Vec<SteeringCommand>) {
        match self.loss_policy {
            ClientLossPolicy::Terminate => out.push(SteeringCommand::Terminate),
            ClientLossPolicy::Headless => self.detach(why),
        }
    }

    /// Drain all commands currently queued by the client. A transport
    /// error (client gone) follows the loss policy: terminate (default)
    /// or detach and keep simulating headless. While detached, the
    /// acceptor (if any) is polled so a new client can take over.
    pub fn poll_commands(&self) -> Vec<SteeringCommand> {
        if self.transport.borrow().is_none() {
            if let Some(acceptor) = &self.acceptor {
                if let Ok(Some(t)) = acceptor.try_accept() {
                    *self.transport.borrow_mut() = Some(t);
                    self.attach_count.set(self.attach_count.get() + 1);
                    self.events
                        .borrow_mut()
                        .push("steering client attached".into());
                }
            }
        }
        // Commands salvaged off a dying transport come first: they were
        // sent before anything the current transport holds.
        let mut out = std::mem::take(&mut *self.salvaged.borrow_mut());
        loop {
            let polled = match self.transport.borrow().as_deref() {
                None => return out,
                Some(t) => t.try_recv_frame(),
            };
            match polled {
                Ok(Some(frame)) => match SteeringCommand::from_bytes(frame) {
                    Ok(cmd) => out.push(cmd),
                    Err(e) => {
                        self.on_client_loss(&format!("undecodable command: {e}"), &mut out);
                        break;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    self.on_client_loss(&e.to_string(), &mut out);
                    break;
                }
            }
        }
        out
    }

    /// Ship one message; a send failure means the client is gone, which
    /// under the headless policy detaches it (the next poll may accept
    /// a replacement). Under the terminate policy errors are ignored —
    /// a vanished client must not kill the run mid-collective; the next
    /// poll sees the disconnect.
    fn ship(&self, msg: ServerMessage) {
        let result = match self.transport.borrow().as_deref() {
            None => return,
            Some(t) => t.send_frame(msg.to_bytes()),
        };
        if let Err(e) = result {
            if self.loss_policy == ClientLossPolicy::Headless {
                self.detach(&e.to_string());
            }
        }
    }

    /// Send a status report.
    pub fn send_status(&self, status: StatusReport) {
        self.ship(ServerMessage::Status(status));
    }

    /// Send an image frame.
    pub fn send_image(&self, image: ImageFrame) {
        self.ship(ServerMessage::Image(image));
    }

    /// Send an observable report.
    pub fn send_observables(&self, report: crate::protocol::ObservableReport) {
        self.ship(ServerMessage::Observables(report));
    }

    /// Steering bytes sent so far, across all client connections.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_retired.get()
            + self
                .transport
                .borrow()
                .as_ref()
                .map_or(0, |t| t.bytes_sent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex_pair;

    #[test]
    fn state_applies_commands() {
        let mut st = SteeringState::new([32, 16, 16]);
        assert!(!st.paused);
        st.apply(&SteeringCommand::Pause);
        assert!(st.paused);
        st.apply(&SteeringCommand::Resume);
        assert!(!st.paused);
        st.apply(&SteeringCommand::SetVisRate(0));
        assert_eq!(st.vis_rate, 1, "vis rate clamps to 1");
        st.apply(&SteeringCommand::SetField(FieldChoice::Density));
        assert_eq!(st.field, FieldChoice::Density);
        st.apply(&SteeringCommand::SetInletPressure { id: 0, rho: 1.03 });
        assert_eq!(st.take_pressure_changes(), vec![(0, 1.03)]);
        assert!(st.take_pressure_changes().is_empty(), "drained");
        st.apply(&SteeringCommand::Terminate);
        assert!(st.terminate);
    }

    #[test]
    fn valid_roi_is_accepted_and_clamped() {
        let mut st = SteeringState::new([32, 16, 16]);
        st.apply(&SteeringCommand::SetRoi {
            lo: [0, 0, 0],
            hi: [16, 16, 16],
        });
        assert_eq!(st.roi, Some(([0, 0, 0], [16, 16, 16])));
        assert!(st.take_rejections().is_empty());
        // A box poking past the domain is clamped, not rejected.
        st.apply(&SteeringCommand::SetRoi {
            lo: [8, 0, 0],
            hi: [1000, 1000, 1000],
        });
        assert_eq!(st.roi, Some(([8, 0, 0], [32, 16, 16])));
        assert!(st.take_rejections().is_empty());
    }

    #[test]
    fn inverted_or_empty_roi_is_rejected_and_reported() {
        let mut st = SteeringState::new([32, 16, 16]);
        let good = ([0, 0, 0], [8, 8, 8]);
        st.apply(&SteeringCommand::SetRoi {
            lo: good.0,
            hi: good.1,
        });
        // Inverted: lo > hi on the x axis.
        st.apply(&SteeringCommand::SetRoi {
            lo: [10, 0, 0],
            hi: [5, 16, 16],
        });
        assert_eq!(st.roi, Some(good), "previous valid ROI survives");
        // Empty: lo == hi.
        st.apply(&SteeringCommand::SetRoi {
            lo: [4, 4, 4],
            hi: [4, 8, 8],
        });
        // Entirely outside: clamping makes it empty.
        st.apply(&SteeringCommand::SetRoi {
            lo: [100, 0, 0],
            hi: [200, 16, 16],
        });
        assert_eq!(st.roi, Some(good));
        let rejections = st.take_rejections();
        assert_eq!(rejections.len(), 3);
        for r in &rejections {
            assert!(r.contains("rejected ROI"), "{r}");
        }
        assert!(st.take_rejections().is_empty(), "drained");
    }

    #[test]
    fn server_drains_queued_commands_in_order() {
        let (client_end, server_end) = duplex_pair();
        let server = SteeringServer::new(Box::new(server_end));
        client_end
            .send_frame(SteeringCommand::Pause.to_bytes())
            .unwrap();
        client_end
            .send_frame(SteeringCommand::SetVisRate(10).to_bytes())
            .unwrap();
        let cmds = server.poll_commands();
        assert_eq!(
            cmds,
            vec![SteeringCommand::Pause, SteeringCommand::SetVisRate(10)]
        );
        assert!(server.poll_commands().is_empty());
    }

    #[test]
    fn dead_client_becomes_terminate() {
        let (client_end, server_end) = duplex_pair();
        let server = SteeringServer::new(Box::new(server_end));
        drop(client_end);
        let cmds = server.poll_commands();
        assert_eq!(cmds, vec![SteeringCommand::Terminate]);
    }

    #[test]
    fn headless_server_survives_loss_and_reattach() {
        use crate::transport::duplex_listener;
        let (connector, acceptor) = duplex_listener();
        let server = SteeringServer::headless(Box::new(acceptor));
        assert!(!server.is_attached());
        assert!(server.poll_commands().is_empty(), "no client yet");
        server.send_status(StatusReport {
            step: 0,
            mass: 1.0,
            max_speed: 0.0,
            residual: 0.0,
            problems: vec![],
            eta_steps: 10,
            paused: false,
            rebalances: 0,
            lb_imbalance: 1.0,
            sessions: 0,
            cache_hits: 0,
            cache_misses: 0,
        }); // no-op while detached

        // First client attaches and steers.
        let c1 = connector.connect().unwrap();
        c1.send_frame(SteeringCommand::Pause.to_bytes()).unwrap();
        assert_eq!(server.poll_commands(), vec![SteeringCommand::Pause]);
        assert!(server.is_attached());
        assert_eq!(server.attach_count(), 1);
        let sent_to_c1 = {
            server.send_image(ImageFrame {
                step: 1,
                width: 1,
                height: 1,
                rgb: vec![0, 0, 0],
            });
            server.bytes_sent()
        };
        assert!(sent_to_c1 > 0);

        // It dies: the run goes headless instead of terminating.
        drop(c1);
        assert!(server.poll_commands().is_empty(), "no Terminate injected");
        assert!(!server.is_attached());

        // A second client takes over; byte accounting spans both.
        let c2 = connector.connect().unwrap();
        c2.send_frame(SteeringCommand::Resume.to_bytes()).unwrap();
        assert_eq!(server.poll_commands(), vec![SteeringCommand::Resume]);
        assert_eq!(server.attach_count(), 2);
        server.send_image(ImageFrame {
            step: 2,
            width: 1,
            height: 1,
            rgb: vec![0, 0, 0],
        });
        assert!(server.bytes_sent() > sent_to_c1);

        let events = server.take_events();
        assert_eq!(events.len(), 3, "attach, loss, attach: {events:?}");
        assert!(events[0].contains("attached"));
        assert!(events[1].contains("lost"));
        assert!(server.take_events().is_empty(), "drained");
    }

    #[test]
    fn send_failure_detaches_headless_client() {
        use crate::transport::duplex_listener;
        let (connector, acceptor) = duplex_listener();
        let server = SteeringServer::headless(Box::new(acceptor));
        let c1 = connector.connect().unwrap();
        while !server.is_attached() {
            server.poll_commands();
        }
        drop(c1);
        server.send_status(StatusReport {
            step: 0,
            mass: 1.0,
            max_speed: 0.0,
            residual: 0.0,
            problems: vec![],
            eta_steps: 10,
            paused: false,
            rebalances: 0,
            lb_imbalance: 1.0,
            sessions: 1,
            cache_hits: 0,
            cache_misses: 0,
        });
        assert!(!server.is_attached(), "failed send detaches the client");
        assert!(server.take_events().iter().any(|e| e.contains("lost")));
    }

    #[test]
    fn commands_in_flight_at_detach_are_salvaged_not_dropped() {
        use crate::transport::duplex_listener;
        let (connector, acceptor) = duplex_listener();
        let server = SteeringServer::headless(Box::new(acceptor));
        let c1 = connector.connect().unwrap();
        while !server.is_attached() {
            server.poll_commands();
        }
        // The client sends commands, then vanishes before the server
        // polls them; the server notices the loss on a failed *send*.
        c1.send_frame(SteeringCommand::Pause.to_bytes()).unwrap();
        c1.send_frame(SteeringCommand::SetVisRate(7).to_bytes())
            .unwrap();
        drop(c1);
        server.send_status(StatusReport {
            step: 3,
            mass: 1.0,
            max_speed: 0.0,
            residual: 0.0,
            problems: vec![],
            eta_steps: 10,
            paused: false,
            rebalances: 0,
            lb_imbalance: 1.0,
            sessions: 1,
            cache_hits: 0,
            cache_misses: 0,
        });
        assert!(!server.is_attached(), "failed send detaches the client");
        // The detach→re-attach window used to drop these on the floor.
        assert_eq!(
            server.poll_commands(),
            vec![SteeringCommand::Pause, SteeringCommand::SetVisRate(7)]
        );
        let events = server.take_events();
        assert!(
            events.iter().any(|e| e.contains("salvaged 2")),
            "salvage is surfaced in events: {events:?}"
        );
    }

    #[test]
    fn undecodable_leftovers_at_detach_are_rejected_explicitly() {
        use crate::transport::duplex_listener;
        let (connector, acceptor) = duplex_listener();
        let server = SteeringServer::headless(Box::new(acceptor));
        let c1 = connector.connect().unwrap();
        while !server.is_attached() {
            server.poll_commands();
        }
        c1.send_frame(SteeringCommand::Resume.to_bytes()).unwrap();
        c1.send_frame(bytes::Bytes::from_static(&[250, 9, 9]))
            .unwrap();
        drop(c1);
        server.send_status(StatusReport {
            step: 0,
            mass: 1.0,
            max_speed: 0.0,
            residual: 0.0,
            problems: vec![],
            eta_steps: 1,
            paused: false,
            rebalances: 0,
            lb_imbalance: 1.0,
            sessions: 1,
            cache_hits: 0,
            cache_misses: 0,
        });
        assert_eq!(server.poll_commands(), vec![SteeringCommand::Resume]);
        let events = server.take_events();
        assert!(
            events
                .iter()
                .any(|e| e.contains("salvaged 1") && e.contains("rejected 1")),
            "{events:?}"
        );
    }

    #[test]
    fn garbage_frame_becomes_terminate() {
        let (client_end, server_end) = duplex_pair();
        let server = SteeringServer::new(Box::new(server_end));
        client_end
            .send_frame(bytes::Bytes::from_static(&[250, 1, 2]))
            .unwrap();
        assert_eq!(server.poll_commands(), vec![SteeringCommand::Terminate]);
    }
}
