//! The steering-layer error type.
//!
//! Steering failures are *expected* events — a human closes the client
//! window mid-run — so nothing in the library path may panic on them.
//! Transport and protocol failures funnel into [`SteeringError`] and
//! the closed loop degrades (a vanished client becomes a terminate
//! request) instead of taking the master rank down.

use hemelb_parallel::CommError;
use std::fmt;

/// Anything that can go wrong in the steering layer.
#[derive(Debug)]
pub enum SteeringError {
    /// Transport I/O failed (client disconnected, socket error).
    Transport(std::io::Error),
    /// A frame arrived but did not decode as a protocol message.
    Protocol(String),
    /// A rank-communicator collective failed underneath the loop.
    Comm(CommError),
    /// The loop was wired up inconsistently (e.g. a steering transport
    /// on a non-master rank).
    Config(String),
}

impl fmt::Display for SteeringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SteeringError::Transport(e) => write!(f, "steering transport: {e}"),
            SteeringError::Protocol(m) => write!(f, "steering protocol: {m}"),
            SteeringError::Comm(e) => write!(f, "steering collective: {e}"),
            SteeringError::Config(m) => write!(f, "steering configuration: {m}"),
        }
    }
}

impl std::error::Error for SteeringError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SteeringError::Transport(e) => Some(e),
            SteeringError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SteeringError {
    fn from(e: std::io::Error) -> Self {
        SteeringError::Transport(e)
    }
}

impl From<CommError> for SteeringError {
    fn from(e: CommError) -> Self {
        SteeringError::Comm(e)
    }
}

/// Shorthand for steering-layer results.
pub type SteeringResult<T> = Result<T, SteeringError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SteeringError =
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone").into();
        assert!(matches!(e, SteeringError::Transport(_)));
        assert!(e.to_string().contains("peer gone"));
        let e: SteeringError = CommError::Decode {
            reason: "short".into(),
        }
        .into();
        assert!(matches!(e, SteeringError::Comm(_)));
        let e = SteeringError::Config("bad wiring".into());
        assert!(e.to_string().contains("bad wiring"));
        use std::error::Error;
        assert!(SteeringError::Protocol("x".into()).source().is_none());
    }
}
