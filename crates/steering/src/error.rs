//! The steering-layer error type.
//!
//! Steering failures are *expected* events — a human closes the client
//! window mid-run — so nothing in the library path may panic on them.
//! Transport and protocol failures funnel into [`SteeringError`] and
//! the closed loop degrades (a vanished client becomes a terminate
//! request) instead of taking the master rank down.

use hemelb_parallel::CommError;
use std::fmt;

/// Anything that can go wrong in the steering layer.
#[derive(Debug)]
pub enum SteeringError {
    /// The peer is gone for good: the connection closed or reset and no
    /// further I/O on this transport can succeed. Callers with a
    /// reconnect policy may dial again; everything else treats it as a
    /// clean end of the steering session.
    Disconnected(String),
    /// Transport I/O failed in a way that does not prove the peer is
    /// gone (timeout, invalid data, resource pressure).
    Transport(std::io::Error),
    /// A frame arrived but did not decode as a protocol message.
    Protocol(String),
    /// A rank-communicator collective failed underneath the loop.
    Comm(CommError),
    /// The loop was wired up inconsistently (e.g. a steering transport
    /// on a non-master rank).
    Config(String),
}

impl SteeringError {
    /// Classify an I/O error: the error kinds that mean "the peer is
    /// gone" become [`SteeringError::Disconnected`]; everything else
    /// stays a generic transport error.
    pub fn from_io(e: std::io::Error) -> Self {
        use std::io::ErrorKind::*;
        match e.kind() {
            UnexpectedEof | BrokenPipe | ConnectionReset | ConnectionAborted | NotConnected => {
                SteeringError::Disconnected(e.to_string())
            }
            _ => SteeringError::Transport(e),
        }
    }

    /// Whether this error is terminal for the current connection.
    pub fn is_disconnected(&self) -> bool {
        matches!(self, SteeringError::Disconnected(_))
    }
}

impl fmt::Display for SteeringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SteeringError::Disconnected(m) => write!(f, "steering peer disconnected: {m}"),
            SteeringError::Transport(e) => write!(f, "steering transport: {e}"),
            SteeringError::Protocol(m) => write!(f, "steering protocol: {m}"),
            SteeringError::Comm(e) => write!(f, "steering collective: {e}"),
            SteeringError::Config(m) => write!(f, "steering configuration: {m}"),
        }
    }
}

impl std::error::Error for SteeringError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SteeringError::Transport(e) => Some(e),
            SteeringError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SteeringError {
    fn from(e: std::io::Error) -> Self {
        SteeringError::from_io(e)
    }
}

impl From<CommError> for SteeringError {
    fn from(e: CommError) -> Self {
        SteeringError::Comm(e)
    }
}

/// Shorthand for steering-layer results.
pub type SteeringResult<T> = Result<T, SteeringError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        // Peer-gone I/O errors classify as Disconnected…
        let e: SteeringError =
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone").into();
        assert!(matches!(e, SteeringError::Disconnected(_)));
        assert!(e.is_disconnected());
        assert!(e.to_string().contains("peer gone"));
        // …while transient ones stay generic transport errors.
        let e = SteeringError::from_io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "slow peer",
        ));
        assert!(matches!(e, SteeringError::Transport(_)));
        assert!(!e.is_disconnected());
        let e: SteeringError = CommError::Decode {
            reason: "short".into(),
        }
        .into();
        assert!(matches!(e, SteeringError::Comm(_)));
        let e = SteeringError::Config("bad wiring".into());
        assert!(e.to_string().contains("bad wiring"));
        use std::error::Error;
        assert!(SteeringError::Protocol("x".into()).source().is_none());
    }
}
