//! Multi-tenant session gateway: one simulation, many steering clients.
//!
//! The single-client [`crate::server::SteeringServer`] assumes one
//! scientist driving one run. The ROADMAP north star is many users
//! observing (and occasionally steering) shared runs, so the gateway
//! decouples the one producer from N consumers, SENSEI-style:
//!
//! * every client that dials the [`Acceptor`] becomes a **session**
//!   with a monotonically increasing [`SessionId`];
//! * exactly one session holds the **driver** role — only its commands
//!   reach the simulation. Everyone else is an **observer** receiving
//!   the status/image broadcast. The first session to attach drives;
//!   on driver disconnect (or an explicit
//!   [`SteeringCommand::ReleaseDriver`]) the role hands off to the
//!   *lowest-numbered* remaining session, so arbitration is
//!   deterministic and replayable;
//! * broadcasts go through per-session send queues
//!   ([`Transport::try_send_frame`]), so one slow or dead observer can
//!   never stall the simulation loop. A backlogged session walks a
//!   degradation ladder: past `degrade_queued_bytes` it stops receiving
//!   images (status-only), past `detach_queued_bytes` — or once its
//!   backlog has failed to drain for `drain_deadline` — it is detached;
//! * identical observer views are served from a [`FrameCache`] keyed by
//!   `(step, camera, ROI, transfer-function family)`: one render and
//!   one run-length encode, N cheap sends.
//!
//! The cache is deliberately **FIFO**, not LRU: the closed loop keeps
//! one key cache per rank (payloads only on the master) and consults it
//! collectively, so every rank must agree on which key gets evicted.
//! LRU would touch entries on master-only lookups and silently diverge
//! the eviction order across ranks; FIFO depends only on the insertion
//! sequence, which is replicated.

use crate::protocol::{ObservableReport, ServerMessage, StatusReport, SteeringCommand};
use crate::transport::{Acceptor, Transport};
use bytes::Bytes;
use hemelb_parallel::Wire;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Identifies one client session for its lifetime. Ids are assigned in
/// attach order and never reused, so ordering them orders attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session {}", self.0)
    }
}

/// What a session may do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Commands are applied to the simulation. Exactly one per gateway
    /// (whenever any session exists at all).
    Driver,
    /// Receives the status/image broadcast; commands are rejected.
    Observer,
}

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Hard cap on concurrent sessions; extra dials are refused.
    pub max_sessions: usize,
    /// Send backlog (bytes) past which a session degrades to
    /// status-only: queued image frames stop being sent to it.
    pub degrade_queued_bytes: u64,
    /// Send backlog (bytes) past which a session is detached outright.
    pub detach_queued_bytes: u64,
    /// How long a session's backlog may stay non-empty before the
    /// session is declared wedged and detached (PR 4's deadline idea
    /// applied to the send side).
    pub drain_deadline: Duration,
    /// Rendered-frame cache capacity (entries). Zero disables caching.
    pub frame_cache_entries: usize,
    /// Broadcast frames in the sparse run-length wire form
    /// ([`crate::protocol::SparseImageFrame`]) instead of dense RGB.
    pub sparse_frames: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_sessions: 1024,
            degrade_queued_bytes: 4 << 20,
            detach_queued_bytes: 16 << 20,
            drain_deadline: Duration::from_secs(2),
            frame_cache_entries: 32,
            sparse_frames: true,
        }
    }
}

/// Everything that identifies a rendered frame, for cache lookups.
///
/// `view` folds together the camera (pose, FOV, image dimensions), the
/// ROI, the displayed field and the transfer-function *family* hash —
/// the data-derived scalar range is excluded on purpose (it is a pure
/// function of `(step, field, ROI)`, which the key already pins; see
/// `TransferFunction::family_hash`). Built from replicated steering
/// state only, so every rank computes the identical key without
/// communicating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameKey {
    /// Simulation step the frame shows.
    pub step: u64,
    /// Hash of the full view configuration.
    pub view: u64,
}

impl FrameKey {
    /// Combine the view ingredients into a key.
    pub fn new(
        step: u64,
        camera_hash: u64,
        roi: Option<([u32; 3], [u32; 3])>,
        field_tag: u8,
        tf_family_hash: u64,
    ) -> Self {
        let mut h = Fnv::new();
        h.mix_u64(camera_hash);
        match roi {
            None => h.mix_u64(0),
            Some((lo, hi)) => {
                h.mix_u64(1);
                for v in lo.iter().chain(hi.iter()) {
                    h.mix_u64(*v as u64);
                }
            }
        }
        h.mix_u64(field_tag as u64);
        h.mix_u64(tf_family_hash);
        FrameKey {
            step,
            view: h.finish(),
        }
    }
}

/// Incremental FNV-1a, the same mixing the insitu content hashes use.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn mix_u64(&mut self, bits: u64) {
        for b in bits.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// The result of a [`FrameCache::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// The key is cached. The payload is `Some` only on the rank that
    /// stores payloads (the master); everyone else caches keys alone.
    Hit(Option<Bytes>),
    /// Not cached; render, then [`FrameCache::insert`].
    Miss,
}

/// A bounded FIFO cache of encoded frames keyed by [`FrameKey`].
///
/// FIFO eviction (not LRU) keeps rank-replicated instances in lockstep:
/// eviction order depends only on the insertion sequence, never on who
/// looked what up. See the module docs for why that matters.
#[derive(Debug, Default)]
pub struct FrameCache {
    capacity: usize,
    order: VecDeque<FrameKey>,
    entries: HashMap<FrameKey, Option<Bytes>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl FrameCache {
    /// A cache holding at most `capacity` frames (0 disables it: every
    /// lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        FrameCache {
            capacity,
            ..Default::default()
        }
    }

    /// Look `key` up, counting the hit or miss.
    pub fn lookup(&mut self, key: FrameKey) -> CacheLookup {
        match self.entries.get(&key) {
            Some(payload) => {
                self.hits += 1;
                CacheLookup::Hit(payload.clone())
            }
            None => {
                self.misses += 1;
                CacheLookup::Miss
            }
        }
    }

    /// Insert an encoded frame (or just the key, on ranks that don't
    /// keep payloads), evicting the oldest entry at capacity.
    pub fn insert(&mut self, key: FrameKey, payload: Option<Bytes>) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.insert(key, payload).is_some() {
            // Same key re-inserted: refresh the payload, keep the FIFO
            // position (a move-to-back would be an LRU touch).
            return;
        }
        self.order.push_back(key);
        while self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
                self.evictions += 1;
            }
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }
    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

struct Session {
    role: Role,
    transport: Box<dyn Transport>,
    /// When the send backlog last became non-empty (`None` = drained).
    backlog_since: Option<Instant>,
    /// Degraded: receives status reports but no image frames.
    status_only: bool,
}

/// The multi-session steering endpoint living on the master rank.
///
/// Interior mutability mirrors [`crate::server::SteeringServer`]: the
/// closed loop holds it by shared reference.
pub struct SessionGateway {
    acceptor: Box<dyn Acceptor>,
    cfg: GatewayConfig,
    sessions: RefCell<BTreeMap<SessionId, Session>>,
    next_id: Cell<u64>,
    driver: Cell<Option<SessionId>>,
    events: RefCell<Vec<String>>,
    /// Driver commands drained off a dying transport at detach time
    /// (same salvage fix as the single-client server).
    salvaged: RefCell<Vec<SteeringCommand>>,
    /// Last broadcast frame, replayed to late joiners so they see a
    /// picture immediately instead of waiting out the vis cadence.
    last_frame: RefCell<Option<Bytes>>,
    bytes_retired: Cell<u64>,
    attaches: Cell<u64>,
    detaches: Cell<u64>,
    sessions_peak: Cell<u64>,
    frames_skipped_status_only: Cell<u64>,
}

impl SessionGateway {
    /// A gateway accepting sessions through `acceptor`.
    pub fn new(acceptor: Box<dyn Acceptor>, cfg: GatewayConfig) -> Self {
        SessionGateway {
            acceptor,
            cfg,
            sessions: RefCell::new(BTreeMap::new()),
            next_id: Cell::new(1),
            driver: Cell::new(None),
            events: RefCell::new(Vec::new()),
            salvaged: RefCell::new(Vec::new()),
            last_frame: RefCell::new(None),
            bytes_retired: Cell::new(0),
            attaches: Cell::new(0),
            detaches: Cell::new(0),
            sessions_peak: Cell::new(0),
            frames_skipped_status_only: Cell::new(0),
        }
    }

    /// Concurrent sessions right now.
    pub fn session_count(&self) -> usize {
        self.sessions.borrow().len()
    }

    /// Most sessions ever concurrent.
    pub fn sessions_peak(&self) -> u64 {
        self.sessions_peak.get()
    }

    /// Total attaches over the gateway's lifetime.
    pub fn attach_count(&self) -> u64 {
        self.attaches.get()
    }

    /// Total detaches over the gateway's lifetime.
    pub fn detach_count(&self) -> u64 {
        self.detaches.get()
    }

    /// The session currently holding the driver role, if any.
    pub fn driver_id(&self) -> Option<SessionId> {
        self.driver.get()
    }

    /// Image frames withheld from status-only (degraded) sessions.
    pub fn frames_skipped_status_only(&self) -> u64 {
        self.frames_skipped_status_only.get()
    }

    /// Drain pending session events (attach/detach/hand-off/degrade/
    /// rejection notices), for `StatusReport.problems`.
    pub fn take_events(&self) -> Vec<String> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Steering bytes sent across all sessions, past and present.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_retired.get()
            + self
                .sessions
                .borrow()
                .values()
                .map(|s| s.transport.bytes_sent())
                .sum::<u64>()
    }

    fn event(&self, msg: String) {
        self.events.borrow_mut().push(msg);
    }

    /// Remove `id`, salvaging decodable driver commands first, and hand
    /// the driver role off deterministically if the driver just left.
    fn detach(&self, id: SessionId, why: &str) {
        let Some(session) = self.sessions.borrow_mut().remove(&id) else {
            return;
        };
        let was_driver = session.role == Role::Driver;
        let mut salvaged = 0usize;
        if was_driver {
            // Same bug class as the single-client server: the driver's
            // last commands may still sit on the dying transport.
            while let Ok(Some(frame)) = session.transport.try_recv_frame() {
                if let Ok(cmd) = SteeringCommand::from_bytes(frame) {
                    self.salvaged.borrow_mut().push(cmd);
                    salvaged += 1;
                }
            }
        }
        self.bytes_retired
            .set(self.bytes_retired.get() + session.transport.bytes_sent());
        self.detaches.set(self.detaches.get() + 1);
        let mut msg = format!("{id} detached: {why}");
        if salvaged > 0 {
            msg.push_str(&format!(" (salvaged {salvaged} queued command(s))"));
        }
        self.event(msg);
        if self.driver.get() == Some(id) {
            self.driver.set(None);
            self.promote_driver(None);
        }
    }

    /// Give the driver role to the lowest-numbered session other than
    /// `exclude` (falling back to `exclude` itself if it is the only
    /// session left). Lowest-id promotion makes hand-off a pure
    /// function of the session set — deterministic and testable.
    fn promote_driver(&self, exclude: Option<SessionId>) {
        let mut sessions = self.sessions.borrow_mut();
        let chosen = sessions
            .keys()
            .find(|id| Some(**id) != exclude)
            .or_else(|| sessions.keys().next())
            .copied();
        if let Some(id) = chosen {
            if let Some(s) = sessions.get_mut(&id) {
                s.role = Role::Driver;
            }
            self.driver.set(Some(id));
            if let Some(prev) = exclude {
                if prev != id {
                    if let Some(s) = sessions.get_mut(&prev) {
                        s.role = Role::Observer;
                    }
                }
            }
            drop(sessions);
            self.event(format!("driver hand-off: {id} now drives"));
        }
    }

    /// Accept every client currently knocking.
    fn accept_pending(&self) {
        while let Ok(Some(transport)) = self.acceptor.try_accept() {
            if self.session_count() >= self.cfg.max_sessions {
                // Dropping the transport closes the connection.
                self.event(format!(
                    "session refused: at capacity ({})",
                    self.cfg.max_sessions
                ));
                continue;
            }
            let id = SessionId(self.next_id.get());
            self.next_id.set(id.0 + 1);
            let role = if self.driver.get().is_none() {
                Role::Driver
            } else {
                Role::Observer
            };
            // Catch-up: late joiners get the last broadcast frame
            // immediately instead of waiting out the vis cadence.
            if let Some(frame) = self.last_frame.borrow().clone() {
                if transport.try_send_frame(frame).is_err() {
                    self.event(format!("{id} died during attach"));
                    continue;
                }
            }
            self.sessions.borrow_mut().insert(
                id,
                Session {
                    role,
                    transport,
                    backlog_since: None,
                    status_only: false,
                },
            );
            if role == Role::Driver {
                self.driver.set(Some(id));
            }
            self.attaches.set(self.attaches.get() + 1);
            self.sessions_peak
                .set(self.sessions_peak.get().max(self.session_count() as u64));
            self.event(format!(
                "{id} attached as {}",
                match role {
                    Role::Driver => "driver",
                    Role::Observer => "observer",
                }
            ));
        }
    }

    /// Walk every session down the degradation ladder: opportunistic
    /// flush, then status-only past `degrade_queued_bytes`, then detach
    /// past `detach_queued_bytes` or the drain deadline.
    fn pump(&self) {
        let ids: Vec<SessionId> = self.sessions.borrow().keys().copied().collect();
        for id in ids {
            let verdict = {
                let mut sessions = self.sessions.borrow_mut();
                let Some(s) = sessions.get_mut(&id) else {
                    continue;
                };
                match s.transport.flush_pending() {
                    Err(e) => Err(e.to_string()),
                    Ok(0) => {
                        if s.backlog_since.take().is_some() && s.status_only {
                            s.status_only = false;
                            Ok(Some(format!("{id} recovered: backlog drained")))
                        } else {
                            Ok(None)
                        }
                    }
                    Ok(pending) => {
                        let since = *s.backlog_since.get_or_insert_with(Instant::now);
                        if pending > self.cfg.detach_queued_bytes
                            || since.elapsed() > self.cfg.drain_deadline
                        {
                            Err(format!(
                                "wedged: {pending} bytes backlogged for {:.1?}",
                                since.elapsed()
                            ))
                        } else if pending > self.cfg.degrade_queued_bytes && !s.status_only {
                            s.status_only = true;
                            Ok(Some(format!(
                                "{id} degraded to status-only ({pending} bytes backlogged)"
                            )))
                        } else {
                            Ok(None)
                        }
                    }
                }
            };
            match verdict {
                Ok(Some(msg)) => self.event(msg),
                Ok(None) => {}
                Err(why) => self.detach(id, &why),
            }
        }
    }

    fn command_name(cmd: &SteeringCommand) -> &'static str {
        match cmd {
            SteeringCommand::SetCamera { .. } => "SetCamera",
            SteeringCommand::SetField(_) => "SetField",
            SteeringCommand::SetVisRate(_) => "SetVisRate",
            SteeringCommand::SetRoi { .. } => "SetRoi",
            SteeringCommand::SetInletPressure { .. } => "SetInletPressure",
            SteeringCommand::Pause => "Pause",
            SteeringCommand::Resume => "Resume",
            SteeringCommand::RequestFrame => "RequestFrame",
            SteeringCommand::RequestObservables => "RequestObservables",
            SteeringCommand::SetAdaptiveLb(_) => "SetAdaptiveLb",
            SteeringCommand::Terminate => "Terminate",
            SteeringCommand::ReleaseDriver => "ReleaseDriver",
        }
    }

    /// Accept dials, drain every session's inbound queue, arbitrate
    /// roles, and pump the send queues. Returns the commands to apply —
    /// the driver's stream, in order (salvaged commands first).
    pub fn poll_commands(&self) -> Vec<SteeringCommand> {
        self.accept_pending();
        let mut out = std::mem::take(&mut *self.salvaged.borrow_mut());
        let ids: Vec<SessionId> = self.sessions.borrow().keys().copied().collect();
        for id in ids {
            loop {
                let polled = {
                    let sessions = self.sessions.borrow();
                    match sessions.get(&id) {
                        None => break,
                        Some(s) => s.transport.try_recv_frame(),
                    }
                };
                match polled {
                    Ok(None) => break,
                    Ok(Some(frame)) => match SteeringCommand::from_bytes(frame) {
                        Ok(cmd) => {
                            let is_driver = self.driver.get() == Some(id);
                            match (&cmd, is_driver) {
                                (SteeringCommand::ReleaseDriver, true) => {
                                    self.event(format!("{id} released the driver role"));
                                    self.promote_driver(Some(id));
                                }
                                (_, true) => out.push(cmd),
                                (_, false) => self.event(format!(
                                    "rejected {} from observer {id}: only the driver steers",
                                    Self::command_name(&cmd)
                                )),
                            }
                        }
                        Err(e) => {
                            self.detach(id, &format!("undecodable command: {e}"));
                            break;
                        }
                    },
                    Err(e) => {
                        self.detach(id, &e.to_string());
                        break;
                    }
                }
            }
        }
        self.pump();
        out
    }

    /// Broadcast an encoded [`ServerMessage`] to sessions, skipping
    /// image frames for status-only sessions when `is_image`. Send
    /// errors detach the session (terminal — never retry mid-frame).
    fn broadcast_bytes(&self, bytes: &Bytes, is_image: bool) {
        let ids: Vec<SessionId> = self.sessions.borrow().keys().copied().collect();
        for id in ids {
            let result = {
                let sessions = self.sessions.borrow();
                let Some(s) = sessions.get(&id) else { continue };
                if is_image && s.status_only {
                    self.frames_skipped_status_only
                        .set(self.frames_skipped_status_only.get() + 1);
                    continue;
                }
                s.transport.try_send_frame(bytes.clone())
            };
            if let Err(e) = result {
                self.detach(id, &e.to_string());
            }
        }
    }

    /// Broadcast a status report to every session (status-only sessions
    /// included — status is exactly what they still receive).
    pub fn broadcast_status(&self, status: StatusReport) {
        let bytes = ServerMessage::Status(status).to_bytes();
        self.broadcast_bytes(&bytes, false);
    }

    /// Broadcast an observable report to every session.
    pub fn broadcast_observables(&self, report: ObservableReport) {
        let bytes = ServerMessage::Observables(report).to_bytes();
        self.broadcast_bytes(&bytes, false);
    }

    /// Broadcast an already-encoded image message (dense or sparse) and
    /// remember it for late-joiner catch-up. Taking encoded bytes lets
    /// the closed loop encode once — cache hit or miss — and fan out N
    /// cheap sends.
    pub fn broadcast_frame_bytes(&self, bytes: Bytes) {
        self.broadcast_bytes(&bytes, true);
        *self.last_frame.borrow_mut() = Some(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ImageFrame;
    use crate::transport::{duplex_listener, InMemoryTransport};
    use crossbeam_channel::{unbounded, Receiver, Sender};
    use parking_lot::Mutex;

    fn small_cfg() -> GatewayConfig {
        GatewayConfig {
            max_sessions: 8,
            ..Default::default()
        }
    }

    fn status(step: u64) -> StatusReport {
        StatusReport {
            step,
            mass: 1.0,
            max_speed: 0.0,
            residual: 0.0,
            problems: vec![],
            eta_steps: 0,
            paused: false,
            rebalances: 0,
            lb_imbalance: 1.0,
            sessions: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    fn image_bytes(step: u64) -> Bytes {
        ServerMessage::Image(ImageFrame {
            step,
            width: 1,
            height: 1,
            rgb: vec![step as u8, 0, 0],
        })
        .to_bytes()
    }

    #[test]
    fn first_session_drives_listeners_observe() {
        let (connector, acceptor) = duplex_listener();
        let gw = SessionGateway::new(Box::new(acceptor), small_cfg());
        let driver = connector.connect().unwrap();
        let observer = connector.connect().unwrap();
        driver
            .send_frame(SteeringCommand::Pause.to_bytes())
            .unwrap();
        observer
            .send_frame(SteeringCommand::Resume.to_bytes())
            .unwrap();
        let cmds = gw.poll_commands();
        assert_eq!(cmds, vec![SteeringCommand::Pause]);
        assert_eq!(gw.driver_id(), Some(SessionId(1)));
        assert_eq!(gw.session_count(), 2);
        let events = gw.take_events();
        assert!(
            events.iter().any(|e| e.contains("rejected Resume")),
            "{events:?}"
        );
    }

    #[test]
    fn broadcast_reaches_every_session() {
        let (connector, acceptor) = duplex_listener();
        let gw = SessionGateway::new(Box::new(acceptor), small_cfg());
        let clients: Vec<InMemoryTransport> =
            (0..3).map(|_| connector.connect().unwrap()).collect();
        gw.poll_commands();
        assert_eq!(gw.session_count(), 3);
        gw.broadcast_status(status(7));
        gw.broadcast_frame_bytes(image_bytes(7));
        for c in &clients {
            let s = ServerMessage::from_bytes(c.recv_frame().unwrap()).unwrap();
            assert!(matches!(s, ServerMessage::Status(s) if s.step == 7));
            let img = ServerMessage::from_bytes(c.recv_frame().unwrap()).unwrap();
            assert!(matches!(img, ServerMessage::Image(i) if i.step == 7));
        }
        assert!(gw.bytes_sent() > 0);
    }

    #[test]
    fn driver_handoff_on_disconnect_is_deterministic() {
        let (connector, acceptor) = duplex_listener();
        let gw = SessionGateway::new(Box::new(acceptor), small_cfg());
        let c1 = connector.connect().unwrap();
        let _c2 = connector.connect().unwrap();
        let _c3 = connector.connect().unwrap();
        gw.poll_commands();
        assert_eq!(gw.driver_id(), Some(SessionId(1)));
        // Driver dies: the lowest remaining id (2) must take over.
        drop(c1);
        gw.poll_commands();
        gw.broadcast_status(status(1)); // a send notices the death too
        gw.poll_commands();
        assert_eq!(gw.driver_id(), Some(SessionId(2)));
        assert_eq!(gw.session_count(), 2);
        let events = gw.take_events();
        assert!(
            events
                .iter()
                .any(|e| e.contains("hand-off") && e.contains("session 2")),
            "{events:?}"
        );
    }

    #[test]
    fn explicit_release_hands_off_and_demotes() {
        let (connector, acceptor) = duplex_listener();
        let gw = SessionGateway::new(Box::new(acceptor), small_cfg());
        let c1 = connector.connect().unwrap();
        let c2 = connector.connect().unwrap();
        gw.poll_commands();
        c1.send_frame(SteeringCommand::ReleaseDriver.to_bytes())
            .unwrap();
        let cmds = gw.poll_commands();
        assert!(cmds.is_empty(), "release is arbitration, not steering");
        assert_eq!(gw.driver_id(), Some(SessionId(2)));
        // The old driver is now an observer: its commands are rejected,
        // the new driver's are applied.
        c1.send_frame(SteeringCommand::Pause.to_bytes()).unwrap();
        c2.send_frame(SteeringCommand::Resume.to_bytes()).unwrap();
        assert_eq!(gw.poll_commands(), vec![SteeringCommand::Resume]);
        // Sole-session release keeps them driving (someone must).
        drop(c1);
        gw.poll_commands();
        c2.send_frame(SteeringCommand::ReleaseDriver.to_bytes())
            .unwrap();
        gw.poll_commands();
        assert_eq!(gw.driver_id(), Some(SessionId(2)));
    }

    #[test]
    fn driver_commands_are_salvaged_at_detach() {
        let (connector, acceptor) = duplex_listener();
        let gw = SessionGateway::new(Box::new(acceptor), small_cfg());
        let c1 = connector.connect().unwrap();
        gw.poll_commands();
        c1.send_frame(SteeringCommand::Pause.to_bytes()).unwrap();
        drop(c1);
        // The loss is noticed on a send before the commands are polled.
        gw.broadcast_status(status(0));
        assert_eq!(gw.session_count(), 0);
        assert_eq!(gw.poll_commands(), vec![SteeringCommand::Pause]);
        assert!(gw.take_events().iter().any(|e| e.contains("salvaged 1")));
    }

    #[test]
    fn late_joiner_gets_the_last_frame_immediately() {
        let (connector, acceptor) = duplex_listener();
        let gw = SessionGateway::new(Box::new(acceptor), small_cfg());
        let _c1 = connector.connect().unwrap();
        gw.poll_commands();
        gw.broadcast_frame_bytes(image_bytes(42));
        let late = connector.connect().unwrap();
        gw.poll_commands();
        let msg = ServerMessage::from_bytes(late.recv_frame().unwrap()).unwrap();
        assert!(matches!(msg, ServerMessage::Image(i) if i.step == 42));
    }

    #[test]
    fn session_cap_refuses_extra_dials() {
        let (connector, acceptor) = duplex_listener();
        let gw = SessionGateway::new(
            Box::new(acceptor),
            GatewayConfig {
                max_sessions: 2,
                ..Default::default()
            },
        );
        let _a = connector.connect().unwrap();
        let _b = connector.connect().unwrap();
        let refused = connector.connect().unwrap();
        gw.poll_commands();
        assert_eq!(gw.session_count(), 2);
        assert!(gw.take_events().iter().any(|e| e.contains("refused")));
        // The refused client's transport is closed server-side.
        assert!(refused.try_recv_frame().is_err());
    }

    /// A transport whose send side wedges: try_send accepts frames into
    /// a fake backlog that never drains.
    struct WedgedTransport {
        pending: Mutex<u64>,
        sent: Mutex<u64>,
    }

    impl Transport for WedgedTransport {
        fn send_frame(&self, frame: Bytes) -> std::io::Result<()> {
            self.try_send_frame(frame)
        }
        fn try_recv_frame(&self) -> std::io::Result<Option<Bytes>> {
            Ok(None)
        }
        fn recv_frame(&self) -> std::io::Result<Bytes> {
            Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "wedged",
            ))
        }
        fn bytes_sent(&self) -> u64 {
            *self.sent.lock()
        }
        fn try_send_frame(&self, frame: Bytes) -> std::io::Result<()> {
            *self.sent.lock() += frame.len() as u64;
            *self.pending.lock() += frame.len() as u64;
            Ok(())
        }
        fn flush_pending(&self) -> std::io::Result<u64> {
            Ok(*self.pending.lock())
        }
        fn pending_bytes(&self) -> u64 {
            *self.pending.lock()
        }
    }

    /// An acceptor handing out arbitrary transports (to inject mocks).
    struct PushAcceptor {
        rx: Receiver<Box<dyn Transport>>,
    }

    fn push_acceptor() -> (Sender<Box<dyn Transport>>, PushAcceptor) {
        let (tx, rx) = unbounded();
        (tx, PushAcceptor { rx })
    }

    impl Acceptor for PushAcceptor {
        fn try_accept(&self) -> std::io::Result<Option<Box<dyn Transport>>> {
            Ok(self.rx.try_recv().ok())
        }
    }

    #[test]
    fn wedged_observer_degrades_to_status_only_then_detaches() {
        let (tx, acceptor) = push_acceptor();
        let gw = SessionGateway::new(
            Box::new(acceptor),
            GatewayConfig {
                degrade_queued_bytes: 64,
                detach_queued_bytes: 4096,
                drain_deadline: Duration::from_secs(3600),
                ..Default::default()
            },
        );
        assert!(tx
            .send(Box::new(WedgedTransport {
                pending: Mutex::new(0),
                sent: Mutex::new(0),
            }))
            .is_ok());
        gw.poll_commands();
        assert_eq!(gw.session_count(), 1);

        // Push past the degrade threshold: images stop, status flows.
        let big = Bytes::from(vec![0u8; 200]);
        gw.broadcast_frame_bytes(big.clone());
        gw.poll_commands();
        assert!(gw.take_events().iter().any(|e| e.contains("status-only")));
        assert_eq!(gw.session_count(), 1, "degraded, not detached");
        let skipped_before = gw.frames_skipped_status_only();
        gw.broadcast_frame_bytes(big.clone());
        assert_eq!(gw.frames_skipped_status_only(), skipped_before + 1);

        // Status still reaches it — until the backlog passes the detach
        // threshold (status frames keep accumulating on a wedge).
        for step in 0..200 {
            gw.broadcast_status(status(step));
            gw.poll_commands();
            if gw.session_count() == 0 {
                break;
            }
        }
        assert_eq!(gw.session_count(), 0, "wedged session finally detached");
        assert!(gw.take_events().iter().any(|e| e.contains("wedged")));
    }

    #[test]
    fn drain_deadline_detaches_a_stuck_backlog() {
        let (tx, acceptor) = push_acceptor();
        let gw = SessionGateway::new(
            Box::new(acceptor),
            GatewayConfig {
                degrade_queued_bytes: 1 << 30,
                detach_queued_bytes: 1 << 30,
                drain_deadline: Duration::from_millis(10),
                ..Default::default()
            },
        );
        assert!(tx
            .send(Box::new(WedgedTransport {
                pending: Mutex::new(0),
                sent: Mutex::new(0),
            }))
            .is_ok());
        gw.poll_commands();
        gw.broadcast_status(status(0));
        gw.poll_commands(); // backlog noticed; clock starts
        std::thread::sleep(Duration::from_millis(30));
        gw.poll_commands();
        assert_eq!(gw.session_count(), 0, "deadline detach");
    }

    #[test]
    fn frame_cache_is_fifo_with_counters() {
        let mut cache = FrameCache::new(2);
        let k = |step: u64| FrameKey::new(step, 1, None, 0, 2);
        assert_eq!(cache.lookup(k(1)), CacheLookup::Miss);
        cache.insert(k(1), Some(Bytes::from_static(b"one")));
        cache.insert(k(2), None);
        assert!(matches!(cache.lookup(k(1)), CacheLookup::Hit(Some(_))));
        assert!(matches!(cache.lookup(k(2)), CacheLookup::Hit(None)));
        // FIFO: inserting a third evicts key 1 even though it was the
        // most recently *used* (LRU would evict key 2 — and diverge
        // across ranks, because only the master sees payload hits).
        cache.insert(k(3), None);
        assert_eq!(cache.lookup(k(1)), CacheLookup::Miss);
        assert!(matches!(cache.lookup(k(2)), CacheLookup::Hit(None)));
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_cache_is_disabled() {
        let mut cache = FrameCache::new(0);
        let k = FrameKey::new(1, 2, None, 0, 3);
        cache.insert(k, None);
        assert_eq!(cache.lookup(k), CacheLookup::Miss);
        assert!(cache.is_empty());
    }

    #[test]
    fn frame_key_separates_views() {
        let roi = Some(([0u32; 3], [8u32, 8, 8]));
        let base = FrameKey::new(10, 111, roi, 1, 222);
        assert_eq!(base, FrameKey::new(10, 111, roi, 1, 222));
        assert_ne!(base, FrameKey::new(11, 111, roi, 1, 222), "step");
        assert_ne!(base, FrameKey::new(10, 112, roi, 1, 222), "camera");
        assert_ne!(base, FrameKey::new(10, 111, None, 1, 222), "roi");
        assert_ne!(base, FrameKey::new(10, 111, roi, 2, 222), "field");
        assert_ne!(base, FrameKey::new(10, 111, roi, 1, 223), "tf");
    }
}
