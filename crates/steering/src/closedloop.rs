//! Closing the loop (paper Fig. 2): pre-processing → simulation → in
//! situ post-processing → steering → simulation …
//!
//! [`run_closed_loop`] is the SPMD driver that couples a
//! [`DistSolver`] with the in situ renderer and the steering server.
//! Every cycle it
//!
//! 1. drains client commands at the master and **broadcasts** them, so
//!    every rank applies the identical command stream (steps 3–4 of the
//!    paper's §IV-C-1 loop);
//! 2. applies parameter changes (camera, field, vis-rate, ROI, inlet
//!    pressure — the "closing the loop" part);
//! 3. advances the solver unless paused;
//! 4. when a frame is due, renders each rank's own brick from its
//!    *local* snapshot, composites sort-last (steps 5–6), and the master
//!    ships the image plus a status report (consistency checks, ETA)
//!    back to the client.

use crate::adaptive::AdaptiveDriver;
use crate::error::{SteeringError, SteeringResult};
use crate::gateway::{CacheLookup, FrameCache, FrameKey, GatewayConfig, SessionGateway};
use crate::protocol::{
    FieldChoice, ImageFrame, ServerMessage, SparseImageFrame, StatusReport, SteeringCommand,
};
use crate::server::{ClientLossPolicy, SteeringServer, SteeringState};
use crate::transport::{Acceptor, Transport};
use bytes::Bytes;
use hemelb_core::boundary::IoletBc;
use hemelb_core::{DistSolver, FieldSnapshot, SolverConfig};
use hemelb_geometry::{SparseGeometry, Vec3};
use hemelb_insitu::camera::Camera;
use hemelb_insitu::compositing::{binary_swap, DeadlineCompositor};
use hemelb_insitu::transfer::TransferFunction;
use hemelb_insitu::volume::{render_brick_opts, Brick, RenderOptions};
use hemelb_parallel::{Communicator, Wire, WireReader, WireWriter};
use hemelb_partition::graph::{Connectivity, SiteGraph};
use hemelb_partition::visaware::{rebalance, synthetic_view_weights};
use hemelb_partition::AdaptiveLbConfig;
use std::sync::Arc;
use std::time::Duration;

/// Closed-loop run parameters.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Stop after this many simulation steps (unless terminated).
    pub max_steps: u64,
    /// Rendered image size.
    pub image: (u32, u32),
    /// Initial frames cadence (client can change it).
    pub initial_vis_rate: u32,
    /// Simulation steps between command polls.
    pub steps_per_cycle: u32,
    /// If true, a camera change triggers a visualisation-aware
    /// repartition (paper §IV-B: vis costs enter the balance equation
    /// and "the opportunity to adjust the partitioning mid-term is
    /// introduced").
    pub vis_aware_repartition: bool,
    /// If set, compositing waits at most this long per missing rank
    /// before shipping the frame without its contribution (reported as
    /// a degraded frame in [`StatusReport::problems`]). `None` keeps
    /// the fully synchronous binary-swap path.
    pub frame_deadline: Option<Duration>,
    /// What the master does when the steering client vanishes:
    /// terminate (default, the historical behaviour) or keep simulating
    /// headless until a new client attaches through the acceptor.
    pub on_client_loss: ClientLossPolicy,
    /// Measurement-driven adaptive load balancing: when set, an
    /// [`AdaptiveDriver`] closes each decision window of
    /// `adaptive_lb.window_steps` steps with measured per-rank costs and
    /// repartitions when the hysteresis *and* the cost/benefit gate
    /// agree. A steering client can toggle the running driver live with
    /// [`SteeringCommand::SetAdaptiveLb`]; the config default applies
    /// until the first such command.
    pub adaptive_lb: Option<AdaptiveLbConfig>,
    /// Multi-tenant mode: accept N concurrent sessions through the
    /// acceptor (one driver, any number of observers) with per-session
    /// send queues and a rendered-frame cache, instead of the single
    /// pre-connected client. Requires an [`Acceptor`] on the master.
    pub gateway: Option<GatewayConfig>,
    /// Gather the final fields to the master at the end of the run
    /// (collective). `ClosedLoopOutcome::final_fields` is then `Some`
    /// on the master — the bit-exactness hook for the gateway churn
    /// tests.
    pub gather_final_fields: bool,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            max_steps: 1000,
            image: (128, 96),
            initial_vis_rate: 50,
            steps_per_cycle: 10,
            vis_aware_repartition: false,
            frame_deadline: None,
            on_client_loss: ClientLossPolicy::Terminate,
            adaptive_lb: None,
            gateway: None,
            gather_final_fields: false,
        }
    }
}

/// What happened during a closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopOutcome {
    /// Simulation steps completed.
    pub steps_done: u64,
    /// Frames rendered and shipped.
    pub frames_rendered: u64,
    /// Steering commands applied (identical on every rank).
    pub commands_applied: u64,
    /// Whether the client requested termination.
    pub terminated_by_client: bool,
    /// Steering bytes sent to the client (master rank only, else 0).
    pub steering_bytes: u64,
    /// Mid-run repartitions performed.
    pub repartitions: u64,
    /// Sites this rank shipped away across all repartitions.
    pub sites_migrated: u64,
    /// Frames shipped with at least one rank's contribution missing
    /// because it blew the compositing deadline (master rank only).
    pub frames_degraded: u64,
    /// Due frames served from the rendered-frame cache instead of a
    /// fresh render (gateway mode; identical on every rank).
    pub frames_from_cache: u64,
    /// Frame-cache hits (identical on every rank — the key cache is
    /// replicated).
    pub cache_hits: u64,
    /// Frame-cache misses.
    pub cache_misses: u64,
    /// Frame-cache evictions.
    pub cache_evictions: u64,
    /// Most concurrent sessions observed (gateway mode, master only).
    pub sessions_peak: u64,
    /// Final fields gathered to the master when
    /// `ClosedLoopConfig::gather_final_fields` is set (master only).
    pub final_fields: Option<FieldSnapshot>,
}

/// The master's steering endpoint: the historical single-client server
/// or the multi-tenant session gateway.
enum Endpoint {
    Single(SteeringServer),
    Gateway(SessionGateway),
}

impl Endpoint {
    fn poll_commands(&self) -> Vec<SteeringCommand> {
        match self {
            Endpoint::Single(s) => s.poll_commands(),
            Endpoint::Gateway(g) => g.poll_commands(),
        }
    }
    /// Whether anyone is watching (drives the periodic-frame cadence).
    fn attached(&self) -> bool {
        match self {
            Endpoint::Single(s) => s.is_attached(),
            Endpoint::Gateway(g) => g.session_count() > 0,
        }
    }
    fn sessions(&self) -> u32 {
        match self {
            Endpoint::Single(s) => s.is_attached() as u32,
            Endpoint::Gateway(g) => g.session_count() as u32,
        }
    }
    fn take_events(&self) -> Vec<String> {
        match self {
            Endpoint::Single(s) => s.take_events(),
            Endpoint::Gateway(g) => g.take_events(),
        }
    }
    fn send_status(&self, status: StatusReport) {
        match self {
            Endpoint::Single(s) => s.send_status(status),
            Endpoint::Gateway(g) => g.broadcast_status(status),
        }
    }
    fn send_observables(&self, report: crate::protocol::ObservableReport) {
        match self {
            Endpoint::Single(s) => s.send_observables(report),
            Endpoint::Gateway(g) => g.broadcast_observables(report),
        }
    }
    fn bytes_sent(&self) -> u64 {
        match self {
            Endpoint::Single(s) => s.bytes_sent(),
            Endpoint::Gateway(g) => g.bytes_sent(),
        }
    }
}

/// Run the closed loop collectively. Rank 0 must pass the server-side
/// transport; other ranks pass `None`.
///
/// Each cycle's phases are recorded into the communicator's
/// observability recorder (`steer.poll`, `steer.broadcast`, `sim.step`,
/// `vis.render`, `vis.composite`, `steer.ship`), so
/// `Communicator::obs_report` — and the per-rank reports collected by
/// `run_spmd_opts` — break the steering round trip down by phase.
pub fn run_closed_loop(
    geo: Arc<SparseGeometry>,
    owner: Vec<usize>,
    solver_cfg: SolverConfig,
    comm: &Communicator,
    transport: Option<Box<dyn Transport>>,
    cfg: &ClosedLoopConfig,
) -> SteeringResult<ClosedLoopOutcome> {
    run_closed_loop_opts(geo, owner, solver_cfg, comm, transport, None, cfg)
}

/// [`run_closed_loop`] with an optional [`Acceptor`] on the master, so
/// the simulation can start (or continue) headless and let a steering
/// client attach mid-run — the graceful-degradation wiring of the fault
/// model. The master may then pass `transport: None`.
pub fn run_closed_loop_opts(
    geo: Arc<SparseGeometry>,
    owner: Vec<usize>,
    solver_cfg: SolverConfig,
    comm: &Communicator,
    transport: Option<Box<dyn Transport>>,
    acceptor: Option<Box<dyn Acceptor>>,
    cfg: &ClosedLoopConfig,
) -> SteeringResult<ClosedLoopOutcome> {
    if comm.is_master() {
        if transport.is_none() && acceptor.is_none() {
            return Err(SteeringError::Config(format!(
                "the master rank carries the steering transport or an acceptor \
                 (rank {} of {}, neither present)",
                comm.rank(),
                comm.size()
            )));
        }
        if cfg.gateway.is_some() && acceptor.is_none() {
            return Err(SteeringError::Config(
                "gateway mode needs an acceptor on the master: sessions attach \
                 by dialing, there is no single pre-connected client"
                    .into(),
            ));
        }
        if cfg.gateway.is_some() && transport.is_some() {
            return Err(SteeringError::Config(
                "gateway mode takes no pre-connected transport: \
                 let the client dial the acceptor instead"
                    .into(),
            ));
        }
    } else if transport.is_some() || acceptor.is_some() {
        return Err(SteeringError::Config(format!(
            "only the master rank carries steering endpoints \
             (rank {} of {} has one)",
            comm.rank(),
            comm.size()
        )));
    }
    let endpoint = if comm.is_master() {
        Some(match &cfg.gateway {
            Some(gcfg) => Endpoint::Gateway(SessionGateway::new(
                acceptor.expect("validated above"),
                gcfg.clone(),
            )),
            None => Endpoint::Single(SteeringServer::with_policy(
                transport,
                acceptor,
                cfg.on_client_loss,
            )),
        })
    } else {
        None
    };
    let mut state = SteeringState::new(geo.shape());
    state.vis_rate = cfg.initial_vis_rate.max(1);

    let mut solver = DistSolver::new(geo.clone(), owner, solver_cfg, comm)?;
    let mut local_positions: Vec<[u32; 3]> = solver
        .local_sites()
        .iter()
        .map(|&g| geo.position(g))
        .collect();

    let mut outcome = ClosedLoopOutcome {
        steps_done: 0,
        frames_rendered: 0,
        commands_applied: 0,
        terminated_by_client: false,
        steering_bytes: 0,
        repartitions: 0,
        sites_migrated: 0,
        frames_degraded: 0,
        frames_from_cache: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        sessions_peak: 0,
        final_fields: None,
    };
    let mut last_frame_step = 0u64;
    let mut prev_speed: Option<Vec<f64>> = None;
    let mut compositor = cfg.frame_deadline.map(|_| DeadlineCompositor::new());
    let mut adaptive = cfg.adaptive_lb.map(|c| AdaptiveDriver::new(&geo, c));
    let mut window_steps_done = 0u64;
    let mut loop_problems: Vec<String> = Vec::new();

    // Rendered-frame cache, gateway mode only. Every rank keeps an
    // identical *key* cache built from replicated state (the master
    // additionally stores the encoded payload), so all ranks agree on
    // hit vs miss without communicating — on a hit they all skip the
    // same render/composite collectives. Deadline compositing can
    // degrade a frame non-deterministically, so the cache is bypassed
    // whenever a frame deadline is configured: replaying a degraded
    // frame forever would be worse than re-rendering.
    let cache_entries = match (&cfg.gateway, cfg.frame_deadline) {
        (Some(g), None) => g.frame_cache_entries,
        _ => 0,
    };
    let mut frame_cache = FrameCache::new(cache_entries);
    let tf_family_hash = TransferFunction::heat(0.0, 1.0).family_hash();

    loop {
        // Step 3–4 of the paper's loop: client → master → all ranks.
        // The cycle broadcast carries the attachment flag alongside the
        // commands, so every rank agrees on whether periodic frames are
        // worth rendering (a headless run has nobody to show them to).
        let (commands, attached): (Vec<SteeringCommand>, bool) = if let Some(ep) = &endpoint {
            let span = comm.with_obs(|o| o.begin());
            let cmds = ep.poll_commands();
            comm.with_obs(|o| span.end(o, "steer.poll"));
            let attached = ep.attached();
            let span = comm.with_obs(|o| o.begin());
            let mut w = WireWriter::new();
            w.put_bool(attached);
            w.put_bytes(&cmds.to_bytes());
            comm.broadcast(0, Some(w.finish()))?;
            comm.with_obs(|o| span.end(o, "steer.broadcast"));
            (cmds, attached)
        } else {
            let span = comm.with_obs(|o| o.begin());
            let payload = comm.broadcast(0, None)?;
            comm.with_obs(|o| span.end(o, "steer.broadcast"));
            let mut r = WireReader::new(payload);
            let attached = r.get_bool()?;
            let cmds = Vec::<SteeringCommand>::from_bytes(r.get_bytes()?)?;
            (cmds, attached)
        };
        let mut camera_changed = false;
        for cmd in &commands {
            if matches!(cmd, SteeringCommand::SetCamera { .. }) {
                camera_changed = true;
            }
            state.apply(cmd);
            outcome.commands_applied += 1;
        }
        // §IV-B: when the view changes, the visualisation load moves —
        // rebalance the decomposition around the new camera and migrate
        // the affected sites' state, mid-run.
        if camera_changed && cfg.vis_aware_repartition && !state.terminate {
            let graph = SiteGraph::from_geometry(&geo, Connectivity::Six);
            let dir = [
                state.target[0] - state.eye[0],
                state.target[1] - state.eye[1],
                state.target[2] - state.eye[2],
            ];
            let norm = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2])
                .sqrt()
                .max(1e-12);
            let w2 =
                synthetic_view_weights(&graph, [dir[0] / norm, dir[1] / norm, dir[2] / norm], 0.3);
            let graph = graph.with_secondary_weights(w2);
            // The rebalance is fallible now; a degenerate input skips
            // the repartition (reported to the client) instead of
            // taking the whole run down. Every rank computes the same
            // verdict from the same replicated inputs, so the skip is
            // collectively consistent.
            match rebalance(&graph, solver.owner(), comm.size(), 0.10, 20) {
                Ok(out) => {
                    outcome.sites_migrated += solver.repartition(out.owner)? as u64;
                    outcome.repartitions += 1;
                    // The render path indexes by local site; refresh the
                    // cache.
                    local_positions = solver
                        .local_sites()
                        .iter()
                        .map(|&g| geo.position(g))
                        .collect();
                    prev_speed = None; // residual baseline is decomposition-local
                }
                Err(e) => {
                    loop_problems.push(format!("view-aware repartition skipped: {e}"));
                }
            }
        }
        if state.terminate {
            outcome.terminated_by_client = true;
        }
        for (id, rho) in state.take_pressure_changes() {
            solver.set_inlet_bc(id as usize, IoletBc::Pressure { rho });
        }

        // Advance the simulation.
        if !state.paused && !state.terminate {
            let remaining = cfg.max_steps.saturating_sub(outcome.steps_done);
            let burst = (cfg.steps_per_cycle as u64).min(remaining);
            let span = comm.with_obs(|o| o.begin());
            solver.step_n(burst)?;
            comm.with_obs(|o| span.end(o, "sim.step"));
            outcome.steps_done += burst;
            window_steps_done += burst;
        }

        // Measurement-driven adaptive load balancing: close the
        // decision window once enough steps have accumulated. The live
        // toggle arrives through the replicated command stream
        // (`SetAdaptiveLb`), so every rank agrees on whether the
        // collective window exchange happens.
        if let Some(driver) = adaptive.as_mut() {
            let enabled = state.adaptive_lb_override.unwrap_or(true);
            if enabled && window_steps_done >= driver.config().window_steps && !state.terminate {
                let remaining = cfg.max_steps.saturating_sub(outcome.steps_done);
                let decision =
                    driver.end_window(comm, &mut solver, window_steps_done, remaining)?;
                window_steps_done = 0;
                if decision.applied {
                    outcome.repartitions += 1;
                    outcome.sites_migrated += decision.sites_moved_local as u64;
                    // The render path indexes by local site; refresh.
                    local_positions = solver
                        .local_sites()
                        .iter()
                        .map(|&g| geo.position(g))
                        .collect();
                    prev_speed = None;
                }
            }
        }

        // In situ observable extraction over the ROI (collective
        // reductions; no field data leaves the ranks).
        if state.observables_requested {
            state.observables_requested = false;
            let snap = solver.local_snapshot();
            let in_roi = |p: &[u32; 3]| match state.roi {
                None => true,
                Some((lo, hi)) => (0..3).all(|a| p[a] >= lo[a] && p[a] < hi[a]),
            };
            let mut sites = 0u64;
            let mut sum_rho = 0.0f64;
            let mut sum_speed = 0.0f64;
            let mut max_speed = 0.0f64;
            let mut max_wss = 0.0f64;
            let nu = solver.config().viscosity();
            for (i, p) in local_positions.iter().enumerate() {
                if !in_roi(p) {
                    continue;
                }
                sites += 1;
                sum_rho += snap.rho[i];
                let sp = snap.speed(i);
                sum_speed += sp;
                max_speed = max_speed.max(sp);
                if geo.kind(solver.local_sites()[i]) == hemelb_geometry::SiteKind::Wall {
                    max_wss = max_wss.max(snap.rho[i] * nu * snap.shear[i]);
                }
            }
            let sums =
                comm.all_reduce_f64_vec(vec![sites as f64, sum_rho, sum_speed], |a, b| a + b)?;
            let maxes = comm.all_reduce_f64_vec(vec![max_speed, max_wss], f64::max)?;
            if let Some(ep) = &endpoint {
                let n = sums[0].max(1.0);
                ep.send_observables(crate::protocol::ObservableReport {
                    step: outcome.steps_done,
                    sites: sums[0] as u64,
                    mean_density: sums[1] / n,
                    mean_speed: sums[2] / n,
                    max_speed: maxes[0],
                    max_wss: maxes[1],
                    roi: state.roi,
                });
            }
        }

        // Steps 5–6: render and return the image when due. Periodic
        // frames only matter while a client is watching; explicit
        // requests are honoured regardless (they were queued before the
        // client vanished).
        let due = state.frame_requested
            || (attached
                && !state.paused
                && outcome.steps_done >= last_frame_step + state.vis_rate as u64);
        if due {
            state.frame_requested = false;
            last_frame_step = outcome.steps_done;
            let snap = solver.local_snapshot();

            let cam = Camera {
                eye: Vec3::from(state.eye),
                target: Vec3::from(state.target),
                up: Vec3::from(state.up),
                fov_y: state.fov_y,
                width: cfg.image.0,
                height: cfg.image.1,
            };
            // The frame key is a pure function of replicated steering
            // state, so every rank computes the same key and the same
            // hit/miss verdict without communicating. The data-derived
            // transfer range is NOT in the key — it is itself a pure
            // function of (step, field, ROI), which the key pins.
            let field_tag = match state.field {
                FieldChoice::Density => 0u8,
                FieldChoice::Speed => 1,
                FieldChoice::Shear => 2,
            };
            let key = FrameKey::new(
                outcome.steps_done,
                cam.content_hash(),
                state.roi,
                field_tag,
                tf_family_hash,
            );
            let lookup = if cache_entries > 0 {
                frame_cache.lookup(key)
            } else {
                CacheLookup::Miss
            };

            // What the master ships: a dense frame (single-client mode)
            // or pre-encoded broadcast bytes (gateway mode).
            let mut dense_image: Option<ImageFrame> = None;
            let mut frame_bytes: Option<Bytes> = None;
            let mut dropped_ranks = Vec::new();
            match lookup {
                CacheLookup::Hit(payload) => {
                    // All ranks skip the same three collectives (range
                    // reduce, render, composite); the master replays the
                    // cached encode. One render, one encode, N sends.
                    frame_bytes = payload;
                    outcome.frames_from_cache += 1;
                    comm.with_obs(|o| o.count("vis.cache.hit", 1));
                }
                CacheLookup::Miss => {
                    if cache_entries > 0 {
                        comm.with_obs(|o| o.count("vis.cache.miss", 1));
                    }
                    let values: Vec<f64> = (0..snap.len())
                        .map(|i| match state.field {
                            FieldChoice::Density => snap.rho[i],
                            FieldChoice::Speed => snap.speed(i),
                            FieldChoice::Shear => snap.shear[i],
                        })
                        .collect();
                    // ROI restriction, if any.
                    let (points, values): (Vec<[u32; 3]>, Vec<f64>) = match state.roi {
                        None => (local_positions.clone(), values),
                        Some((lo, hi)) => local_positions
                            .iter()
                            .zip(&values)
                            .filter(|(p, _)| (0..3).all(|a| p[a] >= lo[a] && p[a] < hi[a]))
                            .map(|(p, v)| (*p, *v))
                            .unzip(),
                    };

                    // A consistent transfer-function range needs the
                    // *global* min/max of the displayed values.
                    let local_min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                    let local_max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let global = comm.all_reduce_f64_vec(vec![-local_min, local_max], f64::max)?;
                    let (lo_v, hi_v) = (-global[0], global[1]);
                    let tf = TransferFunction::heat(lo_v, hi_v.max(lo_v + 1e-9));

                    let span = comm.with_obs(|o| o.begin());
                    let partial = match Brick::from_points(&points, &values) {
                        Some(brick) => {
                            let (partial, st) = render_brick_opts(
                                &brick,
                                &cam,
                                &tf,
                                0.5,
                                &RenderOptions::default(),
                            );
                            comm.with_obs(|o| {
                                o.count("vis.render.samples_shaded", st.samples_shaded);
                                o.count("vis.render.samples_skipped", st.samples_skipped);
                            });
                            partial
                        }
                        None => hemelb_insitu::image::PartialImage::new(cam.width, cam.height),
                    };
                    comm.with_obs(|o| span.end(o, "vis.render"));
                    let span = comm.with_obs(|o| o.begin());
                    let (composited, dropped) = match (&mut compositor, cfg.frame_deadline) {
                        (Some(dc), Some(deadline)) => {
                            let out = dc.composite(comm, partial, deadline)?;
                            (out.image, out.dropped)
                        }
                        _ => (binary_swap(comm, partial)?, Vec::new()),
                    };
                    comm.with_obs(|o| span.end(o, "vis.composite"));
                    dropped_ranks = dropped;
                    if !dropped_ranks.is_empty() {
                        outcome.frames_degraded += 1;
                    }

                    if let Some(image) = composited {
                        let img = ImageFrame {
                            step: outcome.steps_done,
                            width: image.width,
                            height: image.height,
                            rgb: image.to_rgb8(),
                        };
                        match &endpoint {
                            Some(Endpoint::Gateway(_)) => {
                                // Encode once (sparse run-length against
                                // the white background, or dense); the
                                // gateway fans the same bytes out to
                                // every session and the cache replays
                                // them on later hits.
                                let sparse = cfg.gateway.as_ref().is_none_or(|g| g.sparse_frames);
                                let msg = if sparse {
                                    ServerMessage::ImageSparse(SparseImageFrame::from_dense(
                                        &img,
                                        [255, 255, 255],
                                    ))
                                } else {
                                    ServerMessage::Image(img)
                                };
                                frame_bytes = Some(msg.to_bytes());
                            }
                            _ => dense_image = Some(img),
                        }
                    }
                    if cache_entries > 0 {
                        // Collective insert: every rank records the key
                        // (FIFO order is the replicated insertion
                        // order); only the master holds payload bytes.
                        let evictions_before = frame_cache.evictions();
                        frame_cache.insert(key, frame_bytes.clone());
                        let evicted = frame_cache.evictions() - evictions_before;
                        if evicted > 0 {
                            comm.with_obs(|o| o.count("vis.cache.evict", evicted));
                        }
                    }
                    outcome.frames_rendered += 1;
                }
            }

            // Status: global consistency monitors. These collectives
            // run on every due frame, cache hit or miss — status must
            // stay live even when the pixels are replayed.
            let mass = solver.mass()?;
            let speeds: Vec<f64> = (0..snap.len()).map(|i| snap.speed(i)).collect();
            let local_max_speed = speeds.iter().cloned().fold(0.0, f64::max);
            let max_speed = comm.all_reduce_f64(local_max_speed, f64::max)?;
            let residual = match &prev_speed {
                None => 0.0,
                Some(prev) => {
                    let local: f64 = speeds
                        .iter()
                        .zip(prev)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    let stats =
                        comm.all_reduce_f64_vec(vec![local, speeds.len() as f64], |a, b| a + b)?;
                    (stats[0] / stats[1].max(1.0)).sqrt()
                }
            };
            prev_speed = Some(speeds);

            // Drained on every rank (the command stream is replicated,
            // so the queue is identical everywhere); reported by the
            // master as part of the status problems.
            let rejections = state.take_rejections();
            let loop_notes = std::mem::take(&mut loop_problems);
            if let Some(ep) = &endpoint {
                let span = comm.with_obs(|o| o.begin());
                let mut problems = snap.validity_report();
                problems.extend(rejections);
                problems.extend(loop_notes);
                if !dropped_ranks.is_empty() {
                    problems.push(format!(
                        "degraded frame: compositing deadline dropped ranks {dropped_ranks:?}"
                    ));
                }
                problems.extend(ep.take_events());
                ep.send_status(StatusReport {
                    step: outcome.steps_done,
                    mass,
                    max_speed,
                    residual,
                    problems,
                    eta_steps: cfg.max_steps.saturating_sub(outcome.steps_done),
                    paused: state.paused,
                    rebalances: outcome.repartitions,
                    lb_imbalance: adaptive.as_ref().map_or(1.0, |d| d.last_imbalance()),
                    sessions: ep.sessions(),
                    cache_hits: frame_cache.hits(),
                    cache_misses: frame_cache.misses(),
                });
                match ep {
                    Endpoint::Single(server) => {
                        if let Some(img) = dense_image {
                            server.send_image(img);
                        }
                    }
                    Endpoint::Gateway(gw) => {
                        if let Some(bytes) = frame_bytes {
                            gw.broadcast_frame_bytes(bytes);
                        }
                    }
                }
                comm.with_obs(|o| span.end(o, "steer.ship"));
            }
        }

        if state.terminate || outcome.steps_done >= cfg.max_steps {
            break;
        }
    }

    if let Some(ep) = &endpoint {
        outcome.steering_bytes = ep.bytes_sent();
        if let Endpoint::Gateway(gw) = ep {
            outcome.sessions_peak = gw.sessions_peak();
        }
    }
    outcome.cache_hits = frame_cache.hits();
    outcome.cache_misses = frame_cache.misses();
    outcome.cache_evictions = frame_cache.evictions();
    if cfg.gather_final_fields {
        // Collective: cfg is replicated, so every rank takes this path.
        outcome.final_fields = solver.gather_snapshot()?;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SteeringClient;
    use crate::transport::duplex_pair;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::run_spmd;
    use parking_lot::Mutex;

    fn demo_geo() -> Arc<SparseGeometry> {
        Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0))
    }

    fn slab_owner(geo: &SparseGeometry, p: usize) -> Vec<usize> {
        (0..geo.fluid_count() as u32)
            .map(|s| (geo.position(s)[0] as usize * p / geo.shape()[0]).min(p - 1))
            .collect()
    }

    #[test]
    fn loop_runs_to_max_steps_without_a_client_command() {
        let geo = demo_geo();
        let (client_end, server_end) = duplex_pair();
        let _client = SteeringClient::new(Box::new(client_end));
        let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));
        let geo2 = geo.clone();
        let results = run_spmd(2, move |comm| {
            let transport = if comm.is_master() {
                server_slot.lock().take()
            } else {
                None
            };
            run_closed_loop(
                geo2.clone(),
                slab_owner(&geo2, comm.size()),
                SolverConfig::pressure_driven(1.005, 0.995),
                comm,
                transport,
                &ClosedLoopConfig {
                    max_steps: 60,
                    image: (32, 24),
                    initial_vis_rate: 20,
                    steps_per_cycle: 10,
                    vis_aware_repartition: false,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        for r in &results {
            assert_eq!(r.steps_done, 60);
            assert_eq!(r.frames_rendered, 3, "frames at steps 20, 40, 60");
            assert!(!r.terminated_by_client);
        }
        assert!(results[0].steering_bytes > 0, "images were shipped");
    }

    #[test]
    fn roi_observables_reflect_the_subset() {
        let geo = demo_geo();
        let shape = geo.shape();
        let (client_end, server_end) = duplex_pair();
        let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));
        let geo2 = geo.clone();

        let hi = [shape[0] as u32, shape[1] as u32, shape[2] as u32];
        let client_thread = std::thread::spawn(move || {
            let client = SteeringClient::new(Box::new(client_end));
            // Let the flow develop: each frame round trip paces at least
            // one cycle of simulation steps.
            loop {
                let (img, _) = client.request_frame().unwrap();
                if img.step >= 100 {
                    break;
                }
            }
            // Freeze the flow so both measurements see the same state.
            client.send(&SteeringCommand::Pause).unwrap();
            // Whole-domain observables first.
            let (whole, _) = client.request_observables().unwrap();
            // Then restrict to the inlet half.
            client
                .send(&SteeringCommand::SetRoi {
                    lo: [0, 0, 0],
                    hi: [hi[0] / 2, hi[1], hi[2]],
                })
                .unwrap();
            let (half, _) = client.request_observables().unwrap();
            client.send(&SteeringCommand::Terminate).unwrap();
            while client.recv().is_ok() {}
            (whole, half)
        });

        run_spmd(2, move |comm| {
            let transport = if comm.is_master() {
                server_slot.lock().take()
            } else {
                None
            };
            run_closed_loop(
                geo2.clone(),
                slab_owner(&geo2, comm.size()),
                SolverConfig::pressure_driven(1.01, 0.99),
                comm,
                transport,
                &ClosedLoopConfig {
                    max_steps: u64::MAX / 2,
                    image: (16, 12),
                    initial_vis_rate: u32::MAX,
                    steps_per_cycle: 10,
                    vis_aware_repartition: false,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        let (whole, half) = client_thread.join().unwrap();
        assert_eq!(whole.sites as usize, geo.fluid_count());
        assert!(half.sites > 0 && half.sites < whole.sites);
        assert!(half.roi.is_some());
        // The inlet half sits at higher pressure than the domain mean in
        // a pressure-driven flow.
        assert!(
            half.mean_density > whole.mean_density,
            "inlet half {} !> whole {}",
            half.mean_density,
            whole.mean_density
        );
        // Paused: the subset maximum cannot exceed the global maximum.
        assert!(whole.max_speed >= half.max_speed);
        assert_eq!(whole.step, half.step, "both measured on the same state");
    }

    #[test]
    fn camera_change_triggers_repartition_without_touching_physics() {
        let geo = demo_geo();
        let (client_end, server_end) = duplex_pair();
        let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));
        let geo2 = geo.clone();

        let client_thread = std::thread::spawn(move || {
            let client = SteeringClient::new(Box::new(client_end));
            // Run a while, then orbit the camera (→ repartition), then
            // keep running and terminate.
            loop {
                let (img, _) = client.request_frame().unwrap();
                if img.step >= 30 {
                    break;
                }
            }
            client
                .send(&SteeringCommand::SetCamera {
                    eye: [50.0, 8.0, 8.0],
                    target: [8.0, 8.0, 8.0],
                    up: [0.0, 0.0, 1.0],
                    fov_y: 0.8,
                })
                .unwrap();
            loop {
                let (img, _) = client.request_frame().unwrap();
                if img.step >= 60 {
                    break;
                }
            }
            client.send(&SteeringCommand::Terminate).unwrap();
            while client.recv().is_ok() {}
        });

        let results = run_spmd(3, move |comm| {
            let transport = if comm.is_master() {
                server_slot.lock().take()
            } else {
                None
            };
            run_closed_loop(
                geo2.clone(),
                slab_owner(&geo2, comm.size()),
                SolverConfig::pressure_driven(1.01, 0.99),
                comm,
                transport,
                &ClosedLoopConfig {
                    max_steps: u64::MAX / 2,
                    image: (16, 12),
                    initial_vis_rate: u32::MAX,
                    steps_per_cycle: 10,
                    vis_aware_repartition: true,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        client_thread.join().unwrap();
        let steps = results[0].steps_done;
        for r in &results {
            assert_eq!(r.repartitions, 1, "one camera change, one repartition");
        }
        let migrated: u64 = results.iter().map(|r| r.sites_migrated).sum();
        assert!(migrated > 0, "the rebalance must move something");

        // Physics check: the same number of steps without any steering
        // gives the same fields (bitwise) despite the migration.
        let geo3 = geo.clone();
        let reference = {
            let mut s =
                hemelb_core::Solver::new(geo3.clone(), SolverConfig::pressure_driven(1.01, 0.99));
            s.step_n(steps);
            s.snapshot()
        };
        // Re-run the steered scenario deterministically? The command
        // timing is racy, so instead verify directly: a distributed run
        // with an explicit mid-run repartition matches serial (covered
        // bit-exactly in hemelb-core). Here assert plausibility only.
        assert!(reference.validity_report().is_empty());
    }

    #[test]
    fn rejected_roi_reaches_the_client_and_phases_are_recorded() {
        let geo = demo_geo();
        let (client_end, server_end) = duplex_pair();
        let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));
        let geo2 = geo.clone();

        let client_thread = std::thread::spawn(move || {
            let client = SteeringClient::new(Box::new(client_end));
            // Inverted on x: must be rejected, not applied.
            client
                .send(&SteeringCommand::SetRoi {
                    lo: [9, 0, 0],
                    hi: [3, 16, 16],
                })
                .unwrap();
            let mut rejection = None;
            while rejection.is_none() {
                client.send(&SteeringCommand::RequestFrame).unwrap();
                let (_, statuses) = client.wait_for_image().unwrap();
                rejection = statuses
                    .iter()
                    .flat_map(|s| &s.problems)
                    .find(|p| p.contains("rejected ROI"))
                    .cloned();
            }
            // One timed round so the steer.rtt phase is populated.
            client.request_frame().unwrap();
            client.send(&SteeringCommand::Terminate).unwrap();
            while client.recv().is_ok() {}
            (rejection.unwrap(), client.obs_report())
        });

        let results = run_spmd(2, move |comm| {
            let transport = if comm.is_master() {
                server_slot.lock().take()
            } else {
                None
            };
            let outcome = run_closed_loop(
                geo2.clone(),
                slab_owner(&geo2, comm.size()),
                SolverConfig::pressure_driven(1.005, 0.995),
                comm,
                transport,
                &ClosedLoopConfig {
                    max_steps: u64::MAX / 2,
                    image: (16, 12),
                    initial_vis_rate: u32::MAX,
                    steps_per_cycle: 5,
                    vis_aware_repartition: false,
                    ..Default::default()
                },
            )
            .unwrap();
            (outcome, comm.obs_report())
        });

        let (rejection, client_report) = client_thread.join().unwrap();
        assert!(rejection.contains("domain"), "{rejection}");
        // The client measured at least one full round trip.
        let rtt = &client_report.phases["steer.rtt"];
        assert!(rtt.calls >= 1);
        assert!(rtt.total_secs > 0.0);
        assert!(rtt.hist.p50() > 0.0);
        // Every rank recorded the loop phases; only the master polls
        // the transport and ships frames.
        for (i, (outcome, report)) in results.iter().enumerate() {
            assert!(outcome.terminated_by_client);
            for phase in ["steer.broadcast", "sim.step", "vis.render", "vis.composite"] {
                let p = report
                    .phases
                    .get(phase)
                    .unwrap_or_else(|| panic!("rank {i} missing {phase}"));
                assert!(p.calls >= 1);
            }
        }
        assert!(results[0].1.phases.contains_key("steer.poll"));
        assert!(results[0].1.phases.contains_key("steer.ship"));
        assert!(!results[1].1.phases.contains_key("steer.poll"));
    }

    #[test]
    fn client_loss_goes_headless_and_a_new_client_reattaches() {
        use crate::server::ClientLossPolicy;
        use crate::transport::duplex_listener;
        let geo = demo_geo();
        let geo2 = geo.clone();
        let (connector, acceptor) = duplex_listener();
        let acceptor_slot = Arc::new(Mutex::new(Some(
            Box::new(acceptor) as Box<dyn crate::transport::Acceptor>
        )));

        let client_thread = std::thread::spawn(move || {
            // First client: steer a little, then vanish without a
            // Terminate — under the headless policy the run survives.
            let c1 = SteeringClient::new(Box::new(connector.connect().unwrap()));
            let (img, _) = c1.request_frame().unwrap();
            assert!(img.step >= 1);
            drop(c1);
            // Second client attaches to the same run, later in time.
            let c2 = SteeringClient::new(Box::new(connector.connect().unwrap()));
            let (img2, _) = c2.request_frame().unwrap();
            assert!(img2.step > img.step, "the run kept going headless");
            c2.send(&SteeringCommand::Terminate).unwrap();
            while c2.recv().is_ok() {}
        });

        let results = run_spmd(2, move |comm| {
            let acceptor = if comm.is_master() {
                acceptor_slot.lock().take()
            } else {
                None
            };
            run_closed_loop_opts(
                geo2.clone(),
                slab_owner(&geo2, comm.size()),
                SolverConfig::pressure_driven(1.005, 0.995),
                comm,
                None,
                acceptor,
                &ClosedLoopConfig {
                    max_steps: u64::MAX / 2,
                    image: (16, 12),
                    initial_vis_rate: u32::MAX,
                    steps_per_cycle: 5,
                    on_client_loss: ClientLossPolicy::Headless,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        client_thread.join().unwrap();
        for r in &results {
            assert!(r.terminated_by_client, "second client's Terminate landed");
            assert!(r.frames_rendered >= 2);
        }
    }

    #[test]
    fn adaptive_lb_rebalances_a_skewed_start_and_reports_it() {
        let geo = demo_geo();
        let (client_end, server_end) = duplex_pair();
        let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));
        let geo2 = geo.clone();

        let client_thread = std::thread::spawn(move || {
            let client = SteeringClient::new(Box::new(client_end));
            // Let the adaptive windows run, then switch the balancer
            // off live and run some more; finally terminate.
            let mut toggled = false;
            let mut reports = Vec::new();
            loop {
                client.send(&SteeringCommand::RequestFrame).unwrap();
                let (img, statuses) = client.wait_for_image().unwrap();
                reports.extend(statuses);
                if img.step >= 120 && !toggled {
                    toggled = true;
                    client.send(&SteeringCommand::SetAdaptiveLb(false)).unwrap();
                }
                if img.step >= 200 {
                    break;
                }
            }
            client.send(&SteeringCommand::Terminate).unwrap();
            while client.recv().is_ok() {}
            reports
        });

        let results = run_spmd(3, move |comm| {
            let transport = if comm.is_master() {
                server_slot.lock().take()
            } else {
                None
            };
            // Deliberately skewed: rank 0 starts with 75% of the sites.
            let n = geo2.fluid_count();
            let heavy = n * 3 / 4;
            let p = comm.size();
            let owner: Vec<usize> = (0..n)
                .map(|s| {
                    if s < heavy {
                        0
                    } else {
                        (1 + (s - heavy) * (p - 1) / (n - heavy)).min(p - 1)
                    }
                })
                .collect();
            run_closed_loop(
                geo2.clone(),
                owner,
                SolverConfig::pressure_driven(1.01, 0.99),
                comm,
                transport,
                &ClosedLoopConfig {
                    max_steps: u64::MAX / 2,
                    image: (16, 12),
                    initial_vis_rate: 20,
                    steps_per_cycle: 10,
                    adaptive_lb: Some(hemelb_partition::AdaptiveLbConfig {
                        window_steps: 20,
                        threshold: 1.1,
                        hysteresis_windows: 1,
                        min_payoff: 0.0,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
            )
            .unwrap()
        });
        let reports = client_thread.join().unwrap();
        for r in &results {
            assert_eq!(
                r.repartitions, results[0].repartitions,
                "the adaptive decision is collective"
            );
            assert!(
                r.repartitions >= 1,
                "a 75% skew with an open gate must rebalance at least once"
            );
        }
        assert!(
            results.iter().map(|r| r.sites_migrated).sum::<u64>() > 0,
            "the rebalance must move sites"
        );
        // The status stream carries the adaptive surface.
        let last = reports.last().expect("status reports shipped");
        assert_eq!(last.rebalances, results[0].repartitions);
        assert!(last.lb_imbalance >= 1.0);
    }

    #[test]
    fn missing_transport_on_the_master_is_an_error_not_a_panic() {
        let geo = demo_geo();
        let geo2 = geo.clone();
        let results = run_spmd(2, move |comm| {
            // Nobody carries a transport: the master must refuse the
            // wiring; the other rank then sees the collective fail.
            run_closed_loop(
                geo2.clone(),
                slab_owner(&geo2, comm.size()),
                SolverConfig::pressure_driven(1.005, 0.995),
                comm,
                None,
                &ClosedLoopConfig {
                    max_steps: 20,
                    image: (8, 6),
                    initial_vis_rate: 10,
                    steps_per_cycle: 5,
                    vis_aware_repartition: false,
                    ..Default::default()
                },
            )
            .err()
            .map(|e| e.to_string())
        });
        let master_err = results[0].as_ref().expect("master must error");
        assert!(master_err.contains("master rank"), "{master_err}");
        assert!(results[1].is_some(), "the worker cannot finish alone");
    }

    #[test]
    fn client_steers_and_terminates() {
        let geo = demo_geo();
        let (client_end, server_end) = duplex_pair();
        let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));
        let geo2 = geo.clone();

        let client_thread = std::thread::spawn(move || {
            let client = SteeringClient::new(Box::new(client_end));
            // Steps 2–3 of the loop: connect + send vis parameters.
            client
                .send(&SteeringCommand::SetVisRate(1_000_000))
                .unwrap();
            client
                .send(&SteeringCommand::SetField(
                    crate::protocol::FieldChoice::Density,
                ))
                .unwrap();
            // Ask for a frame explicitly and wait for it (steps 4–6).
            let (img, rtt) = client.request_frame().unwrap();
            assert_eq!(img.width, 32);
            assert_eq!(img.rgb.len(), 32 * 24 * 3);
            assert!(rtt.as_secs() < 60);
            // Steer a parameter, then stop the run.
            client
                .send(&SteeringCommand::SetInletPressure { id: 0, rho: 1.02 })
                .unwrap();
            client.send(&SteeringCommand::Terminate).unwrap();
            // Drain whatever else arrives until the server goes away.
            while client.recv().is_ok() {}
            img
        });

        let results = run_spmd(2, move |comm| {
            let transport = if comm.is_master() {
                server_slot.lock().take()
            } else {
                None
            };
            run_closed_loop(
                geo2.clone(),
                slab_owner(&geo2, comm.size()),
                SolverConfig::pressure_driven(1.005, 0.995),
                comm,
                transport,
                &ClosedLoopConfig {
                    max_steps: 1_000_000, // only the client stops this run
                    image: (32, 24),
                    initial_vis_rate: 1_000_000,
                    steps_per_cycle: 5,
                    vis_aware_repartition: false,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        let img = client_thread.join().unwrap();
        // The vessel must actually be visible in the returned frame.
        let non_white = img
            .rgb
            .chunks(3)
            .filter(|c| c[0] != 255 || c[1] != 255 || c[2] != 255)
            .count();
        assert!(non_white > 10, "frame should show the vessel: {non_white}");
        for r in &results {
            assert!(r.terminated_by_client, "client sent Terminate");
            assert!(r.frames_rendered >= 1);
            assert!(r.commands_applied >= 5);
        }
    }

    #[test]
    fn gateway_mode_broadcasts_to_observers_and_caches_repeated_views() {
        use crate::gateway::GatewayConfig;
        use crate::transport::{duplex_listener, Acceptor};

        let geo = demo_geo();
        let (connector, acceptor) = duplex_listener();
        let acceptor_slot = Arc::new(Mutex::new(Some(Box::new(acceptor) as Box<dyn Acceptor>)));
        let geo2 = geo.clone();

        let driver_conn = connector.clone();
        let obs_conn = connector;
        let client_thread = std::thread::spawn(move || {
            // First to attach becomes the driver.
            let driver = SteeringClient::new(Box::new(driver_conn.connect().unwrap()));
            let (first, _) = driver.request_frame().unwrap();

            // An observer attaches mid-run and only watches: it sends
            // nothing, yet receives every broadcast frame (densified
            // from the sparse wire encoding by the client).
            let observer = std::thread::spawn(move || {
                let client = SteeringClient::new(Box::new(obs_conn.connect().unwrap()));
                let mut images = 0u64;
                while let Ok(msg) = client.recv() {
                    if let crate::protocol::ServerMessage::Image(_) = msg {
                        images += 1;
                    }
                }
                images
            });

            // Freeze the simulation, then re-request the same view: once
            // the pause lands, (step, camera, ROI, field, tf) repeats,
            // so every further frame is served from the cache.
            driver.send(&SteeringCommand::Pause).unwrap();
            let mut prev = first.step;
            let mut repeats = 0;
            let mut last_statuses = Vec::new();
            while repeats < 3 {
                driver.send(&SteeringCommand::RequestFrame).unwrap();
                let (img, statuses) = driver.wait_for_image().unwrap();
                if img.step == prev {
                    repeats += 1;
                } else {
                    prev = img.step;
                }
                last_statuses = statuses;
            }
            driver.send(&SteeringCommand::Terminate).unwrap();
            while driver.recv().is_ok() {}
            (last_statuses, observer.join().unwrap())
        });

        let results = run_spmd(2, move |comm| {
            let acceptor = if comm.is_master() {
                acceptor_slot.lock().take()
            } else {
                None
            };
            run_closed_loop_opts(
                geo2.clone(),
                slab_owner(&geo2, comm.size()),
                SolverConfig::pressure_driven(1.005, 0.995),
                comm,
                None,
                acceptor,
                &ClosedLoopConfig {
                    max_steps: 1_000_000, // only the driver stops this run
                    image: (32, 24),
                    initial_vis_rate: 1_000_000,
                    steps_per_cycle: 5,
                    vis_aware_repartition: false,
                    gateway: Some(GatewayConfig::default()),
                    ..Default::default()
                },
            )
            .unwrap()
        });
        let (statuses, observer_images) = client_thread.join().unwrap();
        assert!(
            observer_images >= 1,
            "observer saw broadcast frames without requesting any"
        );
        assert!(
            statuses.iter().any(|s| s.cache_hits > 0),
            "status reports surface the cache counters"
        );
        for r in &results {
            assert!(r.terminated_by_client);
            assert!(r.frames_rendered >= 1, "the first view was rendered");
            assert!(r.frames_from_cache >= 3, "repeat views came from cache");
            assert_eq!(r.cache_hits, r.frames_from_cache);
            assert!(r.cache_misses >= r.frames_rendered);
        }
        // Hit/miss verdicts are replicated: every rank agrees exactly.
        assert_eq!(results[0].frames_rendered, results[1].frames_rendered);
        assert_eq!(results[0].frames_from_cache, results[1].frames_from_cache);
        assert_eq!(results[0].sessions_peak, 2, "driver + observer");
        assert_eq!(results[1].sessions_peak, 0, "peak is master-side state");
        assert!(results[0].steering_bytes > 0);
    }
}
