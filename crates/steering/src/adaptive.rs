//! The SPMD driver for measurement-driven adaptive load balancing.
//!
//! [`hemelb_partition::adaptive`] holds the pure decision logic
//! (hysteresis, weight derivation, cost/benefit gate); this module
//! supplies the measurements and applies the verdict:
//!
//! 1. every decision window, each rank reads its own `lb.*` and
//!    `vis.render` span totals from the observability recorder — the
//!    *measured* per-rank cost, not a site count;
//! 2. the per-rank costs are **all-reduced** so every rank holds the
//!    identical cost vector and therefore reaches the identical
//!    decision — the trigger is collective without extra control
//!    messages;
//! 3. on trigger, the plan from
//!    [`plan_rebalance`](hemelb_partition::plan_rebalance) is priced
//!    with an α–β–γ [`CostModel`] (projected migration seconds) and
//!    gated by [`payoff_gate`](hemelb_partition::payoff_gate) against
//!    the projected saving over the remaining steps. The pricing model
//!    **self-calibrates**: every window's all-reduced measurements
//!    (span totals, message/byte counts, send times) feed a
//!    non-negative least-squares fit
//!    ([`hemelb_parallel::calibrate_fit`]), and once that fit is usable
//!    it replaces the preset — migrations are priced at this machine's
//!    measured rates, identically on every rank because the fit is a
//!    pure function of all-reduced inputs;
//! 4. an applied plan goes through [`DistSolver::repartition`], which
//!    is bit-transparent — physics after an adaptive rebalance is
//!    bit-identical to never having rebalanced.
//!
//! Every decision is surfaced as `lb.rebalance.*` obs counters, so the
//! phase reports show *why* a rebalance did or did not happen.

use crate::error::SteeringResult;
use hemelb_core::DistSolver;
use hemelb_geometry::SparseGeometry;
use hemelb_parallel::{calibrate_fit, CalSample, Communicator, CostModel, MachineModel};
use hemelb_partition::graph::Connectivity;
use hemelb_partition::{
    payoff_gate, plan_rebalance, AdaptiveLb, AdaptiveLbConfig, GateDecision, Observation,
    SiteGraph, WindowCosts,
};

/// Simulation phases whose span totals count as per-rank *load*.
/// `lb.halo-wait` is deliberately excluded: wait time is idleness
/// *caused by* imbalance on other ranks — including it would make the
/// starved ranks look busy and invert the signal. `lb.overlap.compute`
/// is excluded too: it is an umbrella span over the interior
/// `lb.collide`/`lb.stream` pieces and would double-count them.
const SIM_PHASES: [&str; 5] = [
    "lb.collide",
    "lb.collide-frontier",
    "lb.stream",
    "lb.halo-pack",
    "lb.macroscopics",
];

/// Visualisation phase whose span total counts as per-rank vis load.
const VIS_PHASE: &str = "vis.render";

/// What one decision window concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowDecision {
    /// The hysteresis observation for this window.
    pub observation: Observation,
    /// The cost/benefit verdict, present only when the window triggered
    /// and a plan could be formed.
    pub gate: Option<GateDecision>,
    /// Vertices the plan would move globally (0 when nothing planned).
    pub planned_moves: usize,
    /// Whether a repartition was applied this window.
    pub applied: bool,
    /// Sites this rank shipped away (0 unless applied).
    pub sites_moved_local: usize,
}

/// Per-rank driver state for the adaptive load balancer. Construct one
/// per run (it snapshots obs counters incrementally) and call
/// [`AdaptiveDriver::end_window`] collectively every
/// `config.window_steps` steps.
pub struct AdaptiveDriver {
    lb: AdaptiveLb,
    graph: SiteGraph,
    cost_model: CostModel,
    /// Model fitted from this run's own windows; replaces `cost_model`
    /// for migration pricing as soon as the fit is usable.
    calibrated: Option<CostModel>,
    /// Calibration samples accumulated from all-reduced window
    /// measurements — identical on every rank by construction.
    samples: Vec<CalSample>,
    prev_sim_secs: f64,
    prev_vis_secs: f64,
    prev_msgs: u64,
    prev_bytes: u64,
    prev_send_secs: f64,
    last_imbalance: f64,
    applied: u64,
}

/// Cap on retained calibration samples: enough windows to fit well,
/// bounded so a long run's driver state stays small. Growth simply
/// stops at the cap (identically on every rank), keeping the fit —
/// and therefore the collective decisions — consistent.
const MAX_CAL_SAMPLES: usize = 512;

impl AdaptiveDriver {
    /// Build the driver: the site graph is constructed once from the
    /// geometry (topology never changes mid-run). Migrations start out
    /// priced with the shared-memory preset and switch to the
    /// self-calibrated fit as windows accumulate measurements.
    pub fn new(geo: &SparseGeometry, cfg: AdaptiveLbConfig) -> Self {
        AdaptiveDriver {
            lb: AdaptiveLb::new(cfg),
            graph: SiteGraph::from_geometry(geo, Connectivity::Six),
            cost_model: CostModel::for_machine(MachineModel::SharedMemory),
            calibrated: None,
            samples: Vec::new(),
            prev_sim_secs: 0.0,
            prev_vis_secs: 0.0,
            prev_msgs: 0,
            prev_bytes: 0,
            prev_send_secs: 0.0,
            last_imbalance: 1.0,
            applied: 0,
        }
    }

    /// Price migrations with a different *fallback* machine model (e.g.
    /// [`MachineModel::CrayXe6`] for co-design projections). Once the
    /// driver's own window measurements yield a usable calibrated fit,
    /// that fit takes over the pricing (see
    /// [`AdaptiveDriver::pricing_model`]).
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// The model currently pricing migrations: the self-calibrated fit
    /// when one is usable, the fallback preset before that.
    pub fn pricing_model(&self) -> &CostModel {
        self.calibrated.as_ref().unwrap_or(&self.cost_model)
    }

    /// Whether migration pricing is running on a self-calibrated model
    /// (false until enough windows produced a usable fit).
    pub fn is_calibrated(&self) -> bool {
        self.calibrated.is_some()
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdaptiveLbConfig {
        self.lb.config()
    }

    /// The worst (sim or vis) imbalance measured in the most recent
    /// window, 1.0 before the first window completes.
    pub fn last_imbalance(&self) -> f64 {
        self.last_imbalance
    }

    /// Repartitions applied by this driver so far.
    pub fn rebalances_applied(&self) -> u64 {
        self.applied
    }

    /// Read this rank's cumulative load-proportional span totals.
    fn phase_totals(&self, comm: &Communicator) -> (f64, f64) {
        comm.with_obs(|o| {
            let sim = SIM_PHASES
                .iter()
                .filter_map(|p| o.phase_stats(p))
                .map(|s| s.total_secs)
                .sum();
            let vis = o.phase_stats(VIS_PHASE).map_or(0.0, |s| s.total_secs);
            (sim, vis)
        })
    }

    /// Close one decision window: gather per-rank costs, run the
    /// hysteresis filter, and — when it triggers — plan, price and
    /// maybe apply a repartition. **Collective**: every rank must call
    /// this at the same point in the step sequence.
    ///
    /// `steps_elapsed` is how many steps this window covered;
    /// `steps_remaining` is the horizon the migration must amortise
    /// over. Planning failures are absorbed (counted under
    /// `lb.rebalance.skipped.error`), never fatal; only communicator
    /// errors propagate.
    pub fn end_window(
        &mut self,
        comm: &Communicator,
        solver: &mut DistSolver,
        steps_elapsed: u64,
        steps_remaining: u64,
    ) -> SteeringResult<WindowDecision> {
        // 1. This rank's cost for the window = delta of cumulative span
        // totals since the previous window boundary.
        let (sim_total, vis_total) = self.phase_totals(comm);
        let sim = (sim_total - self.prev_sim_secs).max(0.0);
        let vis = (vis_total - self.prev_vis_secs).max(0.0);
        self.prev_sim_secs = sim_total;
        self.prev_vis_secs = vis_total;

        // This rank's communication deltas for the window, for the
        // calibration samples. `send_secs` (time spent inside sends),
        // not `recv_wait`: wait is idleness *caused by* imbalance
        // elsewhere — folding it in would inflate α with load skew and
        // invert the signal, the same reason `lb.halo-wait` is excluded
        // from SIM_PHASES.
        let stats = comm.stats();
        let msgs = stats.total_msgs().saturating_sub(self.prev_msgs);
        let bytes = stats.total_bytes().saturating_sub(self.prev_bytes);
        let send_secs = (stats.total_send_secs() - self.prev_send_secs).max(0.0);
        self.prev_msgs = stats.total_msgs();
        self.prev_bytes = stats.total_bytes();
        self.prev_send_secs = stats.total_send_secs();
        let work = solver.local_sites().len() as u64 * steps_elapsed.max(1);

        // 2. Share: each rank fills its own slot group, sum-reduce, so
        // every rank ends up with the identical per-rank measurement
        // vector and every later decision — including the calibration
        // fit — is collectively consistent by construction.
        let size = comm.size();
        const SLOTS: usize = 6;
        let mut slots = vec![0.0f64; SLOTS * size];
        let base = SLOTS * comm.rank();
        slots[base] = sim;
        slots[base + 1] = vis;
        slots[base + 2] = msgs as f64;
        slots[base + 3] = bytes as f64;
        slots[base + 4] = work as f64;
        slots[base + 5] = send_secs;
        let reduced = comm.all_reduce_f64_vec(slots, |a, b| a + b)?;
        let costs = WindowCosts {
            sim_secs: (0..size).map(|r| reduced[SLOTS * r]).collect(),
            vis_secs: (0..size).map(|r| reduced[SLOTS * r + 1]).collect(),
            steps: steps_elapsed.max(1),
        };

        // 2b. Self-calibration: every rank contributes one pure-compute
        // sample (sim span total vs site updates) and one pure-comm
        // sample (send time vs message/byte counts) per window. The
        // inputs are the all-reduced vector, so the fit — a pure
        // function — lands on bit-identical coefficients everywhere.
        for r in 0..size {
            if self.samples.len() + 2 > MAX_CAL_SAMPLES {
                break;
            }
            self.samples.push(CalSample {
                msgs: 0,
                bytes: 0,
                work: reduced[SLOTS * r + 4] as u64,
                secs: reduced[SLOTS * r],
            });
            self.samples.push(CalSample {
                msgs: reduced[SLOTS * r + 2] as u64,
                bytes: reduced[SLOTS * r + 3] as u64,
                work: 0,
                secs: reduced[SLOTS * r + 5],
            });
        }
        if let Ok(cal) = calibrate_fit(&self.samples) {
            if cal.is_usable() {
                self.calibrated = Some(cal.model);
            }
        }

        // 3. Hysteresis.
        let observation = self.lb.observe(&costs);
        self.last_imbalance = observation.sim_imbalance.max(observation.vis_imbalance);
        comm.with_obs(|o| {
            if observation.hot {
                o.count("lb.rebalance.windows_hot", 1);
            }
        });
        let mut decision = WindowDecision {
            observation,
            gate: None,
            planned_moves: 0,
            applied: false,
            sites_moved_local: 0,
        };
        if !observation.triggered {
            return Ok(decision);
        }
        comm.with_obs(|o| o.count("lb.rebalance.triggered", 1));

        // 4. Plan from measured costs. A malformed plan input must not
        // take the run down — that is the whole point of the typed
        // partition errors.
        let plan = match plan_rebalance(&self.graph, solver.owner(), size, self.lb.config(), &costs)
        {
            Ok(plan) => plan,
            Err(_) => {
                comm.with_obs(|o| o.count("lb.rebalance.skipped.error", 1));
                self.lb.reset();
                return Ok(decision);
            }
        };
        decision.planned_moves = plan.moved_vertices;

        // 5. Price the migration: every moving site ships its q
        // distributions plus its id, after a counts exchange (one small
        // message per rank pair).
        let q = solver.model().q;
        let mig_bytes = plan.moved_vertices as u64 * (4 + 8 * q as u64);
        let mig_msgs = 2 * (size as u64) * (size as u64);
        let migration_secs = self.pricing_model().time(mig_msgs, mig_bytes, 0);
        let gate = payoff_gate(
            &plan,
            &costs,
            migration_secs,
            steps_remaining,
            self.lb.config(),
        );
        decision.gate = Some(gate);
        if !gate.apply {
            comm.with_obs(|o| o.count("lb.rebalance.skipped.gate", 1));
            self.lb.reset();
            return Ok(decision);
        }

        // 6. Apply. `repartition` is bit-transparent, so the physics is
        // unchanged; it also bumps `lb.rebalance.count` /
        // `lb.rebalance.sites_moved` and the CommStats rebalance column.
        decision.sites_moved_local = solver.repartition(plan.owner)?;
        decision.applied = true;
        self.applied += 1;
        comm.with_obs(|o| o.count("lb.rebalance.applied", 1));
        // The measurements that justified this trigger describe the old
        // decomposition; start accumulating evidence afresh.
        self.lb.reset();
        Ok(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_core::SolverConfig;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::run_spmd;
    use std::sync::Arc;

    #[test]
    fn driver_self_calibrates_from_window_measurements() {
        let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
        let geo2 = geo.clone();
        let results = run_spmd(2, move |comm| {
            let owner: Vec<usize> = (0..geo2.fluid_count() as u32)
                .map(|s| {
                    (geo2.position(s)[0] as usize * comm.size() / geo2.shape()[0])
                        .min(comm.size() - 1)
                })
                .collect();
            let cfg = SolverConfig::pressure_driven(1.005, 0.995);
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg, comm).unwrap();
            let mut driver = AdaptiveDriver::new(&geo2, AdaptiveLbConfig::default());
            assert!(!driver.is_calibrated());
            let preset = *driver.pricing_model();
            // A few windows of real stepping provide both pure-compute
            // and pure-comm samples; the fit should become usable.
            for _ in 0..4 {
                ds.step_n(10).unwrap();
                driver.end_window(comm, &mut ds, 10, 100).unwrap();
            }
            let calibrated = driver.is_calibrated();
            let model = *driver.pricing_model();
            (calibrated, preset, model)
        });
        for (calibrated, preset, model) in &results {
            assert!(
                *calibrated,
                "driver never produced a usable calibrated model"
            );
            // The fitted model is usable and is not the fallback preset.
            assert!(model.gamma.is_finite() && model.gamma > 0.0);
            assert!(model.beta.is_finite() && model.beta > 0.0);
            assert!(model.alpha.is_finite() && model.alpha >= 0.0);
            assert!(
                (model.alpha, model.beta, model.gamma) != (preset.alpha, preset.beta, preset.gamma),
                "calibrated model identical to the preset — fit never took over"
            );
        }
        // Collective consistency: the fit is a pure function of the
        // all-reduced inputs, so both ranks hold bit-identical models.
        let (_, _, m0) = &results[0];
        let (_, _, m1) = &results[1];
        assert_eq!(m0.alpha.to_bits(), m1.alpha.to_bits());
        assert_eq!(m0.beta.to_bits(), m1.beta.to_bits());
        assert_eq!(m0.gamma.to_bits(), m1.gamma.to_bits());
    }
}
