//! The SPMD driver for measurement-driven adaptive load balancing.
//!
//! [`hemelb_partition::adaptive`] holds the pure decision logic
//! (hysteresis, weight derivation, cost/benefit gate); this module
//! supplies the measurements and applies the verdict:
//!
//! 1. every decision window, each rank reads its own `lb.*` and
//!    `vis.render` span totals from the observability recorder — the
//!    *measured* per-rank cost, not a site count;
//! 2. the per-rank costs are **all-reduced** so every rank holds the
//!    identical cost vector and therefore reaches the identical
//!    decision — the trigger is collective without extra control
//!    messages;
//! 3. on trigger, the plan from
//!    [`plan_rebalance`](hemelb_partition::plan_rebalance) is priced
//!    with the α–β–γ [`CostModel`] (projected migration seconds) and
//!    gated by [`payoff_gate`](hemelb_partition::payoff_gate) against
//!    the projected saving over the remaining steps;
//! 4. an applied plan goes through [`DistSolver::repartition`], which
//!    is bit-transparent — physics after an adaptive rebalance is
//!    bit-identical to never having rebalanced.
//!
//! Every decision is surfaced as `lb.rebalance.*` obs counters, so the
//! phase reports show *why* a rebalance did or did not happen.

use crate::error::SteeringResult;
use hemelb_core::DistSolver;
use hemelb_geometry::SparseGeometry;
use hemelb_parallel::{Communicator, CostModel, MachineModel};
use hemelb_partition::graph::Connectivity;
use hemelb_partition::{
    payoff_gate, plan_rebalance, AdaptiveLb, AdaptiveLbConfig, GateDecision, Observation,
    SiteGraph, WindowCosts,
};

/// Simulation phases whose span totals count as per-rank *load*.
/// `lb.halo-wait` is deliberately excluded: wait time is idleness
/// *caused by* imbalance on other ranks — including it would make the
/// starved ranks look busy and invert the signal. `lb.overlap.compute`
/// is excluded too: it is an umbrella span over the interior
/// `lb.collide`/`lb.stream` pieces and would double-count them.
const SIM_PHASES: [&str; 5] = [
    "lb.collide",
    "lb.collide-frontier",
    "lb.stream",
    "lb.halo-pack",
    "lb.macroscopics",
];

/// Visualisation phase whose span total counts as per-rank vis load.
const VIS_PHASE: &str = "vis.render";

/// What one decision window concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowDecision {
    /// The hysteresis observation for this window.
    pub observation: Observation,
    /// The cost/benefit verdict, present only when the window triggered
    /// and a plan could be formed.
    pub gate: Option<GateDecision>,
    /// Vertices the plan would move globally (0 when nothing planned).
    pub planned_moves: usize,
    /// Whether a repartition was applied this window.
    pub applied: bool,
    /// Sites this rank shipped away (0 unless applied).
    pub sites_moved_local: usize,
}

/// Per-rank driver state for the adaptive load balancer. Construct one
/// per run (it snapshots obs counters incrementally) and call
/// [`AdaptiveDriver::end_window`] collectively every
/// `config.window_steps` steps.
pub struct AdaptiveDriver {
    lb: AdaptiveLb,
    graph: SiteGraph,
    cost_model: CostModel,
    prev_sim_secs: f64,
    prev_vis_secs: f64,
    last_imbalance: f64,
    applied: u64,
}

impl AdaptiveDriver {
    /// Build the driver: the site graph is constructed once from the
    /// geometry (topology never changes mid-run), and migrations are
    /// priced with the shared-memory machine model by default.
    pub fn new(geo: &SparseGeometry, cfg: AdaptiveLbConfig) -> Self {
        AdaptiveDriver {
            lb: AdaptiveLb::new(cfg),
            graph: SiteGraph::from_geometry(geo, Connectivity::Six),
            cost_model: CostModel::for_machine(MachineModel::SharedMemory),
            prev_sim_secs: 0.0,
            prev_vis_secs: 0.0,
            last_imbalance: 1.0,
            applied: 0,
        }
    }

    /// Price migrations with a different machine model (e.g.
    /// [`MachineModel::CrayXe6`] for co-design projections).
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdaptiveLbConfig {
        self.lb.config()
    }

    /// The worst (sim or vis) imbalance measured in the most recent
    /// window, 1.0 before the first window completes.
    pub fn last_imbalance(&self) -> f64 {
        self.last_imbalance
    }

    /// Repartitions applied by this driver so far.
    pub fn rebalances_applied(&self) -> u64 {
        self.applied
    }

    /// Read this rank's cumulative load-proportional span totals.
    fn phase_totals(&self, comm: &Communicator) -> (f64, f64) {
        comm.with_obs(|o| {
            let sim = SIM_PHASES
                .iter()
                .filter_map(|p| o.phase_stats(p))
                .map(|s| s.total_secs)
                .sum();
            let vis = o.phase_stats(VIS_PHASE).map_or(0.0, |s| s.total_secs);
            (sim, vis)
        })
    }

    /// Close one decision window: gather per-rank costs, run the
    /// hysteresis filter, and — when it triggers — plan, price and
    /// maybe apply a repartition. **Collective**: every rank must call
    /// this at the same point in the step sequence.
    ///
    /// `steps_elapsed` is how many steps this window covered;
    /// `steps_remaining` is the horizon the migration must amortise
    /// over. Planning failures are absorbed (counted under
    /// `lb.rebalance.skipped.error`), never fatal; only communicator
    /// errors propagate.
    pub fn end_window(
        &mut self,
        comm: &Communicator,
        solver: &mut DistSolver,
        steps_elapsed: u64,
        steps_remaining: u64,
    ) -> SteeringResult<WindowDecision> {
        // 1. This rank's cost for the window = delta of cumulative span
        // totals since the previous window boundary.
        let (sim_total, vis_total) = self.phase_totals(comm);
        let sim = (sim_total - self.prev_sim_secs).max(0.0);
        let vis = (vis_total - self.prev_vis_secs).max(0.0);
        self.prev_sim_secs = sim_total;
        self.prev_vis_secs = vis_total;

        // 2. Share: each rank fills its own two slots, sum-reduce, so
        // every rank ends up with the identical per-rank cost vector
        // and every later decision is collectively consistent by
        // construction.
        let size = comm.size();
        let mut slots = vec![0.0f64; 2 * size];
        slots[2 * comm.rank()] = sim;
        slots[2 * comm.rank() + 1] = vis;
        let reduced = comm.all_reduce_f64_vec(slots, |a, b| a + b)?;
        let costs = WindowCosts {
            sim_secs: (0..size).map(|r| reduced[2 * r]).collect(),
            vis_secs: (0..size).map(|r| reduced[2 * r + 1]).collect(),
            steps: steps_elapsed.max(1),
        };

        // 3. Hysteresis.
        let observation = self.lb.observe(&costs);
        self.last_imbalance = observation.sim_imbalance.max(observation.vis_imbalance);
        comm.with_obs(|o| {
            if observation.hot {
                o.count("lb.rebalance.windows_hot", 1);
            }
        });
        let mut decision = WindowDecision {
            observation,
            gate: None,
            planned_moves: 0,
            applied: false,
            sites_moved_local: 0,
        };
        if !observation.triggered {
            return Ok(decision);
        }
        comm.with_obs(|o| o.count("lb.rebalance.triggered", 1));

        // 4. Plan from measured costs. A malformed plan input must not
        // take the run down — that is the whole point of the typed
        // partition errors.
        let plan = match plan_rebalance(&self.graph, solver.owner(), size, self.lb.config(), &costs)
        {
            Ok(plan) => plan,
            Err(_) => {
                comm.with_obs(|o| o.count("lb.rebalance.skipped.error", 1));
                self.lb.reset();
                return Ok(decision);
            }
        };
        decision.planned_moves = plan.moved_vertices;

        // 5. Price the migration: every moving site ships its q
        // distributions plus its id, after a counts exchange (one small
        // message per rank pair).
        let q = solver.model().q;
        let bytes = plan.moved_vertices as u64 * (4 + 8 * q as u64);
        let msgs = 2 * (size as u64) * (size as u64);
        let migration_secs = self.cost_model.time(msgs, bytes, 0);
        let gate = payoff_gate(
            &plan,
            &costs,
            migration_secs,
            steps_remaining,
            self.lb.config(),
        );
        decision.gate = Some(gate);
        if !gate.apply {
            comm.with_obs(|o| o.count("lb.rebalance.skipped.gate", 1));
            self.lb.reset();
            return Ok(decision);
        }

        // 6. Apply. `repartition` is bit-transparent, so the physics is
        // unchanged; it also bumps `lb.rebalance.count` /
        // `lb.rebalance.sites_moved` and the CommStats rebalance column.
        decision.sites_moved_local = solver.repartition(plan.owner)?;
        decision.applied = true;
        self.applied += 1;
        comm.with_obs(|o| o.count("lb.rebalance.applied", 1));
        // The measurements that justified this trigger describe the old
        // decomposition; start accumulating evidence afresh.
        self.lb.reset();
        Ok(decision)
    }
}
