//! `hemelb-obs`: the observability layer of the co-design study.
//!
//! The paper's closed steering loop (§IV-C) is only as good as its
//! latency budget, and a latency budget needs measurements. This crate
//! provides the small, dependency-free primitives every other layer
//! records into:
//!
//! * [`Recorder`] — a per-rank sink of named phase timings, monotonic
//!   counters and a bounded [`Timeline`] of recent spans;
//! * [`Span`] / [`PhaseTimer`] — scope timers feeding a recorder;
//! * [`Histogram`] — fixed log-bucket latency histogram with
//!   p50/p95/p99/max, mergeable across ranks;
//! * [`ObsReport`] — an exportable snapshot: JSON round-trip
//!   ([`ObsReport::to_json`] / [`ObsReport::from_json`]), cross-rank
//!   [`ObsReport::merge`], and a human-readable
//!   [`ObsReport::render_table`].
//!
//! A [`Recorder::disabled`] recorder turns every entry point into a
//! single-branch no-op, so instrumentation can stay compiled in without
//! a measurable cost on the LB kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod recorder;
pub mod report;

pub use hist::{Histogram, BUCKET_BOUNDS};
pub use json::{Json, JsonError};
pub use recorder::{PhaseStats, PhaseTimer, Recorder, Span, Timeline, TIMELINE_CAP};
pub use report::{fmt_secs, ObsReport, PhaseReport, TimelineEvent};
