//! Exportable snapshots of a recorder: JSON round-trip, cross-rank
//! merging and human-readable rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::json::{Json, JsonError};

/// One retained span on a rank's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Phase name the span was credited to.
    pub phase: String,
    /// Span start, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
}

/// Exported statistics for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Completed spans.
    pub calls: u64,
    /// Total seconds across spans.
    pub total_secs: f64,
    /// Latency distribution of individual spans.
    pub hist: Histogram,
}

/// A complete snapshot of one recorder, optionally stamped with the
/// rank it came from. Reports from many ranks merge into a fleet-wide
/// aggregate (see [`ObsReport::merge`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Originating rank, if stamped by the SPMD runner.
    pub rank: Option<usize>,
    /// Per-phase statistics, sorted by phase name.
    pub phases: BTreeMap<String, PhaseReport>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Retained timeline events (dropped on merge — a fleet aggregate
    /// has no single timeline).
    pub timeline: Vec<TimelineEvent>,
    /// Timeline events discarded after the cap.
    pub dropped_events: u64,
}

impl ObsReport {
    /// Fold `other` into `self`: phase stats and counters add, the
    /// merged report keeps no timeline (per-rank timelines only make
    /// sense per rank) and clears the rank stamp.
    pub fn merge(&mut self, other: &ObsReport) {
        self.rank = None;
        self.timeline.clear();
        self.dropped_events += other.dropped_events;
        for (name, p) in &other.phases {
            match self.phases.get_mut(name) {
                Some(mine) => {
                    mine.calls += p.calls;
                    mine.total_secs += p.total_secs;
                    mine.hist.merge(&p.hist);
                }
                None => {
                    self.phases.insert(name.clone(), p.clone());
                }
            }
        }
        for (name, &n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
    }

    /// Fold `other` into `self` with every phase and counter renamed to
    /// `{prefix}.{name}` — the cross-*job* roll-up: a farm merges each
    /// job's (already rank-merged) report under a per-job or per-tenant
    /// namespace so one aggregate report keeps the jobs tellable apart.
    /// Same-name entries from repeated calls with the same prefix
    /// accumulate, so a tenant's jobs fold into one set of rows.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &ObsReport) {
        self.rank = None;
        self.timeline.clear();
        self.dropped_events += other.dropped_events;
        for (name, p) in &other.phases {
            let key = format!("{prefix}.{name}");
            match self.phases.get_mut(&key) {
                Some(mine) => {
                    mine.calls += p.calls;
                    mine.total_secs += p.total_secs;
                    mine.hist.merge(&p.hist);
                }
                None => {
                    self.phases.insert(key, p.clone());
                }
            }
        }
        for (name, &n) in &other.counters {
            *self.counters.entry(format!("{prefix}.{name}")).or_insert(0) += n;
        }
    }

    /// Merge a sequence of per-rank reports into one aggregate.
    pub fn merged(reports: &[ObsReport]) -> ObsReport {
        let mut out = ObsReport::default();
        for r in reports {
            out.merge(r);
        }
        out
    }

    /// Export as a compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Export as a JSON value tree.
    pub fn to_json_value(&self) -> Json {
        let phases = self
            .phases
            .iter()
            .map(|(name, p)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("calls".into(), Json::Num(p.calls as f64)),
                        ("total_secs".into(), Json::Num(p.total_secs)),
                        ("p50".into(), Json::Num(p.hist.p50())),
                        ("p95".into(), Json::Num(p.hist.p95())),
                        ("p99".into(), Json::Num(p.hist.p99())),
                        ("max".into(), Json::Num(p.hist.max())),
                        ("hist".into(), p.hist.to_json()),
                    ]),
                )
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
            .collect();
        let timeline = self
            .timeline
            .iter()
            .map(|ev| {
                Json::Obj(vec![
                    ("phase".into(), Json::Str(ev.phase.clone())),
                    ("start_us".into(), Json::Num(ev.start_us as f64)),
                    ("dur_us".into(), Json::Num(ev.dur_us as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "rank".into(),
                match self.rank {
                    Some(r) => Json::Num(r as f64),
                    None => Json::Null,
                },
            ),
            ("phases".into(), Json::Obj(phases)),
            ("counters".into(), Json::Obj(counters)),
            ("timeline".into(), Json::Arr(timeline)),
            (
                "dropped_events".into(),
                Json::Num(self.dropped_events as f64),
            ),
        ])
    }

    /// Rebuild a report from its [`ObsReport::to_json`] string.
    pub fn from_json(s: &str) -> Result<ObsReport, JsonError> {
        let v = Json::parse(s)?;
        Self::from_json_value(&v).ok_or_else(|| JsonError {
            offset: 0,
            message: "not an ObsReport document".to_string(),
        })
    }

    /// Rebuild from a parsed JSON value tree.
    pub fn from_json_value(v: &Json) -> Option<ObsReport> {
        let rank = match v.get("rank")? {
            Json::Null => None,
            n => Some(n.as_u64()? as usize),
        };
        let mut phases = BTreeMap::new();
        for (name, p) in v.get("phases")?.as_obj()? {
            phases.insert(
                name.clone(),
                PhaseReport {
                    calls: p.get("calls")?.as_u64()?,
                    total_secs: p.get("total_secs")?.as_f64()?,
                    hist: Histogram::from_json(p.get("hist")?)?,
                },
            );
        }
        let mut counters = BTreeMap::new();
        for (name, n) in v.get("counters")?.as_obj()? {
            counters.insert(name.clone(), n.as_u64()?);
        }
        let mut timeline = Vec::new();
        for ev in v.get("timeline")?.as_arr()? {
            timeline.push(TimelineEvent {
                phase: ev.get("phase")?.as_str()?.to_string(),
                start_us: ev.get("start_us")?.as_u64()?,
                dur_us: ev.get("dur_us")?.as_u64()?,
            });
        }
        Some(ObsReport {
            rank,
            phases,
            counters,
            timeline,
            dropped_events: v.get("dropped_events")?.as_u64()?,
        })
    }

    /// Render a human-readable per-phase table:
    /// `phase  calls  total  mean  p50  p95  p99  max`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .phases
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let _ = writeln!(
            out,
            "{:name_w$}  {:>8}  {:>10}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
            "phase", "calls", "total", "mean", "p50", "p95", "p99", "max"
        );
        for (name, p) in &self.phases {
            let _ = writeln!(
                out,
                "{:name_w$}  {:>8}  {:>10}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
                name,
                p.calls,
                fmt_secs(p.total_secs),
                fmt_secs(p.hist.mean()),
                fmt_secs(p.hist.p50()),
                fmt_secs(p.hist.p95()),
                fmt_secs(p.hist.p99()),
                fmt_secs(p.hist.max()),
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, n) in &self.counters {
                let _ = writeln!(out, "  {name} = {n}");
            }
        }
        if self.dropped_events > 0 {
            let _ = writeln!(out, "({} timeline events dropped)", self.dropped_events);
        }
        out
    }
}

/// Format a duration in seconds with an adaptive unit (ns/µs/ms/s).
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".to_string()
    } else if s < 1e-6 {
        format!("{:.0}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_report() -> ObsReport {
        let mut rec = Recorder::new();
        for i in 0..200 {
            rec.record_secs("collide", 1e-4 * (1.0 + (i % 7) as f64));
            rec.record_secs("stream", 2e-4);
        }
        rec.begin().end(&mut rec, "halo-wait");
        rec.count("steps", 200);
        let mut r = rec.report();
        r.rank = Some(3);
        r
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let r = sample_report();
        let back = ObsReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn merged_report_sums_ranks() {
        let a = sample_report();
        let b = sample_report();
        let m = ObsReport::merged(&[a.clone(), b]);
        assert_eq!(m.rank, None);
        assert_eq!(m.phases["collide"].calls, 2 * a.phases["collide"].calls);
        assert_eq!(m.counters["steps"], 400);
        assert!(m.timeline.is_empty(), "aggregate keeps no timeline");
        let delta = (m.phases["stream"].total_secs - 2.0 * a.phases["stream"].total_secs).abs();
        assert!(delta < 1e-12);
    }

    #[test]
    fn merge_prefixed_namespaces_and_accumulates() {
        let a = sample_report();
        let mut roll = ObsReport::default();
        roll.merge_prefixed("tenant.icu", &a);
        roll.merge_prefixed("tenant.icu", &a);
        roll.merge_prefixed("tenant.lab", &a);
        assert_eq!(
            roll.phases["tenant.icu.collide"].calls,
            2 * a.phases["collide"].calls
        );
        assert_eq!(
            roll.phases["tenant.lab.collide"].calls,
            a.phases["collide"].calls
        );
        assert_eq!(roll.counters["tenant.icu.steps"], 400);
        assert!(roll.phases.keys().all(|k| k.starts_with("tenant.")));
        assert!(roll.timeline.is_empty());
    }

    #[test]
    fn table_mentions_every_phase() {
        let r = sample_report();
        let table = r.render_table();
        for phase in ["collide", "stream", "halo-wait"] {
            assert!(table.contains(phase), "{table}");
        }
        assert!(table.contains("steps = 200"), "{table}");
    }

    #[test]
    fn from_json_rejects_wrong_shape() {
        assert!(ObsReport::from_json("{}").is_err());
        assert!(ObsReport::from_json("[1,2]").is_err());
        assert!(ObsReport::from_json("not json").is_err());
    }

    #[test]
    fn fmt_secs_picks_units() {
        assert_eq!(fmt_secs(0.0), "0");
        assert!(fmt_secs(5e-9).ends_with("ns"));
        assert!(fmt_secs(5e-5).ends_with("µs"));
        assert!(fmt_secs(5e-3).ends_with("ms"));
        assert!(fmt_secs(5.0).ends_with('s'));
    }
}
