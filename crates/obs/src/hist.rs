//! Fixed-bucket latency histogram.
//!
//! Buckets are log-spaced (1–2–5 per decade) from 1 µs to 50 s, which
//! covers everything from a single span record to a full steering
//! round-trip over TCP. Fixed bounds mean histograms from different
//! ranks (or different runs) merge by plain bucket-wise addition — the
//! property the cross-rank aggregation in `run_spmd_opts` relies on.

use crate::json::Json;

/// Bucket upper bounds in seconds: 1-2-5 per decade, 1 µs .. 50 s.
/// Samples above the last bound land in a final overflow bucket.
pub const BUCKET_BOUNDS: [f64; 24] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
    2e-1, 5e-1, 1.0, 2.0, 5.0, 1e1, 2e1, 5e1,
];

const NBUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// A latency histogram with fixed log-spaced buckets plus exact
/// count/sum/min/max, and quantile estimates (p50/p95/p99) read from
/// the bucket boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; NBUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; NBUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Record one latency sample in seconds. Negative and NaN samples
    /// are ignored (they cannot arise from monotonic clocks).
    pub fn record(&mut self, secs: f64) {
        if secs.is_nan() || secs < 0.0 {
            return;
        }
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(NBUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += secs;
        self.min = self.min.min(secs);
        self.max = self.max.max(secs);
    }

    /// Record a [`std::time::Duration`] sample.
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample, seconds (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, seconds.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Quantile estimate in seconds: the upper bound of the bucket the
    /// q-th sample falls in, clamped to the exact observed max (so the
    /// estimate never exceeds reality). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let bound = if i < BUCKET_BOUNDS.len() {
                    BUCKET_BOUNDS[i]
                } else {
                    self.max
                };
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate, seconds.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate, seconds.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate, seconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Add every sample of `other` into `self` (bucket-wise; exact for
    /// count/sum/min/max).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// JSON export: `{count, sum, min, max, buckets}` with `buckets`
    /// only listing non-empty entries as `[index, n]` pairs (the 25
    /// fixed bounds are shared knowledge between writer and reader).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::Arr(vec![Json::Num(i as f64), Json::Num(n as f64)]))
            .collect();
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum)),
            ("min".into(), Json::Num(self.min())),
            ("max".into(), Json::Num(self.max)),
            ("buckets".into(), Json::Arr(buckets)),
        ])
    }

    /// Rebuild from the [`Histogram::to_json`] encoding.
    ///
    /// The encoding is redundant — `count` and the bucket entries both
    /// state how many samples there are — and the two can disagree in a
    /// corrupted or hand-edited report. Such a histogram would *merge*
    /// cleanly and then lie from its quantiles (which walk the buckets
    /// against `count`), so inconsistency is rejected here, at the
    /// trust boundary: duplicate bucket indices are an error rather
    /// than a silent overwrite, and the bucket total must equal
    /// `count`.
    pub fn from_json(v: &Json) -> Option<Histogram> {
        let mut h = Histogram::new();
        h.count = v.get("count")?.as_u64()?;
        h.sum = v.get("sum")?.as_f64()?;
        h.max = v.get("max")?.as_f64()?;
        h.min = if h.count == 0 {
            f64::INFINITY
        } else {
            v.get("min")?.as_f64()?
        };
        let mut bucket_total = 0u64;
        let mut seen = [false; NBUCKETS];
        for pair in v.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let idx = pair[0].as_u64()? as usize;
            if idx >= NBUCKETS {
                return None;
            }
            if seen[idx] {
                return None; // duplicate bucket index
            }
            seen[idx] = true;
            let n = pair[1].as_u64()?;
            h.buckets[idx] = n;
            bucket_total = bucket_total.checked_add(n)?;
        }
        if bucket_total != h.count {
            return None; // buckets disagree with the sample count
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn quantiles_track_bucket_bounds() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1.5e-3); // bucket bound 2e-3
        }
        for _ in 0..10 {
            h.record(0.4); // bucket bound 5e-1
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 2e-3);
        assert!(h.p95() <= 0.4 + 1e-12 && h.p95() > 2e-3, "p95={}", h.p95());
        assert_eq!(h.max(), 0.4);
        assert!((h.mean() - (90.0 * 1.5e-3 + 10.0 * 0.4) / 100.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let mut h = Histogram::new();
        h.record(3e-6);
        assert_eq!(h.p99(), 3e-6, "single sample: clamped to max");
    }

    #[test]
    fn nan_and_negative_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn overflow_bucket_catches_huge_samples() {
        let mut h = Histogram::new();
        h.record(1e4);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50(), 1e4);
    }

    #[test]
    fn merge_is_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..50 {
            a.record(1e-5 * (i + 1) as f64);
            b.record(1e-2 * (i + 1) as f64);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.max(), b.max());
        assert_eq!(merged.min(), a.min());
        assert!((merged.sum() - (a.sum() + b.sum())).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut h = Histogram::new();
        for i in 0..1000 {
            h.record((i as f64 + 0.5) * 3.7e-5);
        }
        let back = Histogram::from_json(&Json::parse(&h.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, h);
        let empty = Histogram::new();
        let back = Histogram::from_json(&Json::parse(&empty.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn from_json_rejects_bucket_count_mismatch() {
        // count says 5 but the buckets only hold 3 samples: the
        // quantile walk would run off the end and report max for
        // everything — must be rejected, not accepted.
        let doc = r#"{"count":5,"sum":1.0,"min":0.1,"max":0.3,"buckets":[[18,3]]}"#;
        assert!(Histogram::from_json(&Json::parse(doc).unwrap()).is_none());
        // Buckets holding *more* than count is just as inconsistent.
        let doc = r#"{"count":1,"sum":1.0,"min":0.1,"max":0.3,"buckets":[[18,3]]}"#;
        assert!(Histogram::from_json(&Json::parse(doc).unwrap()).is_none());
        // Empty histogram with a stray bucket entry.
        let doc = r#"{"count":0,"sum":0.0,"min":0.0,"max":0.0,"buckets":[[0,1]]}"#;
        assert!(Histogram::from_json(&Json::parse(doc).unwrap()).is_none());
    }

    #[test]
    fn from_json_rejects_duplicate_bucket_indices() {
        // Two entries for bucket 18: the old decoder silently kept the
        // second one (losing 2 samples); now it is an error.
        let doc = r#"{"count":5,"sum":1.0,"min":0.1,"max":0.3,"buckets":[[18,2],[18,3]]}"#;
        assert!(Histogram::from_json(&Json::parse(doc).unwrap()).is_none());
        // Even when the duplicated entries happen to sum to count.
        let doc = r#"{"count":5,"sum":1.0,"min":0.1,"max":0.3,"buckets":[[18,0],[18,5]]}"#;
        assert!(Histogram::from_json(&Json::parse(doc).unwrap()).is_none());
    }

    #[test]
    fn from_json_still_rejects_malformed_shapes() {
        for doc in [
            // Bucket index out of range.
            r#"{"count":1,"sum":1.0,"min":1.0,"max":1.0,"buckets":[[99,1]]}"#,
            // Pair of the wrong arity.
            r#"{"count":1,"sum":1.0,"min":1.0,"max":1.0,"buckets":[[1,1,1]]}"#,
        ] {
            assert!(
                Histogram::from_json(&Json::parse(doc).unwrap()).is_none(),
                "{doc}"
            );
        }
    }
}
