//! The per-rank recorder: named phase timers, monotonic counters and a
//! bounded timeline of recent spans.
//!
//! Hot-path contract: every recording entry point checks one `bool`
//! first, so a disabled recorder costs a branch and nothing else — the
//! "< 5 % overhead or no-op recorder" budget of the observability
//! acceptance criteria.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::hist::Histogram;
use crate::report::{ObsReport, PhaseReport, TimelineEvent};

/// Accumulated statistics for one named phase.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseStats {
    /// Completed spans.
    pub calls: u64,
    /// Total seconds across spans.
    pub total_secs: f64,
    /// Latency distribution of individual spans.
    pub hist: Histogram,
}

impl PhaseStats {
    fn add(&mut self, secs: f64) {
        self.calls += 1;
        self.total_secs += secs;
        self.hist.record(secs);
    }
}

/// Default cap on retained timeline events per rank.
pub const TIMELINE_CAP: usize = 4096;

/// A bounded record of recent spans with their start offsets, for
/// per-rank timeline visualisation. Once `cap` events are stored,
/// further events are counted in `dropped` instead of growing memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    cap: usize,
    events: Vec<TimelineEvent>,
    dropped: u64,
}

impl Timeline {
    fn new(cap: usize) -> Self {
        Timeline {
            cap,
            events: Vec::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TimelineEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Retained events, in record order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Events discarded after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// An in-flight span produced by [`Recorder::begin`]. Finish it with
/// [`Span::end`]; a span of a disabled recorder is inert.
#[derive(Debug)]
#[must_use = "a Span records nothing until end() is called"]
pub struct Span {
    t0: Option<Instant>,
}

impl Span {
    /// Elapsed seconds so far (0 for an inert span).
    pub fn elapsed_secs(&self) -> f64 {
        self.t0.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0)
    }

    /// Close the span, crediting its duration to `phase` on `rec`.
    /// Returns the elapsed seconds.
    pub fn end(self, rec: &mut Recorder, phase: &str) -> f64 {
        rec.end_span(phase, self.t0)
    }
}

/// A scope guard from [`Recorder::phase`]: the borrowed alternative to
/// [`Span`] — it records on drop, so a phase body can be timed without
/// an explicit `end` call.
#[derive(Debug)]
pub struct PhaseTimer<'a> {
    rec: &'a mut Recorder,
    phase: &'a str,
    t0: Option<Instant>,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let t0 = self.t0.take();
        self.rec.end_span(self.phase, t0);
    }
}

/// Per-rank metrics recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    enabled: bool,
    epoch: Instant,
    phases: BTreeMap<String, PhaseStats>,
    counters: BTreeMap<String, u64>,
    timeline: Timeline,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An enabled recorder with the default timeline cap.
    pub fn new() -> Self {
        Recorder {
            enabled: true,
            epoch: Instant::now(),
            phases: BTreeMap::new(),
            counters: BTreeMap::new(),
            timeline: Timeline::new(TIMELINE_CAP),
        }
    }

    /// A recorder whose every entry point is a no-op — for measuring
    /// instrumentation overhead, or opting a hot loop out entirely.
    pub fn disabled() -> Self {
        let mut r = Self::new();
        r.enabled = false;
        r
    }

    /// Whether this recorder is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on or off (existing data is kept).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Start a span (callable through a shared reference, so it works
    /// from accessors that only expose `&self`).
    pub fn begin(&self) -> Span {
        Span {
            t0: if self.enabled {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Scope-guard variant of [`Recorder::begin`]: records `phase` when
    /// the returned guard drops.
    pub fn phase<'a>(&'a mut self, phase: &'a str) -> PhaseTimer<'a> {
        let t0 = if self.enabled {
            Some(Instant::now())
        } else {
            None
        };
        PhaseTimer {
            rec: self,
            phase,
            t0,
        }
    }

    /// Time a closure as one span of `phase`.
    pub fn time<R>(&mut self, phase: &str, f: impl FnOnce() -> R) -> R {
        let span = self.begin();
        let out = f();
        span.end(self, phase);
        out
    }

    fn end_span(&mut self, phase: &str, t0: Option<Instant>) -> f64 {
        let Some(t0) = t0 else { return 0.0 };
        let secs = t0.elapsed().as_secs_f64();
        self.record_span_at(phase, t0, secs);
        secs
    }

    /// Credit a completed span directly (used by callers that measured
    /// the interval themselves, e.g. around a borrow-restricted region).
    pub fn record_secs(&mut self, phase: &str, secs: f64) {
        if !self.enabled {
            return;
        }
        self.phase_entry(phase).add(secs);
    }

    fn record_span_at(&mut self, phase: &str, t0: Instant, secs: f64) {
        if !self.enabled {
            return;
        }
        self.phase_entry(phase).add(secs);
        let start_us = t0.saturating_duration_since(self.epoch).as_micros() as u64;
        self.timeline.push(TimelineEvent {
            phase: phase.to_string(),
            start_us,
            dur_us: (secs * 1e6) as u64,
        });
    }

    fn phase_entry(&mut self, phase: &str) -> &mut PhaseStats {
        // get_mut first: the common case needs no key allocation.
        if !self.phases.contains_key(phase) {
            self.phases.insert(phase.to_string(), PhaseStats::default());
        }
        self.phases.get_mut(phase).unwrap()
    }

    /// Add `n` to the named monotonic counter.
    pub fn count(&mut self, counter: &str, n: u64) {
        if !self.enabled {
            return;
        }
        if !self.counters.contains_key(counter) {
            self.counters.insert(counter.to_string(), 0);
        }
        *self.counters.get_mut(counter).unwrap() += n;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.get(counter).copied().unwrap_or(0)
    }

    /// Accumulated statistics for one phase, if it ever ran.
    pub fn phase_stats(&self, phase: &str) -> Option<&PhaseStats> {
        self.phases.get(phase)
    }

    /// All phases recorded so far, sorted by name.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &PhaseStats)> {
        self.phases.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The bounded per-rank timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Snapshot everything into an exportable [`ObsReport`].
    pub fn report(&self) -> ObsReport {
        ObsReport {
            rank: None,
            phases: self
                .phases
                .iter()
                .map(|(name, p)| {
                    (
                        name.clone(),
                        PhaseReport {
                            calls: p.calls,
                            total_secs: p.total_secs,
                            hist: p.hist.clone(),
                        },
                    )
                })
                .collect(),
            counters: self.counters.clone(),
            timeline: self.timeline.events.clone(),
            dropped_events: self.timeline.dropped,
        }
    }

    /// Drop all recorded data (keeps enabled state and epoch).
    pub fn reset(&mut self) {
        self.phases.clear();
        self.counters.clear();
        self.timeline.events.clear();
        self.timeline.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_phase_and_timeline() {
        let mut rec = Recorder::new();
        let s = rec.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = s.end(&mut rec, "collide");
        assert!(secs >= 0.002, "slept 2ms, got {secs}");
        let p = rec.phase_stats("collide").unwrap();
        assert_eq!(p.calls, 1);
        assert!(p.total_secs >= 0.002);
        assert_eq!(rec.timeline().events().len(), 1);
        assert_eq!(rec.timeline().events()[0].phase, "collide");
    }

    #[test]
    fn phase_guard_records_on_drop() {
        let mut rec = Recorder::new();
        {
            let _t = rec.phase("stream");
        }
        assert_eq!(rec.phase_stats("stream").unwrap().calls, 1);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut rec = Recorder::new();
        let x = rec.time("work", || 40 + 2);
        assert_eq!(x, 42);
        assert_eq!(rec.phase_stats("work").unwrap().calls, 1);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut rec = Recorder::disabled();
        let s = rec.begin();
        assert_eq!(s.end(&mut rec, "x"), 0.0);
        rec.count("c", 5);
        rec.record_secs("y", 1.0);
        assert!(rec.phase_stats("x").is_none());
        assert!(rec.phase_stats("y").is_none());
        assert_eq!(rec.counter("c"), 0);
        assert!(rec.timeline().events().is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut rec = Recorder::new();
        rec.count("frames", 1);
        rec.count("frames", 2);
        assert_eq!(rec.counter("frames"), 3);
        assert_eq!(rec.counter("absent"), 0);
    }

    #[test]
    fn timeline_caps_and_counts_drops() {
        let mut rec = Recorder::new();
        for _ in 0..TIMELINE_CAP + 10 {
            rec.begin().end(&mut rec, "p");
        }
        assert_eq!(rec.timeline().events().len(), TIMELINE_CAP);
        assert_eq!(rec.timeline().dropped(), 10);
        assert_eq!(
            rec.phase_stats("p").unwrap().calls,
            (TIMELINE_CAP + 10) as u64,
            "phase stats keep counting past the timeline cap"
        );
    }

    #[test]
    fn reset_clears_data_but_not_enablement() {
        let mut rec = Recorder::new();
        rec.begin().end(&mut rec, "p");
        rec.count("c", 1);
        rec.reset();
        assert!(rec.is_enabled());
        assert!(rec.phase_stats("p").is_none());
        assert_eq!(rec.counter("c"), 0);
        assert!(rec.timeline().events().is_empty());
    }
}
