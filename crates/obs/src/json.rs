//! A minimal JSON value, renderer and recursive-descent parser.
//!
//! The build environment has no `serde_json`, so the observability
//! export format is produced and consumed by this self-contained
//! module. Numbers are rendered through Rust's shortest-round-trip
//! `f64` formatting, so `parse(render(v)) == v` holds bit-exactly for
//! every finite value the recorder produces.

use std::fmt;

/// A JSON document node. Object member order is preserved (members are
/// a `Vec` of pairs, not a map), which keeps rendered reports stable
/// and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite values must be encoded by the caller
    /// (the recorder never produces them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup by key; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this node is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64` (truncating), if this node is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// String value, if this node is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this node is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object members, if this node is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. The whole input must be consumed (apart
    /// from trailing whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at(p.pos, "trailing characters after document"));
        }
        Ok(v)
    }
}

fn render_num(n: f64, out: &mut String) {
    use fmt::Write;
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Integral values render without an exponent or fraction so
            // counters look like counters.
            let _ = write!(out, "{}", n as i64);
        } else {
            // Rust's f64 Display is shortest-round-trip.
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no NaN/Inf; the recorder never emits them, but do
        // not produce invalid documents if a caller does.
        out.push_str("null");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: &str) -> Self {
        JsonError {
            offset,
            message: message.to_string(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                self.pos,
                &format!("expected '{}'", b as char),
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::at(self.pos, &format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at(self.pos, "expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError::at(self.pos, "bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| JsonError::at(self.pos, "bad code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::at(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| JsonError::at(start, "bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-3", "2.5", "\"hi\""] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-9, 123456.789, f64::MAX, 5e-324] {
            let v = Json::Num(x);
            let back = Json::parse(&v.render()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let src = r#"{"a":[1,2,{"b":"x\ny"}],"c":{"d":null,"e":[true,false]}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("c").unwrap().get("d"),
            Some(&Json::Null),
            "nested get"
        );
    }

    #[test]
    fn garbage_is_rejected() {
        for src in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f λ".to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
