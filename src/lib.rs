//! # hemelb — umbrella crate
//!
//! Re-exports every subsystem of the `hemelb-insitu-rs` workspace, a
//! from-scratch Rust reproduction of the SC'12 co-design study
//! *"Enabling in situ pre- and post-processing for exascale hemodynamic
//! simulations"* (Chen, Flatken, Basermann, Gerndt, Hetherington, Krüger,
//! Matura, Nash).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

pub use hemelb_core as core;
pub use hemelb_farm as farm;
pub use hemelb_geometry as geometry;
pub use hemelb_insitu as insitu;
pub use hemelb_obs as obs;
pub use hemelb_octree as octree;
pub use hemelb_parallel as parallel;
pub use hemelb_partition as partition;
pub use hemelb_steering as steering;
