//! The paper's flagship scenario: blood flow through a saccular
//! aneurysm, simulated on multiple ranks with in situ post-processing —
//! distributed volume rendering (Fig. 4a) and streamlines (Fig. 4b)
//! produced *while the simulation runs*, without ever gathering the
//! full field on one rank.
//!
//! ```sh
//! cargo run --release --example aneurysm_insitu
//! ```

use hemelb::core::{DistSolver, SolverConfig};
use hemelb::geometry::{Vec3, VesselBuilder};
use hemelb::insitu::camera::Camera;
use hemelb::insitu::compositing::binary_swap;
use hemelb::insitu::field::SampledField;
use hemelb::insitu::lines::{stitch_segments, trace_distributed, TraceConfig};
use hemelb::insitu::transfer::TransferFunction;
use hemelb::insitu::volume::{render_brick, Brick};
use hemelb::parallel::{run_spmd_with_stats, TagClass};
use hemelb::partition::graph::{Connectivity, SiteGraph};
use hemelb::partition::{quality, MultilevelKWay, Partitioner};
use std::sync::Arc;

const RANKS: usize = 4;

fn main() {
    // Pre-processing: geometry + multilevel k-way decomposition (the
    // ParMETIS role).
    let geo = Arc::new(VesselBuilder::aneurysm(28.0, 4.0, 6.0).voxelise(0.5));
    let graph = SiteGraph::from_geometry(&geo, Connectivity::D3Q15);
    let owner = Arc::new(MultilevelKWay::default().partition(&graph, RANKS));
    let q = quality(&graph, &owner, RANKS);
    println!(
        "decomposition: {} sites over {RANKS} ranks, imbalance {:.3}, edge cut {}",
        geo.fluid_count(),
        q.imbalance,
        q.edge_cut
    );

    let geo2 = geo.clone();
    let owner2 = owner.clone();
    let out = run_spmd_with_stats(RANKS, move |comm| {
        // Simulation: distributed pressure-driven flow.
        let mut solver = DistSolver::new(
            geo2.clone(),
            owner2.as_ref().clone(),
            SolverConfig::pressure_driven(1.01, 0.99).with_tau(0.8),
            comm,
        )
        .expect("solver construction");
        solver.step_n(400).expect("time stepping");

        // In situ step 1: per-rank volume rendering of the live local
        // field — zero data exchange.
        let snap = solver.local_snapshot();
        let positions: Vec<[u32; 3]> = solver
            .local_sites()
            .iter()
            .map(|&g| geo2.position(g))
            .collect();
        let speeds: Vec<f64> = (0..snap.len()).map(|i| snap.speed(i)).collect();
        let local_max = speeds.iter().cloned().fold(0.0, f64::max);
        let global_max = comm.all_reduce_f64(local_max, f64::max).unwrap();
        let tf = TransferFunction::heat(0.0, global_max.max(1e-9));
        let shape = geo2.shape();
        let cam = Camera::framing(
            Vec3::ZERO,
            Vec3::new(shape[0] as f64, shape[1] as f64, shape[2] as f64),
            Vec3::new(0.15, -1.0, 0.25),
            512,
            384,
        );
        let partial = match Brick::from_points(&positions, &speeds) {
            Some(brick) => render_brick(&brick, &cam, &tf, 0.4),
            None => hemelb::insitu::image::PartialImage::new(cam.width, cam.height),
        };
        let image = binary_swap(comm, partial).unwrap();

        // In situ step 2: distributed streamlines with hand-off.
        let global = solver.gather_snapshot().unwrap(); // only for seeding sanity at root
        let field_snap = solver.local_snapshot();
        let _ = (global, field_snap);
        // Streamlines need a coherent global field view for sampling;
        // here each rank samples the replicated geometry + a gathered
        // snapshot broadcast back (kept simple for the example).
        let full = {
            let gathered = solver.gather_snapshot().unwrap();
            let payload = gathered.map(|s| {
                let mut w = hemelb::parallel::WireWriter::new();
                w.put_u64(s.step);
                w.put_f64_slice(&s.rho);
                w.put_usize(s.u.len());
                for u in &s.u {
                    w.put(&[u[0], u[1], u[2]]);
                }
                w.put_f64_slice(&s.shear);
                w.finish()
            });
            let data = comm.broadcast(0, payload).unwrap();
            let mut r = hemelb::parallel::WireReader::new(data);
            let step = r.get_u64().unwrap();
            let rho = r.get_f64_vec().unwrap();
            let nu = r.get_usize().unwrap();
            let mut u = Vec::with_capacity(nu);
            for _ in 0..nu {
                let a: [f64; 3] = r.get().unwrap();
                u.push(a);
            }
            let shear = r.get_f64_vec().unwrap();
            hemelb::core::FieldSnapshot {
                step,
                rho,
                u,
                shear,
            }
        };
        let field = SampledField::new(&geo2, &full);
        let cy = (shape[1] as f64 - 1.0) / 2.0;
        let cz = shape[2] as f64 * 0.3;
        let seeds: Vec<Vec3> = (0..25)
            .map(|i| {
                Vec3::new(
                    2.0,
                    cy + ((i % 5) as f64 - 2.0) * 0.9,
                    cz + ((i / 5) as f64 - 2.0) * 0.9,
                )
            })
            .collect();
        let (segments, stats) = trace_distributed(
            comm,
            &geo2,
            &field,
            &owner2,
            &seeds,
            &TraceConfig {
                h: 0.4,
                max_steps: 5000,
                min_speed: 1e-9,
            },
        )
        .unwrap();
        (image, segments, stats.handoffs, seeds.len())
    });

    // Post-processing at the "master": write both figures.
    let (image, _, _, _) = &out.results[0];
    let image = image.as_ref().expect("rank 0 holds the image");
    image
        .write_ppm(std::path::Path::new("aneurysm_volume.ppm"))
        .expect("volume image");
    println!(
        "wrote aneurysm_volume.ppm ({:.1}% coverage)",
        image.coverage() * 100.0
    );

    let mut all_segments = Vec::new();
    let mut handoffs = 0;
    let mut n_seeds = 0;
    for (_, segs, h, ns) in &out.results {
        all_segments.extend(segs.clone());
        handoffs += h;
        n_seeds = *ns;
    }
    let lines = stitch_segments(all_segments, n_seeds);
    let drawn = lines.iter().filter(|l| l.len() > 1).count();
    println!("traced {drawn}/{n_seeds} streamlines with {handoffs} cross-rank hand-offs");

    println!(
        "communication: halo {} | vis data {} | compositing {}",
        out.summary.total.bytes(TagClass::Halo),
        out.summary.total.bytes(TagClass::Visualisation),
        out.summary.total.bytes(TagClass::Compositing),
    );
}
