//! Computational steering end-to-end: the paper's closed loop (Fig. 2)
//! driven by a scripted client.
//!
//! A bifurcation flow runs on four ranks; a client thread connects over
//! the in-memory transport, watches frames, raises the inlet pressure
//! mid-run, observes the flow speed respond, then terminates the run —
//! the "closing the loop" the paper names as the ultimate co-design
//! goal.
//!
//! ```sh
//! cargo run --release --example steered_simulation
//! ```

use hemelb::core::SolverConfig;
use hemelb::geometry::VesselBuilder;
use hemelb::parallel::run_spmd;
use hemelb::steering::protocol::ServerMessage;
use hemelb::steering::{
    duplex_pair, run_closed_loop, ClosedLoopConfig, SteeringClient, SteeringCommand, Transport,
};
use parking_lot::Mutex;
use std::sync::Arc;

const RANKS: usize = 4;

fn main() {
    let geo = Arc::new(VesselBuilder::bifurcation(16.0, 14.0, 4.0, 0.5).voxelise(0.7));
    println!(
        "bifurcation: {} fluid sites, 1 inlet, 2 outlets",
        geo.fluid_count()
    );

    let (client_end, server_end) = duplex_pair();
    let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));

    // The scripted steering client.
    let client_thread = std::thread::spawn(move || {
        let client = SteeringClient::new(Box::new(client_end));

        // Watch the initial flow.
        let (frame, rtt) = client.request_frame().expect("first frame");
        println!(
            "[client] frame at step {} ({}x{}, round trip {:.1} ms)",
            frame.step,
            frame.width,
            frame.height,
            rtt.as_secs_f64() * 1e3
        );

        // Steer: raise the inlet pressure, then compare.
        println!("[client] raising inlet pressure 1.01 → 1.03");
        client
            .send(&SteeringCommand::SetInletPressure { id: 0, rho: 1.03 })
            .unwrap();
        // Let the flow respond, then look again.
        let mut speeds = Vec::new();
        for _ in 0..3 {
            let (_, statuses) = {
                client.send(&SteeringCommand::RequestFrame).unwrap();
                client.wait_for_image().expect("steered frame")
            };
            if let Some(s) = statuses.last() {
                println!(
                    "[client] step {}: max speed {:.4}, mass {:.1}, residual {:.2e}, problems: {:?}",
                    s.step, s.max_speed, s.mass, s.residual, s.problems
                );
                speeds.push(s.max_speed);
            }
        }
        assert!(
            speeds.last().unwrap() > speeds.first().unwrap(),
            "higher inlet pressure must speed the flow up: {speeds:?}"
        );
        println!("[client] flow responded to steering; pausing, then terminating");
        client.send(&SteeringCommand::Pause).unwrap();
        client.send(&SteeringCommand::RequestFrame).unwrap();
        let (paused_frame, _) = client.wait_for_image().expect("paused frame");
        println!("[client] frame while paused at step {}", paused_frame.step);
        client.send(&SteeringCommand::Terminate).unwrap();
        while let Ok(msg) = client.recv() {
            if let ServerMessage::Status(s) = msg {
                println!("[client] final status at step {}", s.step);
            }
        }
    });

    let geo2 = geo.clone();
    let results = run_spmd(RANKS, move |comm| {
        let transport = if comm.is_master() {
            server_slot.lock().take()
        } else {
            None
        };
        let owner: Vec<usize> = (0..geo2.fluid_count() as u32)
            .map(|s| {
                (geo2.position(s)[0] as usize * comm.size() / geo2.shape()[0]).min(comm.size() - 1)
            })
            .collect();
        run_closed_loop(
            geo2.clone(),
            owner,
            SolverConfig::pressure_driven(1.01, 0.99).with_tau(0.8),
            comm,
            transport,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (256, 192),
                initial_vis_rate: u32::MAX, // frames on request only
                steps_per_cycle: 20,
                vis_aware_repartition: false,
                ..Default::default()
            },
        )
        .expect("closed loop")
    });
    client_thread.join().expect("client script");

    let master = &results[0];
    println!(
        "[sim] {} steps, {} frames, {} commands, terminated by client: {}, steering traffic {} B",
        master.steps_done,
        master.frames_rendered,
        master.commands_applied,
        master.terminated_by_client,
        master.steering_bytes
    );
    assert!(master.terminated_by_client);
}
