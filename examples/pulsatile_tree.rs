//! A physiological scenario on a synthetic arterial tree: pulsatile
//! (cardiac-cycle) inflow through a bifurcating vessel network, solved
//! distributedly with MRT collisions, with in situ streak-lines and
//! vortex feature extraction riding along — the paper's full menu on a
//! multi-outlet geometry.
//!
//! ```sh
//! cargo run --release --example pulsatile_tree
//! ```

use hemelb::core::boundary::IoletBc;
use hemelb::core::collision::CollisionKind;
use hemelb::core::solver::ModelKind;
use hemelb::core::{DistSolver, SolverConfig};
use hemelb::geometry::{Vec3, VesselBuilder};
use hemelb::insitu::features::swirling_regions;
use hemelb::insitu::field::SampledField;
use hemelb::insitu::unsteady::DistStreaklines;
use hemelb::parallel::{run_spmd_with_stats, TagClass, WireReader, WireWriter};
use std::sync::Arc;

const RANKS: usize = 4;
const PERIOD: u64 = 200;

fn main() {
    // A three-generation arterial tree: one inlet, four outlets.
    let tree = VesselBuilder::arterial_tree(3, 14.0, 4.0);
    let geo = Arc::new(tree.voxelise(0.8));
    let outlets = geo.outlets().len();
    println!(
        "arterial tree: {} fluid sites, 1 inlet, {} outlets, {:.1}% of box",
        geo.fluid_count(),
        outlets,
        geo.fluid_fraction() * 100.0
    );

    let cfg = SolverConfig {
        model: ModelKind::D3Q15,
        tau: 0.7,
        collision: CollisionKind::Mrt { omega_ghost: 1.2 },
        inlet_bcs: vec![IoletBc::Pulsatile {
            peak: 0.04,
            parabolic: true,
            amplitude: 0.7,
            period: PERIOD,
        }],
        outlet_bcs: vec![IoletBc::Pressure { rho: 1.0 }],
        layout: Default::default(),
        overlap: true,
    };

    let geo2 = geo.clone();
    let out = run_spmd_with_stats(RANKS, move |comm| {
        let owner: Vec<usize> = (0..geo2.fluid_count() as u32)
            .map(|s| {
                (geo2.position(s)[0] as usize * comm.size() / geo2.shape()[0]).min(comm.size() - 1)
            })
            .collect();
        let mut solver = DistSolver::new(geo2.clone(), owner.clone(), cfg.clone(), comm).unwrap();

        // Streak-line seeds: a 3×3 rake around the centroid of the
        // actual inlet sites (the geometry sits offset inside its padded
        // bounding box, so derive coordinates from the site kinds).
        let inlet_centroid = {
            let mut sum = [0.0f64; 3];
            let mut n = 0.0;
            for i in 0..geo2.fluid_count() as u32 {
                if matches!(geo2.kind(i), hemelb::geometry::SiteKind::Inlet(_)) {
                    let p = geo2.position(i);
                    for a in 0..3 {
                        sum[a] += p[a] as f64;
                    }
                    n += 1.0;
                }
            }
            [sum[0] / n, sum[1] / n, sum[2] / n]
        };
        let seeds: Vec<Vec3> = (0..9)
            .map(|i| {
                Vec3::new(
                    inlet_centroid[0] + 1.0,
                    inlet_centroid[1] + ((i % 3) as f64 - 1.0) * 1.2,
                    inlet_centroid[2] + ((i / 3) as f64 - 1.0) * 1.2,
                )
            })
            .collect();
        let mut streaks = DistStreaklines::new(comm, &owner, seeds, 1.0);

        // One full cardiac cycle with in situ tracing per step; the
        // tracers sample the *global* field view, refreshed every 20
        // steps via gather+broadcast (kept simple for the example).
        let mut mean_speeds = Vec::new();
        for burst in 0..(PERIOD / 20) {
            solver.step_n(20).unwrap();
            let full = broadcast_snapshot(comm, &solver, &geo2);
            let field = SampledField::new(&geo2, &full);
            for _ in 0..20 {
                streaks.step(&geo2, &field).unwrap();
            }
            let mean: f64 = (0..full.len()).map(|i| full.speed(i)).sum::<f64>() / full.len() as f64;
            mean_speeds.push(mean);
            let _ = burst;
        }

        // Feature extraction on the final field (master only prints).
        let full = broadcast_snapshot(comm, &solver, &geo2);
        let report = if comm.is_master() {
            // Threshold at 3× the median vorticity: structures, not shear.
            let w = hemelb::insitu::features::vorticity(&geo2, &full);
            let mut mags: Vec<f64> = w
                .iter()
                .map(|&v| hemelb::insitu::features::vorticity_magnitude(v))
                .collect();
            mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let thr = (mags[mags.len() / 2] * 2.0).max(1e-9);
            Some(swirling_regions(&geo2, &full, thr, 4))
        } else {
            None
        };
        let live = streaks.global_live().unwrap();
        (mean_speeds, live, report)
    });

    let (speeds, live, report) = &out.results[0];
    let max = speeds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "one cardiac cycle: mean speed oscillates {min:.5} → {max:.5} ({} samples)",
        speeds.len()
    );
    assert!(max > min * 1.2, "pulsation visible");
    println!("streak particles alive at cycle end: {live}");
    if let Some(report) = report {
        println!(
            "vortex regions (|ω| > {:.1e}): {}",
            report.threshold,
            report.features.len()
        );
        for (i, f) in report.features.iter().take(3).enumerate() {
            println!(
                "  #{i}: {} sites near ({:.0}, {:.0}, {:.0})",
                f.sites, f.centroid[0], f.centroid[1], f.centroid[2]
            );
        }
    }
    println!(
        "traffic: halo {} B, vis {} B",
        out.summary.total.bytes(TagClass::Halo),
        out.summary.total.bytes(TagClass::Visualisation),
    );
}

/// Gather the global snapshot at rank 0 and broadcast it (example-grade
/// field replication for the tracers).
fn broadcast_snapshot(
    comm: &hemelb::parallel::Communicator,
    solver: &DistSolver,
    geo: &hemelb::geometry::SparseGeometry,
) -> hemelb::core::FieldSnapshot {
    let gathered = solver.gather_snapshot().unwrap();
    let payload = gathered.map(|s| {
        let mut w = WireWriter::new();
        w.put_u64(s.step);
        w.put_f64_slice(&s.rho);
        w.put_usize(s.u.len());
        for u in &s.u {
            w.put(&[u[0], u[1], u[2]]);
        }
        w.put_f64_slice(&s.shear);
        w.finish()
    });
    let data = comm.broadcast(0, payload).unwrap();
    let mut r = WireReader::new(data);
    let step = r.get_u64().unwrap();
    let rho = r.get_f64_vec().unwrap();
    let nu = r.get_usize().unwrap();
    let mut u = Vec::with_capacity(nu);
    for _ in 0..nu {
        let a: [f64; 3] = r.get().unwrap();
        u.push(a);
    }
    let shear = r.get_f64_vec().unwrap();
    let _ = geo;
    hemelb::core::FieldSnapshot {
        step,
        rho,
        u,
        shear,
    }
}
