//! Quickstart: build a vessel, run the lattice-Boltzmann solver, check
//! the physics, render a picture.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hemelb::core::{Solver, SolverConfig, UnitConverter};
use hemelb::geometry::{Vec3, VesselBuilder};
use hemelb::insitu::camera::Camera;
use hemelb::insitu::field::{SampledField, Scalar};
use hemelb::insitu::transfer::TransferFunction;
use hemelb::insitu::volume::render_full;
use std::sync::Arc;

fn main() {
    // 1. Geometry: a straight vessel, 24 lattice units long, radius 5.
    let geo = Arc::new(VesselBuilder::straight_tube(24.0, 5.0).voxelise(1.0));
    println!(
        "geometry: {} fluid sites in a {:?} box ({:.1}% fluid)",
        geo.fluid_count(),
        geo.shape(),
        geo.fluid_fraction() * 100.0
    );

    // 2. Physical units: 50 µm cells, blood viscosity, τ chosen for
    //    stability at arterial speeds.
    let units = UnitConverter::for_viscosity(50e-6, 3.3e-6, 0.55, 1050.0);
    println!(
        "units: dx = {:.1} µm, dt = {:.2} µs",
        units.dx * 1e6,
        units.dt * 1e6
    );

    // 3. Solve a pressure-driven flow to steady state.
    let cfg = SolverConfig::pressure_driven(1.005, 0.995).with_tau(0.55);
    let mut solver = Solver::new(geo.clone(), cfg);
    let (converged, steps, residual) = solver.run_to_steady_state(1e-9, 100, 20_000);
    let snap = solver.snapshot();
    println!("solved: converged={converged} after {steps} steps (residual {residual:.2e})");
    println!(
        "flow: max speed {:.4} lattice units = {:.3} m/s physical",
        snap.max_speed(),
        units.velocity_to_physical(snap.max_speed())
    );
    let problems = snap.validity_report();
    assert!(problems.is_empty(), "validity: {problems:?}");

    // 4. Wall shear stress — the paper's physiologically relevant field.
    let nu = solver.config().viscosity();
    let wss = snap.wall_shear_stress(&geo, nu);
    let max_wss = wss.iter().cloned().fold(0.0, f64::max);
    println!(
        "peak wall shear stress: {:.2e} lattice = {:.3} Pa physical",
        max_wss,
        units.stress_to_physical(max_wss)
    );

    // 5. Render the speed field to quickstart.ppm.
    let field = SampledField::new(&geo, &snap);
    let (lo, hi) = field.scalar_range(Scalar::Speed);
    let shape = geo.shape();
    let cam = Camera::framing(
        Vec3::ZERO,
        Vec3::new(shape[0] as f64, shape[1] as f64, shape[2] as f64),
        Vec3::new(0.2, -1.0, 0.25),
        400,
        300,
    );
    let tf = TransferFunction::heat(lo, hi.max(lo + 1e-9));
    let image = render_full(&geo, &snap, Scalar::Speed, &cam, &tf, 0.4).image;
    let path = std::path::Path::new("quickstart.ppm");
    image.write_ppm(path).expect("image written");
    println!(
        "wrote {} ({:.1}% of pixels covered)",
        path.display(),
        image.coverage() * 100.0
    );
}
