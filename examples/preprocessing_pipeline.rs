//! The pre-processing chain of the paper's §IV-B: write the two-level
//! geometry file, load it collectively with a subset of reading cores,
//! then compare domain decompositions (naive slabs vs space-filling
//! curves vs multilevel k-way) on the metrics that decide solver
//! scalability.
//!
//! ```sh
//! cargo run --release --example preprocessing_pipeline
//! ```

use hemelb::geometry::distio::read_distributed;
use hemelb::geometry::format::{read_header, write_sgmy};
use hemelb::geometry::VesselBuilder;
use hemelb::parallel::{run_spmd_with_stats, TagClass};
use hemelb::partition::graph::{Connectivity, SiteGraph};
use hemelb::partition::{
    quality, HilbertSfc, MortonSfc, MultilevelKWay, NaiveBlock, Partitioner, Rcb,
};
use std::sync::Arc;

fn main() {
    // 1. Build and serialise the geometry (normally done once, offline).
    let geo = Arc::new(VesselBuilder::aneurysm(28.0, 4.0, 6.0).voxelise(0.5));
    let mut buf = Vec::new();
    write_sgmy(&geo, 8, &mut buf).expect("serialise geometry");
    let path = std::env::temp_dir().join(format!("example_{}.sgmy", std::process::id()));
    std::fs::write(&path, &buf).expect("write geometry file");
    let header = read_header(&mut std::io::Cursor::new(&buf)).expect("header");
    println!(
        "wrote {}: {} sites, {} blocks ({} non-empty), {} bytes",
        path.display(),
        header.fluid_total,
        header.fluid_per_block.len(),
        header.fluid_per_block.iter().filter(|&&c| c > 0).count(),
        buf.len()
    );

    // 2. Distributed load with a subset of reading cores (§IV-B).
    println!("\nreading-core sweep (16 ranks):");
    println!(
        "{:>8} {:>22} {:>18}",
        "readers", "max file B per rank", "forwarded"
    );
    for readers in [1usize, 2, 4, 8, 16] {
        let path2 = path.clone();
        let out = run_spmd_with_stats(16, move |comm| {
            read_distributed(&path2, comm, readers)
                .unwrap()
                .file_bytes_read
        });
        println!(
            "{:>8} {:>22} {:>18}",
            readers,
            out.results.iter().max().unwrap(),
            out.summary.total.bytes(TagClass::Geometry)
        );
    }
    std::fs::remove_file(&path).ok();

    // 3. Partitioner comparison — the ParMETIS question.
    let graph = SiteGraph::from_geometry(&geo, Connectivity::D3Q15);
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(NaiveBlock),
        Box::new(MortonSfc),
        Box::new(HilbertSfc),
        Box::new(Rcb),
        Box::new(MultilevelKWay::default()),
    ];
    println!("\npartition quality at 16 parts ({} sites):", graph.len());
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>12}",
        "method", "imbalance", "edge cut", "comm volume", "max neighb."
    );
    for p in &partitioners {
        let t0 = std::time::Instant::now();
        let owner = p.partition(&graph, 16);
        let elapsed = t0.elapsed();
        let q = quality(&graph, &owner, 16);
        println!(
            "{:<10} {:>10.3} {:>10} {:>12} {:>12}   ({:.1} ms)",
            p.name(),
            q.imbalance,
            q.edge_cut,
            q.comm_volume,
            q.max_neighbours,
            elapsed.as_secs_f64() * 1e3,
        );
    }
    println!("\n(the multilevel k-way partitioner is this repository's ParMETIS stand-in)");
}
