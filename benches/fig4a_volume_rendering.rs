//! E5 bench: ray casting and sort-last compositing (Fig. 4a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hemelb::geometry::Vec3;
use hemelb::insitu::camera::Camera;
use hemelb::insitu::compositing::{binary_swap, direct_send};
use hemelb::insitu::field::Scalar;
use hemelb::insitu::transfer::TransferFunction;
use hemelb::insitu::volume::{render_brick, render_full, Brick};
use hemelb::parallel::run_spmd;
use hemelb_bench::workloads::{self, Size};

fn bench(c: &mut Criterion) {
    let geo = workloads::aneurysm(Size::Tiny);
    let snap = workloads::developed_flow(&geo, 150);
    let shape = geo.shape();
    let cam = Camera::framing(
        Vec3::ZERO,
        Vec3::new(shape[0] as f64, shape[1] as f64, shape[2] as f64),
        Vec3::new(0.15, -1.0, 0.25),
        256,
        192,
    );
    let tf = TransferFunction::heat(0.0, snap.max_speed().max(1e-9));

    let mut g = c.benchmark_group("fig4a");
    g.sample_size(10);
    g.bench_function("ray_cast_256x192", |b| {
        b.iter(|| render_full(&geo, &snap, Scalar::Speed, &cam, &tf, 0.5))
    });
    for p in [2usize, 4] {
        let geo2 = geo.clone();
        let snap2 = snap.clone();
        let cam2 = cam;
        let tf2 = tf.clone();
        g.bench_with_input(BenchmarkId::new("binary_swap", p), &p, |b, &p| {
            b.iter(|| {
                let geo3 = geo2.clone();
                let snap3 = snap2.clone();
                let tf3 = tf2.clone();
                run_spmd(p, move |comm| {
                    let mine: Vec<u32> = (0..geo3.fluid_count() as u32)
                        .filter(|&s| s as usize * p / geo3.fluid_count() == comm.rank())
                        .collect();
                    let partial = match Brick::from_sites(&geo3, &snap3, Scalar::Speed, &mine) {
                        Some(br) => render_brick(&br, &cam2, &tf3, 0.5),
                        None => hemelb::insitu::image::PartialImage::new(cam2.width, cam2.height),
                    };
                    binary_swap(comm, partial).unwrap()
                })
            })
        });
        let geo2 = geo.clone();
        let snap2 = snap.clone();
        let tf2 = tf.clone();
        g.bench_with_input(BenchmarkId::new("direct_send", p), &p, |b, &p| {
            b.iter(|| {
                let geo3 = geo2.clone();
                let snap3 = snap2.clone();
                let tf3 = tf2.clone();
                run_spmd(p, move |comm| {
                    let mine: Vec<u32> = (0..geo3.fluid_count() as u32)
                        .filter(|&s| s as usize * p / geo3.fluid_count() == comm.rank())
                        .collect();
                    let partial = match Brick::from_sites(&geo3, &snap3, Scalar::Speed, &mine) {
                        Some(br) => render_brick(&br, &cam2, &tf3, 0.5),
                        None => hemelb::insitu::image::PartialImage::new(cam2.width, cam2.height),
                    };
                    direct_send(comm, partial).unwrap()
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
