//! E1 bench: one frame of each Table I technique on the same flow and
//! decomposition (4 ranks, tiny aneurysm).

use criterion::{criterion_group, criterion_main, Criterion};
use hemelb_bench::workloads::{self, Size};
use hemelb_insitu::report::{
    measure_lic, measure_lines, measure_particles, measure_volume, TechniqueInputs,
};
use std::sync::Arc;

fn inputs() -> TechniqueInputs {
    let geo = workloads::aneurysm(Size::Tiny);
    let snap = workloads::developed_flow(&geo, 150);
    let owner = Arc::new(workloads::slab_owner(&geo, 4));
    let seeds = Arc::new(workloads::inlet_seeds(&geo, 16));
    TechniqueInputs {
        lic_plane_z: workloads::find_axis_z(&geo),
        trace: hemelb_insitu::lines::TraceConfig {
            h: 1.0,
            max_steps: 1500,
            min_speed: 1e-8,
        },
        geo,
        snap,
        owner,
        ranks: 4,
        image: (96, 72),
        seeds,
        particle_steps: 100,
    }
}

fn bench(c: &mut Criterion) {
    let inp = inputs();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("volume_rendering_frame", |b| {
        b.iter(|| measure_volume(&inp))
    });
    g.bench_function("line_integrals_frame", |b| b.iter(|| measure_lines(&inp)));
    g.bench_function("particle_tracing_run", |b| {
        b.iter(|| measure_particles(&inp))
    });
    g.bench_function("lic_frame", |b| b.iter(|| measure_lic(&inp)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
