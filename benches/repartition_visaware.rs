//! E10 bench: partitioners and the vis-aware multi-constraint rebalance.

use criterion::{criterion_group, criterion_main, Criterion};
use hemelb::partition::graph::{Connectivity, SiteGraph};
use hemelb::partition::visaware::{rebalance, synthetic_view_weights};
use hemelb::partition::{HilbertSfc, MultilevelKWay, NaiveBlock, Partitioner, Rcb};
use hemelb_bench::workloads::{self, Size};

fn bench(c: &mut Criterion) {
    let geo = workloads::aneurysm(Size::Tiny);
    let graph = SiteGraph::from_geometry(&geo, Connectivity::D3Q15);

    let mut g = c.benchmark_group("partition");
    g.sample_size(10);
    g.bench_function("naive_8", |b| b.iter(|| NaiveBlock.partition(&graph, 8)));
    g.bench_function("hilbert_8", |b| b.iter(|| HilbertSfc.partition(&graph, 8)));
    g.bench_function("rcb_8", |b| b.iter(|| Rcb.partition(&graph, 8)));
    g.bench_function("kway_8", |b| {
        b.iter(|| MultilevelKWay::default().partition(&graph, 8))
    });

    let owner = MultilevelKWay::default().partition(&graph, 8);
    let w2 = synthetic_view_weights(&graph, [1.0, 0.0, 0.0], 0.3);
    let g2 = graph.clone().with_secondary_weights(w2);
    g.bench_function("visaware_rebalance_8", |b| {
        b.iter(|| rebalance(&g2, &owner, 8, 0.1, 30).unwrap().moved_vertices)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
