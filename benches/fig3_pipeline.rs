//! E4 bench: the extract→filter→map→render pipeline, full vs
//! octree-reduced (Fig. 3).

use criterion::{criterion_group, criterion_main, Criterion};
use hemelb_bench::fig3;
use hemelb_bench::workloads::Size;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("pipeline_full_and_reduced", |b| {
        b.iter(|| fig3::run(Size::Tiny, 3, (64, 48)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
