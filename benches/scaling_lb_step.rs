//! E7 bench: the distributed LB time step across rank counts and
//! partitioners — the core strong-scaling measurement — plus the
//! serial-vs-thread-parallel kernel comparison (site-updates/sec via
//! the element throughput). Note: parallel numbers only beat serial
//! when the host actually has spare cores; on a single-core box the
//! thread-count sweep measures pure overhead, which is itself a useful
//! number. Results are bit-identical either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hemelb::core::{DistSolver, KernelLayout, ParallelSolver, Solver, SolverConfig};
use hemelb::parallel::run_spmd;
use hemelb_bench::workloads::{self, Size};

fn bench(c: &mut Criterion) {
    let geo = workloads::aneurysm(Size::Tiny);
    let sites = geo.fluid_count() as u64;

    let mut g = c.benchmark_group("lb_step");
    g.sample_size(10);
    g.throughput(Throughput::Elements(sites));
    for (name, layout) in [
        ("serial", KernelLayout::Legacy),
        ("serial_soa_scalar", KernelLayout::SoaScalar),
        ("serial_soa_simd", KernelLayout::SoaSimd),
    ] {
        g.bench_function(name, |b| {
            let cfg = SolverConfig::pressure_driven(1.01, 0.99).with_layout(layout);
            let mut solver = Solver::new(geo.clone(), cfg);
            b.iter(|| solver.step());
        });
    }
    for t in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("threaded", t), &t, |b, &t| {
            let mut solver =
                ParallelSolver::new(geo.clone(), SolverConfig::pressure_driven(1.01, 0.99), t);
            b.iter(|| solver.step());
        });
    }
    for p in [2usize, 4, 8] {
        for (name, owner) in [
            ("slab", workloads::slab_owner(&geo, p)),
            ("kway", workloads::kway_owner(&geo, p)),
        ] {
            let geo2 = geo.clone();
            g.bench_with_input(BenchmarkId::new(format!("dist_{name}"), p), &p, |b, &p| {
                b.iter(|| {
                    let geo3 = geo2.clone();
                    let owner3 = owner.clone();
                    // 10 steps per iteration amortise construction.
                    run_spmd(p, move |comm| {
                        let mut s = DistSolver::new(
                            geo3.clone(),
                            owner3.clone(),
                            SolverConfig::pressure_driven(1.01, 0.99),
                            comm,
                        )
                        .unwrap();
                        s.step_n(10).unwrap();
                    })
                })
            });
        }
        // Overlapped vs synchronous halo exchange at the same
        // decomposition (E18 measures the wait breakdown; this row
        // tracks the raw step-time difference).
        for (name, overlap) in [("dist_overlap", true), ("dist_sync", false)] {
            let geo2 = geo.clone();
            let owner = workloads::slab_owner(&geo, p);
            g.bench_with_input(BenchmarkId::new(name, p), &p, |b, &p| {
                b.iter(|| {
                    let geo3 = geo2.clone();
                    let owner3 = owner.clone();
                    run_spmd(p, move |comm| {
                        let cfg = SolverConfig::pressure_driven(1.01, 0.99).with_overlap(overlap);
                        let mut s =
                            DistSolver::new(geo3.clone(), owner3.clone(), cfg, comm).unwrap();
                        s.step_n(10).unwrap();
                    })
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
