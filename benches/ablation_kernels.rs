//! Ablation bench: design choices the DESIGN.md calls out — collision
//! kernel (LBGK vs TRT), velocity set (D3Q15 vs D3Q19), kernel memory
//! layout (legacy brick vs SoA site list) and lattice resolution —
//! measured on the LB step they affect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hemelb::core::collision::CollisionKind;
use hemelb::core::solver::ModelKind;
use hemelb::core::{KernelLayout, Solver, SolverConfig};
use hemelb_bench::workloads::{self, Size};

fn bench(c: &mut Criterion) {
    let geo = workloads::aneurysm(Size::Tiny);
    let sites = geo.fluid_count() as u64;

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.throughput(Throughput::Elements(sites));

    for (name, kind) in [
        ("bgk", CollisionKind::Bgk),
        ("trt", CollisionKind::trt_magic()),
        ("mrt", CollisionKind::Mrt { omega_ghost: 1.2 }),
    ] {
        g.bench_with_input(BenchmarkId::new("collision", name), &kind, |b, &kind| {
            let mut solver = Solver::new(
                geo.clone(),
                SolverConfig::pressure_driven(1.01, 0.99).with_collision(kind),
            );
            b.iter(|| solver.step());
        });
    }

    for (name, layout) in [
        ("legacy", KernelLayout::Legacy),
        ("soa_scalar", KernelLayout::SoaScalar),
        ("soa_simd", KernelLayout::SoaSimd),
    ] {
        g.bench_with_input(BenchmarkId::new("layout", name), &layout, |b, &layout| {
            let mut solver = Solver::new(
                geo.clone(),
                SolverConfig::pressure_driven(1.01, 0.99).with_layout(layout),
            );
            b.iter(|| solver.step());
        });
    }

    for (name, model) in [("d3q15", ModelKind::D3Q15), ("d3q19", ModelKind::D3Q19)] {
        g.bench_with_input(BenchmarkId::new("lattice", name), &model, |b, &model| {
            let mut solver = Solver::new(
                geo.clone(),
                SolverConfig::pressure_driven(1.01, 0.99).with_model(model),
            );
            b.iter(|| solver.step());
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_resolution");
    g.sample_size(10);
    for size in [Size::Tiny, Size::Small] {
        let geo = workloads::aneurysm(size);
        g.throughput(Throughput::Elements(geo.fluid_count() as u64));
        g.bench_with_input(
            BenchmarkId::new("lb_step", geo.fluid_count()),
            &geo,
            |b, geo| {
                let mut solver =
                    Solver::new(geo.clone(), SolverConfig::pressure_driven(1.01, 0.99));
                b.iter(|| solver.step());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
