//! E3 bench: steering protocol costs and one full closed-loop frame
//! round trip (Fig. 2).

use criterion::{criterion_group, criterion_main, Criterion};
use hemelb::steering::{ImageFrame, SteeringCommand};
use hemelb_bench::fig2;
use hemelb_bench::workloads::Size;
use hemelb_parallel::Wire;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("command_encode_decode", |b| {
        let cmd = SteeringCommand::SetCamera {
            eye: [1.0, 2.0, 3.0],
            target: [0.0; 3],
            up: [0.0, 0.0, 1.0],
            fov_y: 0.8,
        };
        b.iter(|| {
            let bytes = cmd.to_bytes();
            SteeringCommand::from_bytes(bytes).unwrap()
        })
    });
    g.bench_function("image_frame_encode_128x96", |b| {
        let frame = ImageFrame {
            step: 0,
            width: 128,
            height: 96,
            rgb: vec![127; 128 * 96 * 3],
        };
        b.iter(|| frame.to_bytes())
    });
    g.bench_function("closed_loop_frame_roundtrip_2ranks", |b| {
        b.iter(|| fig2::run(Size::Tiny, &[(2, (32, 24))], 1))
    });
    g.finish();

    // Observability row: the steering round-trip latency distribution
    // of one measured sweep, printed alongside the criterion numbers.
    let result = fig2::run(Size::Tiny, &[(2, (32, 24))], 5);
    let h = result.rows[0].rtt_histogram();
    println!(
        "fig2/observability: steering RTT over {} rounds: p50 {}, p95 {}, max {}",
        h.count(),
        hemelb::obs::fmt_secs(h.p50()),
        hemelb::obs::fmt_secs(h.p95()),
        hemelb::obs::fmt_secs(h.max()),
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
