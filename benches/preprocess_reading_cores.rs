//! E8 bench: distributed two-level geometry load across reading-core
//! counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hemelb::geometry::distio::read_distributed;
use hemelb::geometry::format::write_sgmy;
use hemelb::parallel::run_spmd;
use hemelb_bench::workloads::{self, Size};

fn bench(c: &mut Criterion) {
    let geo = workloads::aneurysm(Size::Tiny);
    let mut buf = Vec::new();
    write_sgmy(&geo, 8, &mut buf).unwrap();
    let path = std::env::temp_dir().join(format!("bench_e8_{}.sgmy", std::process::id()));
    std::fs::write(&path, &buf).unwrap();

    let mut g = c.benchmark_group("preprocess");
    g.sample_size(10);
    for readers in [1usize, 2, 8] {
        let path2 = path.clone();
        g.bench_with_input(
            BenchmarkId::new("read_distributed_8ranks", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    let path3 = path2.clone();
                    run_spmd(8, move |comm| {
                        read_distributed(&path3, comm, readers)
                            .unwrap()
                            .my_sites
                            .len()
                    })
                })
            },
        );
    }
    g.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
