//! E6 bench: streamline tracing, serial and distributed with hand-off
//! (Fig. 4b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hemelb::insitu::field::SampledField;
use hemelb::insitu::lines::{trace_distributed, trace_streamline, TraceConfig};
use hemelb::parallel::run_spmd;
use hemelb_bench::workloads::{self, Size};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let geo = workloads::aneurysm(Size::Tiny);
    let snap = workloads::developed_flow(&geo, 150);
    let seeds = Arc::new(workloads::inlet_seeds(&geo, 16));
    let cfg = TraceConfig {
        h: 0.5,
        max_steps: 2000,
        min_speed: 1e-9,
    };

    let mut g = c.benchmark_group("fig4b");
    g.sample_size(10);
    g.bench_function("serial_16_streamlines", |b| {
        let field = SampledField::new(&geo, &snap);
        b.iter(|| {
            seeds
                .iter()
                .map(|&s| trace_streamline(&field, s, &cfg).len())
                .sum::<usize>()
        })
    });
    for p in [2usize, 4] {
        let geo2 = geo.clone();
        let snap2 = snap.clone();
        let seeds2 = seeds.clone();
        g.bench_with_input(BenchmarkId::new("distributed_handoff", p), &p, |b, &p| {
            b.iter(|| {
                let geo3 = geo2.clone();
                let snap3 = snap2.clone();
                let seeds3 = seeds2.clone();
                run_spmd(p, move |comm| {
                    let owner = workloads::slab_owner(&geo3, comm.size());
                    let field = SampledField::new(&geo3, &snap3);
                    trace_distributed(comm, &geo3, &field, &owner, &seeds3, &cfg)
                        .unwrap()
                        .1
                        .steps_computed
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
