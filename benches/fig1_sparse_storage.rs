//! E2 bench: voxelisation and sparse-vs-dense accounting (Fig. 1).

use criterion::{criterion_group, criterion_main, Criterion};
use hemelb::geometry::blocks::BlockDecomposition;
use hemelb::geometry::VesselBuilder;
use hemelb_bench::workloads::{self, Size};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("voxelise_aneurysm_tiny", |b| {
        b.iter(|| VesselBuilder::aneurysm(28.0, 4.0, 6.0).voxelise(1.0))
    });
    let geo = workloads::aneurysm(Size::Small);
    g.bench_function("block_decomposition", |b| {
        b.iter(|| BlockDecomposition::build(&geo, 8))
    });
    g.bench_function("storage_comparison", |b| {
        b.iter(|| geo.storage_comparison(248))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
