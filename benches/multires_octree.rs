//! E9 bench: octree construction, refresh, cuts and ROI queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hemelb::octree::roi::{Roi, RoiCut};
use hemelb::octree::{FieldOctree, StreamOrder};
use hemelb_bench::workloads::{self, Size};

fn bench(c: &mut Criterion) {
    let geo = workloads::aneurysm(Size::Small);
    let snap = workloads::developed_flow(&geo, 100);
    let speed: Vec<f64> = (0..snap.len()).map(|i| snap.speed(i)).collect();
    let tree = FieldOctree::build(&geo, &speed);

    let mut g = c.benchmark_group("octree");
    g.sample_size(10);
    g.bench_function("build", |b| b.iter(|| FieldOctree::build(&geo, &speed)));
    g.bench_function("refresh", |b| {
        let mut t = tree.clone();
        b.iter(|| t.refresh(&geo, &speed))
    });
    for level in [1u8, 3, tree.depth()] {
        g.bench_with_input(BenchmarkId::new("cut", level), &level, |b, &level| {
            b.iter(|| tree.cut_at_level(level).len())
        });
    }
    g.bench_function("stream_order", |b| b.iter(|| StreamOrder::build(&tree)));
    let shape = geo.shape();
    let roi = Roi {
        lo: [shape[0] as u32 / 3, 0, shape[2] as u32 / 2],
        hi: [2 * shape[0] as u32 / 3, shape[1] as u32, shape[2] as u32],
    };
    g.bench_function("roi_cut", |b| {
        b.iter(|| RoiCut::build(&tree, roi, 2, tree.depth()).nodes.len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
