#!/usr/bin/env bash
# CI gate for hemelb-insitu-rs, in tiers composed of stage groups:
#
#   ./ci.sh --quick        # lint + tier1: format, clippy, release
#                          #   build, root-package tests
#   ./ci.sh                # + determinism, kernel-layout, obs, render,
#                          #   fault-injection, farm and projection
#                          #   suites + bench smokes, each gated against
#                          #   the blessed baselines under
#                          #   benches/baselines/
#   ./ci.sh --soak         # + long soaks: golden --ignored, the
#                          #   500-step SoA kernel soak, the 200-step
#                          #   two-kill fault recovery and the farm
#                          #   kill/restart soak
#   ./ci.sh --only GROUP   # one group (what the staged GitHub workflow
#                          #   jobs shell into)
#
# The bench-gate group re-runs any missing smoke at the CI sizes and
# diffs every gated out/BENCH_*.json against benches/baselines/ — see
# crates/bench/src/gate.rs for metric classes and tolerances. Re-bless
# after an intentional perf change with:
#
#   ./ci.sh --only bench-gate            # fails, showing the drift
#   CI_GATE_BLESS=1 cargo run --release -q -p hemelb-bench --bin ci-gate
#
# Each stage is timed; a per-stage summary prints on exit (also on
# failure, so CI logs show where the time — or the break — went).
set -euo pipefail
cd "$(dirname "$0")"

# The single source of truth for group names: the default tier runs
# them in this order, and `--only` accepts exactly these (plus soak).
CI_GROUPS_ALL=(lint tier1 determinism kernel overlap faults gateway farm projection smoke bench-gate)
usage_groups() { (IFS='|'; echo "${CI_GROUPS_ALL[*]}|soak"); }

TIER="full"
CI_GROUPS=("${CI_GROUPS_ALL[@]}")
case "${1:-}" in
    --quick) TIER="quick"; CI_GROUPS=(lint tier1) ;;
    --soak)  TIER="soak";  CI_GROUPS+=(soak) ;;
    --only)
        TIER="only:${2:-}"
        ok=0
        for g in "${CI_GROUPS_ALL[@]}" soak; do
            [[ "${2:-}" == "$g" ]] && ok=1
        done
        if [[ $ok -eq 1 ]]; then
            CI_GROUPS=("$2")
        else
            echo "usage: ./ci.sh --only {$(usage_groups)}" >&2; exit 2
        fi ;;
    "") ;;
    *) echo "usage: ./ci.sh [--quick|--soak|--only GROUP]  (GROUP: $(usage_groups))" >&2; exit 2 ;;
esac

STAGE_NAMES=()
STAGE_SECS=()
summary() {
    local status=$?
    echo
    echo "==> ci.sh stage timings (tier: $TIER)"
    local i total=0
    for i in "${!STAGE_NAMES[@]}"; do
        printf '    %-28s %4ss\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
        total=$((total + STAGE_SECS[i]))
    done
    printf '    %-28s %4ss\n' "total" "$total"
    if [[ $status -eq 0 ]]; then
        echo "==> ci.sh: all green"
    else
        echo "==> ci.sh: FAILED (exit $status)" >&2
    fi
}
trap summary EXIT

stage() {
    local name=$1
    shift
    echo "==> [$name] $*"
    local t0=$SECONDS
    "$@"
    STAGE_NAMES+=("$name")
    STAGE_SECS+=($((SECONDS - t0)))
}

# Fail fast, with a pointer, when a stage needs bench reports that were
# never produced (e.g. `--only smoke` artifacts expected but no smoke
# ran, or a gate invoked on a clean tree).
ensure_out() {
    if ! compgen -G "out/BENCH_*.json" > /dev/null; then
        echo "==> out/ has no BENCH_*.json — run the bench smokes first" >&2
        echo "    (./ci.sh --only overlap|gateway|farm|smoke, or ./ci.sh)" >&2
        exit 1
    fi
}

# The gated bench labels and the exact CI-size smoke that produces each
# report — the baselines under benches/baselines/ are blessed at these
# sizes, so gate comparisons are size-for-size.
gated_smoke() {
    case "$1" in
        kernel)  echo "kernel --size tiny" ;;
        overlap) echo "overlap --size tiny --ranks 2" ;;
        gateway) echo "gateway --size tiny --ranks 2" ;;
        farm)    echo "farm --size tiny --ranks 2" ;;
        projection) echo "projection --size tiny --ranks 4" ;;
        *) echo "unknown gated label $1" >&2; exit 2 ;;
    esac
}

# Diff one fresh out/BENCH_<label>.json against its blessed baseline.
gate() {
    stage "$1-gate" cargo run --release -q -p hemelb-bench --bin ci-gate -- "$1"
}

# Format + lint.
group_lint() {
    stage fmt    cargo fmt --all -- --check
    stage clippy cargo clippy --workspace --all-targets -- -D warnings
}

# Tier-1 (ROADMAP): release build + the root-package test suite.
group_tier1() {
    stage build cargo build --release
    stage test  cargo test -q
}

# Determinism suite (bit-exactness proptests + golden fixtures),
# observability (phase timings end to end, lossless JSON export) and
# the render path (macrocell marcher bit-identity, sparse compositing).
group_determinism() {
    stage determinism cargo test -q --test properties --test golden
    stage obs         cargo test -q --test obs_smoke
    stage render      cargo test -q --test render_compositing
}

# Kernel memory layouts: legacy / SoA-scalar / SoA-SIMD bitwise
# equivalence across operators and boundary conditions, mid-run
# checkpoint hand-off between layouts, and the corrupted-streaming-index
# negative test against the golden digests.
group_kernel() {
    stage kernel cargo test -q --test kernel_layout
}

# Overlapped halo exchange: classifier per-orientation suite, the
# overlapped == sync == serial bitwise equivalence proptests (incl.
# checkpoint hand-off between schedules and injected delays), the E18
# smoke writing out/BENCH_overlap.json, and its regression gate.
group_overlap() {
    stage overlap cargo test -q --test overlap
    # shellcheck disable=SC2046
    stage overlap-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- $(gated_smoke overlap)
    gate overlap
}

# Fault injection: benign-fault transparency, kill/checkpoint replay,
# degraded frames under a dead render rank, steering reconnect.
group_faults() {
    stage faults cargo test -q --test fault_injection
}

# Multi-client steering gateway: observer churn bit-exactness,
# deterministic driver hand-off, the wedged-observer degradation
# ladder, the E17 load-test smoke (≥100 synthetic observers, frame RTT
# p50/p99, broadcast fan-out, cache hit rate) writing
# out/BENCH_gateway.json, and its regression gate.
group_gateway() {
    stage gateway cargo test -q --test steering_gateway
    # shellcheck disable=SC2046
    stage gateway-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- $(gated_smoke gateway)
    gate gateway
}

# Simulation farm: scheduler determinism proptest, fair-share
# no-starvation, kill/restart bit-exactness with neighbour isolation,
# bounded retry/backoff, the E19 saturation smoke writing
# out/BENCH_farm.json, and its regression gate.
group_farm() {
    stage farm cargo test -q --test farm
    # shellcheck disable=SC2046
    stage farm-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- $(gated_smoke farm)
    gate farm
}

# Calibrated α–β–γ cost model + 1k–32k rank projection: the fit and
# projector unit tests run under tier1; here the E20 smoke calibrates
# on real measured worlds, asserts the validation band in-bench
# (predicted vs measured small-world step times), writes
# out/BENCH_projection.json, and gates it against the blessed baseline.
group_projection() {
    # shellcheck disable=SC2046
    stage projection-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- $(gated_smoke projection)
    gate projection
}

# Release bench smokes, exercising the reproduce binary end to end:
# E13 (render), E14 (faults), E15 (adaptive LB) and E16 (kernel
# layouts) also write out/BENCH_*.json; the kernel report is gated.
group_smoke() {
    stage render-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- render --size small --ranks 2
    stage faults-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- faults --size tiny --ranks 3
    stage adaptive-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- adaptive --size tiny --ranks 3
    # shellcheck disable=SC2046
    stage kernel-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- $(gated_smoke kernel)
    ensure_out
    gate kernel
}

# Standalone regression gate: regenerate any gated report that is
# missing at the CI sizes, then diff all four against the baselines.
group_bench_gate() {
    local label
    for label in kernel overlap gateway farm projection; do
        if [[ ! -f "out/BENCH_${label}.json" ]]; then
            # shellcheck disable=SC2046
            stage "$label-smoke" cargo run --release -q -p hemelb-bench --bin reproduce -- $(gated_smoke "$label")
        fi
    done
    ensure_out
    stage bench-gate cargo run --release -q -p hemelb-bench --bin ci-gate -- kernel overlap gateway farm projection
}

# Long soaks.
group_soak() {
    stage golden-soak cargo test -q --test golden -- --ignored
    stage kernel-soak cargo test -q --test kernel_layout -- --ignored
    stage fault-soak  cargo test -q --test fault_injection -- --ignored
    stage farm-soak   cargo test -q --test farm -- --ignored
}

for g in "${CI_GROUPS[@]}"; do
    "group_${g//-/_}"
done
