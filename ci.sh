#!/usr/bin/env bash
# CI gate for hemelb-insitu-rs.
#
#   ./ci.sh         # format, lint, tier-1 build+test, determinism suite
#   ./ci.sh --soak  # additionally run the 500-step / 8-thread soak
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 (ROADMAP): release build + the root-package test suite.
run cargo build --release
run cargo test -q

# Determinism suite: bit-exactness proptests + golden fixtures.
run cargo test -q --test properties --test golden

# Observability: phase timings recorded end to end, JSON export lossless.
run cargo test -q --test obs_smoke

# Render path: macrocell marcher bit-identity + sparse compositing.
run cargo test -q --test render_compositing

# E13 smoke: macrocell skipping + sparse compositing report (also
# exercises the reproduce binary end to end).
run cargo run --release -q -p hemelb-bench --bin reproduce -- render --size small --ranks 2

if [[ "${1:-}" == "--soak" ]]; then
    run cargo test -q --test golden -- --ignored
fi

echo "==> ci.sh: all green"
