#!/usr/bin/env bash
# CI gate for hemelb-insitu-rs, in tiers composed of stage groups:
#
#   ./ci.sh --quick        # lint + tier1: format, clippy, release
#                          #   build, root-package tests
#   ./ci.sh                # + determinism, kernel-layout, obs, render
#                          #   and fault-injection suites + bench smokes
#   ./ci.sh --soak         # + long soaks: golden --ignored, the
#                          #   500-step SoA kernel soak and the
#                          #   200-step two-kill fault recovery
#   ./ci.sh --only GROUP   # one group: lint | tier1 | determinism |
#                          #   kernel | overlap | faults | gateway |
#                          #   smoke | soak (what the staged GitHub
#                          #   workflow jobs shell into)
#
# Each stage is timed; a per-stage summary prints on exit (also on
# failure, so CI logs show where the time — or the break — went).
set -euo pipefail
cd "$(dirname "$0")"

TIER="full"
CI_GROUPS=(lint tier1 determinism kernel overlap faults gateway smoke)
case "${1:-}" in
    --quick) TIER="quick"; CI_GROUPS=(lint tier1) ;;
    --soak)  TIER="soak";  CI_GROUPS+=(soak) ;;
    --only)
        TIER="only:${2:-}"
        case "${2:-}" in
            lint|tier1|determinism|kernel|overlap|faults|gateway|smoke|soak) CI_GROUPS=("$2") ;;
            *) echo "usage: ./ci.sh --only {lint|tier1|determinism|kernel|overlap|faults|gateway|smoke|soak}" >&2; exit 2 ;;
        esac ;;
    "") ;;
    *) echo "usage: ./ci.sh [--quick|--soak|--only GROUP]" >&2; exit 2 ;;
esac

STAGE_NAMES=()
STAGE_SECS=()
summary() {
    local status=$?
    echo
    echo "==> ci.sh stage timings (tier: $TIER)"
    local i total=0
    for i in "${!STAGE_NAMES[@]}"; do
        printf '    %-28s %4ss\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
        total=$((total + STAGE_SECS[i]))
    done
    printf '    %-28s %4ss\n' "total" "$total"
    if [[ $status -eq 0 ]]; then
        echo "==> ci.sh: all green"
    else
        echo "==> ci.sh: FAILED (exit $status)" >&2
    fi
}
trap summary EXIT

stage() {
    local name=$1
    shift
    echo "==> [$name] $*"
    local t0=$SECONDS
    "$@"
    STAGE_NAMES+=("$name")
    STAGE_SECS+=($((SECONDS - t0)))
}

# Format + lint.
group_lint() {
    stage fmt    cargo fmt --all -- --check
    stage clippy cargo clippy --workspace --all-targets -- -D warnings
}

# Tier-1 (ROADMAP): release build + the root-package test suite.
group_tier1() {
    stage build cargo build --release
    stage test  cargo test -q
}

# Determinism suite (bit-exactness proptests + golden fixtures),
# observability (phase timings end to end, lossless JSON export) and
# the render path (macrocell marcher bit-identity, sparse compositing).
group_determinism() {
    stage determinism cargo test -q --test properties --test golden
    stage obs         cargo test -q --test obs_smoke
    stage render      cargo test -q --test render_compositing
}

# Kernel memory layouts: legacy / SoA-scalar / SoA-SIMD bitwise
# equivalence across operators and boundary conditions, mid-run
# checkpoint hand-off between layouts, and the corrupted-streaming-index
# negative test against the golden digests.
group_kernel() {
    stage kernel cargo test -q --test kernel_layout
}

# Overlapped halo exchange: classifier per-orientation suite, the
# overlapped == sync == serial bitwise equivalence proptests (incl.
# checkpoint hand-off between schedules and injected delays), and the
# E18 smoke writing out/BENCH_overlap.json.
group_overlap() {
    stage overlap cargo test -q --test overlap
    stage overlap-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- overlap --size tiny --ranks 2
}

# Fault injection: benign-fault transparency, kill/checkpoint replay,
# degraded frames under a dead render rank, steering reconnect.
group_faults() {
    stage faults cargo test -q --test fault_injection
}

# Multi-client steering gateway: observer churn bit-exactness,
# deterministic driver hand-off, the wedged-observer degradation
# ladder, and the E17 load-test smoke (≥100 synthetic observers,
# frame RTT p50/p99, broadcast fan-out, cache hit rate) writing
# out/BENCH_gateway.json.
group_gateway() {
    stage gateway cargo test -q --test steering_gateway
    stage gateway-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- gateway --size tiny --ranks 2
}

# Release bench smokes, exercising the reproduce binary end to end:
# E13 (render), E14 (faults), E15 (adaptive LB) and E16 (kernel
# layouts) also write out/BENCH_*.json.
group_smoke() {
    stage render-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- render --size small --ranks 2
    stage faults-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- faults --size tiny --ranks 3
    stage adaptive-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- adaptive --size tiny --ranks 3
    stage kernel-smoke cargo run --release -q -p hemelb-bench --bin reproduce -- kernel --size tiny
}

# Long soaks.
group_soak() {
    stage golden-soak cargo test -q --test golden -- --ignored
    stage kernel-soak cargo test -q --test kernel_layout -- --ignored
    stage fault-soak  cargo test -q --test fault_injection -- --ignored
}

for g in "${CI_GROUPS[@]}"; do
    "group_$g"
done
