//! Offline stand-in for `crossbeam-channel`: an unbounded MPMC channel
//! built on `Mutex<VecDeque>` + `Condvar`.
//!
//! Semantics the workspace relies on (and the real crate provides):
//!
//! * senders and receivers are `Clone + Send`;
//! * `send` fails only when every receiver is gone;
//! * `recv` drains buffered messages even after all senders dropped, and
//!   only then reports disconnection — this is what lets a dead rank's
//!   peers observe a disconnect instead of hanging (see
//!   `hemelb_parallel::comm`).

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    /// Lock the queue, tolerating poisoning (a panicking thread must not
    /// wedge its peers — matches the real crate, which never poisons).
    fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`] when all receivers are gone;
/// carries the unsent message back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently buffered.
    Empty,
    /// No message is buffered and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message available.
    Timeout,
    /// No message is buffered and every sender has been dropped.
    Disconnected,
}

/// The sending half; cloning adds another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueue a message; never blocks. Errors if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.shared.lock().push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all blocked receivers so they can
            // observe the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half; cloning adds another consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until a message arrives, every sender is gone, or `timeout`
    /// elapses. Like [`recv`](Self::recv), buffered messages are drained
    /// before disconnection is reported.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = self.shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _timed_out) = self
                .shared
                .ready
                .wait_timeout(queue, remaining)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
            // Loop regardless of the wait outcome: a spurious wake, a
            // real message, or expiry are all re-checked at the top.
        }
    }

    /// Take a buffered message if one is available, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.lock();
        if let Some(v) = queue.pop_front() {
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = unbounded();
        let producer = thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_recv_empty_vs_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(7));
    }

    #[test]
    fn recv_timeout_drains_before_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(1)), Ok(1));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn blocked_receiver_wakes_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        let waiter = thread::spawn(move || rx.recv());
        thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(waiter.join().unwrap(), Err(RecvError));
    }
}
