//! Offline stand-in for `criterion`.
//!
//! Mirrors the subset the workspace's `[[bench]]` targets use:
//! `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`Throughput::Elements`], and [`BenchmarkId`].
//!
//! Measurement is deliberately simple: each benchmark runs one warm-up
//! call, then `sample_size` timed samples bounded by a wall-clock budget,
//! and reports the median time per iteration (plus derived throughput
//! when set). Substring filtering via `cargo bench -- <filter>` works;
//! other CLI flags are ignored.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation: converts measured time into rate units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering,
/// displayed as `name/param`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new<N: Into<String>, P: std::fmt::Display>(name: N, param: P) -> Self {
        let mut id = name.into();
        let _ = write!(id, "/{param}");
        BenchmarkId { id }
    }

    /// Build an id carrying only a parameter rendering.
    pub fn from_parameter<P: std::fmt::Display>(param: P) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Time `f`, collecting up to `sample_size` samples within the
    /// wall-clock budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            budget: self.criterion.budget,
        };
        f(&mut b);
        report(&full, &b.samples, self.throughput);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (reporting happens per-benchmark; this is a
    /// semantic no-op kept for API parity).
    pub fn finish(&mut self) {}
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name}: no samples collected");
        return;
    }
    let mut ns: Vec<u128> = samples.iter().map(|d| d.as_nanos()).collect();
    ns.sort_unstable();
    let median = ns[ns.len() / 2];
    let (lo, hi) = (ns[0], ns[ns.len() - 1]);
    let mut line = format!(
        "{name}: median {} (min {}, max {}, n={})",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi),
        ns.len()
    );
    if let Some(t) = throughput {
        if median > 0 {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = count as f64 * 1e9 / median as f64;
            let _ = write!(line, ", {rate:.3e} {unit}");
        }
    }
    println!("{line}");
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    filters: Vec<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filters: Vec::new(),
            budget: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Read a substring filter from the command line (anything that is
    /// not a `-`-prefixed flag), matching `cargo bench -- <filter>`.
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f))
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.benchmark_group(name.clone())
            .bench_function(BenchmarkId { id: name }, |b| f(b));
        self
    }
}

/// Define a benchmark group function from `fn(&mut Criterion)` entries.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filters: Vec::new(),
            budget: Duration::from_millis(50),
        };
        let mut hits = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.throughput(Throughput::Elements(10));
            g.bench_function("noop", |b| {
                b.iter(|| {
                    hits += 1;
                    black_box(1 + 1)
                })
            });
            g.finish();
        }
        // warm-up + up to 3 samples
        assert!(hits >= 2);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filters: vec!["other".into()],
            budget: Duration::from_millis(50),
        };
        let mut ran = false;
        c.benchmark_group("grp")
            .bench_with_input(BenchmarkId::new("case", 4), &4, |b, &_p| {
                b.iter(|| ran = true)
            });
        assert!(!ran, "filtered-out benchmark must not run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
