//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no network access and no crates.io cache, so
//! the workspace vendors the minimal API surface it actually uses:
//! [`Bytes`] (a cheaply clonable, sliceable, immutable byte buffer),
//! [`BytesMut`] (a growable builder that freezes into `Bytes`) and the
//! [`Buf`]/[`BufMut`] cursor traits with little-endian accessors.
//!
//! Semantics match the real crate for this subset: `Bytes::clone` is O(1)
//! and shares storage, `split_to` advances the view without copying, and
//! all scalar accessors are explicit little-endian.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer (view into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer over a static byte slice (copied once; the real crate
    /// borrows, but callers only rely on the value semantics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `n` bytes, advancing `self` past
    /// them. Panics if `n > len`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take_le<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Read cursor over a byte source; all scalar reads are little-endian
/// and advance the cursor. Reads past the end panic (callers bound-check
/// with [`Buf::remaining`] first, as the wire layer here does).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        self.take_le::<1>()[0]
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_le())
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_le())
    }
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_le())
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_le())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_le())
    }
}

/// Growable byte sink; all scalar writes are little-endian.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Append a byte slice.
    fn put_slice(&mut self, v: &[u8]);
}

/// A growable buffer that freezes into an immutable [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Freeze into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.vec.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_i64_le(-9);
        w.put_f32_le(1.25);
        w.put_f64_le(-0.5);
        w.put_slice(b"xy");
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_i64_le(), -9);
        assert_eq!(b.get_f32_le(), 1.25);
        assert_eq!(b.get_f64_le(), -0.5);
        assert_eq!(&b[..], b"xy");
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    fn clone_is_a_view() {
        let b = Bytes::from_static(b"abcdef");
        let mut c = b.clone();
        let _ = c.split_to(3);
        assert_eq!(&b[..], b"abcdef", "original view unaffected");
        assert_eq!(&c[..], b"def");
    }
}
