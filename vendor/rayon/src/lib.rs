//! Offline stand-in for `rayon`.
//!
//! Provides the subset this workspace uses — [`scope`] fork-join,
//! indexed parallel iterators over ranges and slices, and a
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`] thread-count override —
//! implemented with `std::thread::scope` and **contiguous, in-order
//! chunking**. There is no work stealing: item `i`'s result always lands
//! at position `i`, so `collect`/`sum` are bit-deterministic for any
//! thread count, which is exactly the property the LB kernel's
//! determinism tests pin down.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::thread;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel operations will use on this thread:
/// the innermost [`ThreadPool::install`] override, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Builder for a [`ThreadPool`] (the stand-in pool carries only a thread
/// count; threads are scoped per operation, not persistent).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type mirroring rayon's build error (construction here is
/// infallible, so it is never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the pool's thread count (0 means "automatic", like rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// A logical pool: parallel operations run inside [`ThreadPool::install`]
/// split across this pool's thread count.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with this pool's thread count governing parallel
    /// operations it performs.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|c| {
            let prev = c.replace(Some(self.threads));
            let out = op();
            c.set(prev);
            out
        })
    }
}

/// Fork-join scope mirroring `rayon::scope`: spawned closures may borrow
/// from the enclosing stack frame and all complete before `scope`
/// returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task on its own scoped OS thread.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Create a fork-join scope; returns when every spawned task finished.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// Evaluate `f(i)` for `i in 0..n` across `current_num_threads()`
/// scoped threads in contiguous chunks, collecting results in index
/// order. The backbone of every parallel iterator below.
fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = current_num_threads().clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Indexed parallel iterator: a known length and a `Sync` per-index
/// producer. All adaptors preserve index order.
pub trait ParallelIterator: Sized + Send + Sync {
    /// Item type produced.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produce the item at `i` (`i < par_len()`).
    fn par_item(&self, i: usize) -> Self::Item;

    /// Map each item through `f` in parallel.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Run `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_indexed(self.par_len(), |i| f(self.par_item(i)));
    }

    /// Evaluate in parallel and collect in index order.
    fn collect<C>(self) -> C
    where
        C: From<Vec<Self::Item>>,
    {
        C::from(run_indexed(self.par_len(), |i| self.par_item(i)))
    }

    /// Evaluate in parallel, then fold left-to-right in index order
    /// (deterministic for any thread count).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        run_indexed(self.par_len(), |i| self.par_item(i))
            .into_iter()
            .sum()
    }

    /// Largest item by `PartialOrd` (index order tie-break), `None` when
    /// empty.
    fn reduce_with<F>(self, op: F) -> Option<Self::Item>
    where
        F: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        run_indexed(self.par_len(), |i| self.par_item(i))
            .into_iter()
            .reduce(op)
    }
}

/// `map` adaptor.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_item(&self, i: usize) -> R {
        (self.f)(self.base.par_item(i))
    }
}

/// `enumerate` adaptor.
pub struct Enumerate<P> {
    base: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_item(&self, i: usize) -> (usize, P::Item) {
        (i, self.base.par_item(i))
    }
}

/// Conversion into a parallel iterator (ranges, vectors).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct RangePar<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangePar<$t> {
            type Item = $t;
            fn par_len(&self) -> usize {
                self.len
            }
            fn par_item(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangePar { start: self.start, len }
            }
        }
    )*};
}

impl_range_par!(u32, u64, usize, i32, i64);

/// Parallel iterator over a vector (by value).
pub struct VecPar<T> {
    // Items are produced by cloning out of the shared backing store;
    // bounded by Clone, which matches how the workspace uses it.
    items: Vec<T>,
}

impl<T: Send + Sync + Clone> ParallelIterator for VecPar<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn par_item(&self, i: usize) -> T {
        self.items[i].clone()
    }
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecPar<T>;
    fn into_par_iter(self) -> VecPar<T> {
        VecPar { items: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn par_item(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over non-overlapping chunks of `&[T]`.
pub struct SliceChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for SliceChunks<'a, T> {
    type Item = &'a [T];
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn par_item(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Shared-slice parallel views.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over elements.
    fn par_iter(&self) -> SliceIter<'_, T>;
    /// Parallel iterator over `chunk_size`-sized chunks (last may be
    /// short). Panics if `chunk_size == 0`.
    fn par_chunks(&self, chunk_size: usize) -> SliceChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
    fn par_chunks(&self, chunk_size: usize) -> SliceChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        SliceChunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Parallel mutation over non-overlapping chunks of `&mut [T]`.
///
/// Unlike the read-side iterators this drives eagerly (mutable chunks
/// cannot be produced from `&self`), so only consuming adaptors exist.
pub struct SliceChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> SliceChunksMut<'a, T> {
    /// Run `f` over every chunk, chunks distributed contiguously across
    /// `current_num_threads()` threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        self.enumerate_for_each(|_, chunk| f(chunk));
    }

    /// Like [`Self::for_each`] but passes the chunk index.
    pub fn enumerate_for_each<F>(self, f: F)
    where
        F: Fn(usize, &mut [T]) + Send + Sync,
    {
        let n_chunks = self.slice.len().div_ceil(self.size);
        let threads = current_num_threads().clamp(1, n_chunks.max(1));
        if threads <= 1 || n_chunks <= 1 {
            for (i, chunk) in self.slice.chunks_mut(self.size).enumerate() {
                f(i, chunk);
            }
            return;
        }
        // Contiguous runs of chunks per thread so each worker owns one
        // disjoint subslice.
        let per = n_chunks.div_ceil(threads);
        let f = &f;
        thread::scope(|s| {
            let mut rest = self.slice;
            let mut first_chunk = 0usize;
            while !rest.is_empty() {
                let take = (per * self.size).min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let base = first_chunk;
                let size = self.size;
                s.spawn(move || {
                    for (k, chunk) in head.chunks_mut(size).enumerate() {
                        f(base + k, chunk);
                    }
                });
                first_chunk += per;
            }
        });
    }
}

/// Mutable-slice parallel views.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel mutation over `chunk_size`-sized chunks. Panics if
    /// `chunk_size == 0`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> SliceChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> SliceChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        SliceChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

/// The glob-import surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        let expect: Vec<u64> = (0u64..1000).map(|i| i * i).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn sum_is_bit_deterministic_across_thread_counts() {
        // Left-to-right fold must be identical no matter the thread count.
        let serial: f64 = (0u32..10_000).map(|i| (i as f64).sin()).sum();
        for t in [1usize, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(t).build().unwrap();
            let par: f64 = pool.install(|| {
                (0u32..10_000)
                    .into_par_iter()
                    .map(|i| (i as f64).sin())
                    .sum()
            });
            assert_eq!(par.to_bits(), serial.to_bits(), "threads={t}");
        }
    }

    #[test]
    fn chunks_mut_covers_every_element_once() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(64).enumerate_for_each(|ci, chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 64 + k) as u32;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u32);
        }
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn scope_joins_all_spawns() {
        let mut parts = vec![0u8; 4];
        {
            let mut iter = parts.chunks_mut(1);
            let (a, b, c, d) = (
                iter.next().unwrap(),
                iter.next().unwrap(),
                iter.next().unwrap(),
                iter.next().unwrap(),
            );
            scope(|s| {
                s.spawn(move |_| a[0] = 1);
                s.spawn(move |_| b[0] = 2);
                s.spawn(move |_| c[0] = 3);
                d[0] = 4;
            });
        }
        assert_eq!(parts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn enumerate_and_for_each() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        (0u64..100).into_par_iter().enumerate().for_each(|(i, v)| {
            assert_eq!(i as u64, v);
            total.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4950);
    }
}
