//! Offline stand-in for `parking_lot`: thin wrappers over the std
//! primitives exposing parking_lot's non-poisoning API (`lock()` returns
//! the guard directly; a panic while holding a lock does not wedge later
//! users).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; recovers from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(1u8));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock usable after a panicking holder");
    }
}
