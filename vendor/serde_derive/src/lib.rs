//! No-op `Serialize`/`Deserialize` derives for the vendored serde
//! stand-in. The workspace only *annotates* types with these derives (it
//! never calls a serializer — all wire traffic goes through the
//! hand-rolled `Wire` encoding in `hemelb-parallel`), so the derives
//! expand to nothing. The `serde` helper attribute is declared so
//! field-level `#[serde(...)]` annotations, should they appear, stay
//! accepted.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]`, emit nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]`, emit nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
