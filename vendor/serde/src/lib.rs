//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and report
//! types but never invokes a serializer (all transport uses the local
//! `Wire` encoding), so this crate provides the names only: no-op derive
//! macros re-exported from [`serde_derive`] and blanket-implemented
//! marker traits, enough for `use serde::{Deserialize, Serialize}` and
//! `T: Serialize` bounds to compile.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of serde's `Serialize` trait (blanket-implemented;
/// the workspace never calls serializer methods).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of serde's `Deserialize` trait.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
