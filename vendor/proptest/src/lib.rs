//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (both `arg: Type` and `arg in strategy` forms,
//! with an optional `#![proptest_config(..)]` header), [`prop_assert!`] /
//! [`prop_assert_eq!`], range and [`strategy::any`] strategies,
//! [`collection::vec`], [`array::uniform4`], tuple strategies, and a
//! printable-string strategy for `\PC{m,n}`-style patterns.
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking** — a failing case reports the exact generated input
//!   instead of a minimised one.
//! * **Deterministic by default** — the generator seed is fixed (override
//!   with `PROPTEST_SEED`, case count with `PROPTEST_CASES`), so CI
//!   failures reproduce locally without a persistence file.

#![forbid(unsafe_code)]

/// Strategy trait and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: fmt::Debug;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Strategy generating the full value space of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    /// The `any::<T>()` entry point: arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adaptor.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }

            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategies {
        ($($t:ty => $bits:ty, $from:path),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.next_f64();
                    let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                    v as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                    assert!(lo <= hi, "empty range strategy");
                    (lo + rng.next_f64() * (hi - lo)) as $t
                }
            }

            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Raw bit patterns: exercises NaN, infinities and
                    // subnormals, which the wire round-trip tests expect.
                    $from(rng.next_u64() as $bits)
                }
            }
        )*};
    }

    float_strategies!(f64 => u64, f64::from_bits, f32 => u32, f32::from_bits);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('?')
        }
    }

    /// String-pattern strategy: a `&'static str` used where the real
    /// crate accepts a regex. Only the shape the workspace uses is
    /// honoured — a character class followed by an optional `{m,n}`
    /// repetition — generating printable strings of a length in
    /// `[m, n]`. Unknown patterns fall back to length `0..=8`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repetition(self).unwrap_or((0, 8));
            let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            // Mostly printable ASCII with occasional multibyte chars so
            // UTF-8 framing is exercised.
            (0..len)
                .map(|_| {
                    let r = rng.next_u64();
                    if r.is_multiple_of(13) {
                        ['é', 'λ', '→', '雷'][(r / 13 % 4) as usize]
                    } else {
                        char::from(0x20 + (r % 0x5F) as u8)
                    }
                })
                .collect()
        }
    }

    fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern.rfind('}')?;
        let body = pattern.get(open + 1..close)?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    macro_rules! tuple_strategies {
        ($(($($n:ident),+))+) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `elem` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_arrays {
        ($($name:ident, $ty:ident, $k:expr;)+) => {$(
            /// Strategy producing arrays whose elements share one
            /// element strategy.
            pub struct $ty<S>(S);

            /// Generate `[T; N]` from `N` draws of `strategy`.
            pub fn $name<S: Strategy>(strategy: S) -> $ty<S> {
                $ty(strategy)
            }

            impl<S: Strategy> Strategy for $ty<S> {
                type Value = [S::Value; $k];
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    std::array::from_fn(|_| self.0.generate(rng))
                }
            }
        )+};
    }

    uniform_arrays! {
        uniform2, Uniform2, 2;
        uniform3, Uniform3, 3;
        uniform4, Uniform4, 4;
    }
}

/// Deterministic case runner.
pub mod test_runner {
    use crate::strategy::Strategy;

    /// Default seed (overridable via `PROPTEST_SEED`).
    const DEFAULT_SEED: u64 = 0x4845_4D45_4C42_5253; // "HEMELBRS"

    /// SplitMix64 generator feeding every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-block configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Failure signal returned by `prop_assert!` and friends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold; the message explains why.
        Fail(String),
        /// The input should not count toward the case budget.
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    fn env_u64(name: &str) -> Option<u64> {
        let raw = std::env::var(name).ok()?;
        let raw = raw.trim();
        if let Some(hex) = raw.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            raw.parse().ok()
        }
    }

    /// Drive one property: generate `cfg.cases` inputs from `strategy`
    /// and require `test` to return `Ok` on each. Panics with the seed,
    /// case index and generated input on the first failure.
    pub fn run<S, F>(cfg: ProptestConfig, strategy: S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let seed = env_u64("PROPTEST_SEED").unwrap_or(DEFAULT_SEED);
        let cases = env_u64("PROPTEST_CASES")
            .map(|c| c as u32)
            .unwrap_or(cfg.cases);
        let mut rng = TestRng::new(seed);
        for case in 0..cases {
            let value = strategy.generate(&mut rng);
            let repr = format!("{value:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(msg))) => panic!(
                    "property failed at case {case}/{cases} \
                     (seed {seed:#x}): {msg}\n    input: {repr}"
                ),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!(
                        "property panicked at case {case}/{cases} \
                         (seed {seed:#x}): {msg}\n    input: {repr}"
                    );
                }
            }
        }
    }
}

/// Define property tests over generated inputs.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(args) { body }` items whose arguments are either
/// `ident in strategy` or `ident: Type` (shorthand for
/// `ident in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_parse! { ($cfg) [$($params)*] [] $body }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse {
    (($cfg:expr) [] [$(($id:ident, $strat:expr))*] $body:block) => {
        $crate::test_runner::run(
            $cfg,
            ($($strat,)*),
            |($($id,)*)| {
                $body
                ::core::result::Result::Ok(())
            },
        )
    };
    (($cfg:expr) [$id:ident in $strat:expr, $($rest:tt)*] [$($acc:tt)*] $body:block) => {
        $crate::__proptest_parse! { ($cfg) [$($rest)*] [$($acc)* ($id, $strat)] $body }
    };
    (($cfg:expr) [$id:ident in $strat:expr] [$($acc:tt)*] $body:block) => {
        $crate::__proptest_parse! { ($cfg) [] [$($acc)* ($id, $strat)] $body }
    };
    (($cfg:expr) [$id:ident : $ty:ty, $($rest:tt)*] [$($acc:tt)*] $body:block) => {
        $crate::__proptest_parse! {
            ($cfg) [$($rest)*] [$($acc)* ($id, $crate::strategy::any::<$ty>())] $body
        }
    };
    (($cfg:expr) [$id:ident : $ty:ty] [$($acc:tt)*] $body:block) => {
        $crate::__proptest_parse! {
            ($cfg) [] [$($acc)* ($id, $crate::strategy::any::<$ty>())] $body
        }
    };
}

/// Assert a property inside a `proptest!` body; failure aborts the case
/// with the generated input attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: {:?}",
            l
        );
    }};
}

/// Discard the current case without failing (counts as a pass here —
/// the shim has no rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn arbitrary_args_and_strategy_args(a: u64, flag: bool, x in 0.5f64..2.0, s in "\\PC{0,40}") {
            prop_assert!((0.5..2.0 + 1e-9).contains(&x));
            prop_assert!(s.chars().count() <= 40);
            prop_assert_eq!(a.wrapping_add(0), a);
            let _ = flag;
        }

        #[test]
        fn collections_and_arrays(
            v in crate::collection::vec(any::<f64>(), 0..200),
            quad in crate::array::uniform4(0.0f32..1.0),
            pairs in crate::collection::vec((crate::array::uniform4(0.0f32..1.0), 0.0f32..10.0), 8),
        ) {
            prop_assert!(v.len() < 200);
            for q in quad {
                prop_assert!((0.0..=1.0).contains(&q));
            }
            prop_assert_eq!(pairs.len(), 8);
        }

        #[test]
        fn trailing_comma_and_int_ranges(
            k in 2usize..6,
            b in 0u8..5,
        ) {
            prop_assert!((2..6).contains(&k));
            prop_assert!(b < 5, "b={} escaped its range", b);
        }
    }

    proptest! {
        #[test]
        fn default_config_block_compiles(n in 0u32..10) {
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, crate::collection::vec(0.0f64..1.0, 3));
        let a = strat.generate(&mut TestRng::new(9));
        let b = strat.generate(&mut TestRng::new(9));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_input() {
        crate::test_runner::run(
            crate::test_runner::ProptestConfig::with_cases(8),
            (0u32..10,),
            |(n,)| {
                prop_assert!(n > 100, "n was {}", n);
                Ok(())
            },
        );
    }

    #[test]
    fn prop_map_transforms() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let doubled = (1u32..5).prop_map(|n| n * 2);
        let v = doubled.generate(&mut TestRng::new(3));
        assert!(v % 2 == 0 && (2..10).contains(&v));
    }
}
