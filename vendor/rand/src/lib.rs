//! Offline stand-in for `rand`.
//!
//! The workspace lists `rand` as a dev-dependency but generates every
//! random field from explicit integer hashes, so only a minimal surface
//! is provided: a deterministic SplitMix64 [`Rng`] plus [`thread_rng`].
//! Determinism is a feature here — test inputs must be reproducible.

#![forbid(unsafe_code)]

/// A deterministic SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from an explicit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }
}

/// A generator seeded from the current process id (still deterministic
/// within a process; the workspace never relies on cross-run entropy).
pub fn thread_rng() -> Rng {
    Rng::seed_from_u64(0x4845_4D45_4C42 ^ u64::from(std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            let k = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&k));
        }
    }
}
