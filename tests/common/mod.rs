//! Shared helpers for the integration suites: a random sparse-geometry
//! generator (cylinders, bifurcations, porous blocks), solver-case
//! strategies for the determinism proptests, and the checksum utilities
//! the golden-fixture tests are built on.
#![allow(dead_code)]

use hemelb::core::collision::CollisionKind;
use hemelb::core::solver::ModelKind;
use hemelb::core::{FieldSnapshot, SolverConfig};
use hemelb::geometry::{IoLet, IoLetKind, SiteKind, SparseGeometry, Vec3, VesselBuilder};
use proptest::prelude::*;
use std::sync::Arc;

/// A generatable geometry, kept as a small value so failing proptest
/// cases print the exact recipe.
#[derive(Debug, Clone)]
pub enum GeoSpec {
    /// Straight circular tube (the Poiseuille workhorse).
    Cylinder {
        /// Axis length, lattice units.
        len: f64,
        /// Lumen radius.
        radius: f64,
    },
    /// Symmetric Y-bifurcation.
    Bifurcation {
        /// Parent branch length.
        parent: f64,
        /// Child branch length.
        child: f64,
        /// Vessel radius.
        radius: f64,
    },
    /// Random porous block: a box where interior cells are fluid with
    /// ~72% probability (seeded), inlet face at x=0, outlet at x=max.
    Porous {
        /// Box extent.
        nx: usize,
        /// Box extent.
        ny: usize,
        /// Box extent.
        nz: usize,
        /// Porosity seed.
        seed: u64,
    },
}

fn cell_hash(x: usize, y: usize, z: usize, seed: u64) -> u64 {
    let mut h = seed ^ ((x as u64) << 42) ^ ((y as u64) << 21) ^ (z as u64) ^ 0x9E3779B97F4A7C15;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 31;
    h = h.wrapping_mul(0x94D049BB133111EB);
    h ^= h >> 29;
    h
}

/// Assemble a porous block directly from parts. Sites on the x faces
/// are iolets; other sites missing a 6-neighbour are walls.
fn porous_block(nx: usize, ny: usize, nz: usize, seed: u64) -> SparseGeometry {
    assert!(nx >= 3 && ny >= 2 && nz >= 2);
    let is_fluid = |x: usize, y: usize, z: usize| -> bool {
        x == 0 || x == nx - 1 || cell_hash(x, y, z, seed) % 100 < 72
    };
    let mut index = vec![u32::MAX; nx * ny * nz];
    let mut positions: Vec<[u32; 3]> = Vec::new();
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                if is_fluid(x, y, z) {
                    index[(x * ny + y) * nz + z] = positions.len() as u32;
                    positions.push([x as u32, y as u32, z as u32]);
                }
            }
        }
    }
    let kinds: Vec<SiteKind> = positions
        .iter()
        .map(|&[x, y, z]| {
            let (x, y, z) = (x as usize, y as usize, z as usize);
            if x == 0 {
                SiteKind::Inlet(0)
            } else if x == nx - 1 {
                SiteKind::Outlet(0)
            } else {
                let closed = [
                    (x.wrapping_sub(1), y, z),
                    (x + 1, y, z),
                    (x, y.wrapping_sub(1), z),
                    (x, y + 1, z),
                    (x, y, z.wrapping_sub(1)),
                    (x, y, z + 1),
                ]
                .into_iter()
                .any(|(a, b, c)| a >= nx || b >= ny || c >= nz || !is_fluid(a, b, c));
                if closed {
                    SiteKind::Wall
                } else {
                    SiteKind::Bulk
                }
            }
        })
        .collect();
    let cy = (ny as f64 - 1.0) / 2.0;
    let cz = (nz as f64 - 1.0) / 2.0;
    let face_radius = (ny.max(nz) as f64) / 2.0 + 1.0;
    let iolets = vec![
        IoLet {
            kind: IoLetKind::Inlet,
            centre: Vec3::new(0.0, cy, cz),
            normal: Vec3::new(-1.0, 0.0, 0.0),
            radius: face_radius,
        },
        IoLet {
            kind: IoLetKind::Outlet,
            centre: Vec3::new(nx as f64 - 1.0, cy, cz),
            normal: Vec3::new(1.0, 0.0, 0.0),
            radius: face_radius,
        },
    ];
    SparseGeometry::from_parts([nx, ny, nz], index, positions, kinds, iolets)
}

impl GeoSpec {
    /// Voxelise/assemble the geometry.
    pub fn build(&self) -> Arc<SparseGeometry> {
        let geo = match *self {
            GeoSpec::Cylinder { len, radius } => {
                VesselBuilder::straight_tube(len, radius).voxelise(1.0)
            }
            GeoSpec::Bifurcation {
                parent,
                child,
                radius,
            } => VesselBuilder::bifurcation(parent, child, radius, 0.5).voxelise(1.0),
            GeoSpec::Porous { nx, ny, nz, seed } => porous_block(nx, ny, nz, seed),
        };
        assert!(geo.fluid_count() > 0, "degenerate geometry from {self:?}");
        Arc::new(geo)
    }
}

/// One determinism test case: geometry × velocity set × collision
/// operator × boundary-condition family.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Geometry recipe.
    pub geo: GeoSpec,
    /// Velocity set.
    pub model: ModelKind,
    /// Collision operator.
    pub collision: CollisionKind,
    /// `true` → parabolic velocity inlet; `false` → pressure drive.
    pub velocity_inlet: bool,
}

impl CaseSpec {
    /// The solver configuration for this case.
    pub fn config(&self) -> SolverConfig {
        let base = if self.velocity_inlet {
            SolverConfig::velocity_driven(0.03)
        } else {
            SolverConfig::pressure_driven(1.005, 0.995)
        };
        base.with_model(self.model).with_collision(self.collision)
    }
}

/// Strategy over the three geometry families, sized to keep a proptest
/// case under ~1k sites so the suite stays fast.
pub fn geo_strategy() -> impl Strategy<Value = GeoSpec> {
    (
        0usize..3,
        8.0f64..16.0, // cylinder length
        2.0f64..3.2,  // cylinder radius
        6.0f64..9.0,  // bifurcation parent
        5.0f64..8.0,  // bifurcation child
        1.8f64..2.4,  // bifurcation radius
        5usize..9,    // porous nx
        4usize..7,    // porous ny/nz
        any::<u64>(), // porous seed
    )
        .prop_map(
            |(pick, len, radius, parent, child, bradius, nx, nyz, seed)| match pick {
                0 => GeoSpec::Cylinder { len, radius },
                1 => GeoSpec::Bifurcation {
                    parent,
                    child,
                    radius: bradius,
                },
                _ => GeoSpec::Porous {
                    nx,
                    ny: nyz,
                    nz: nyz,
                    seed,
                },
            },
        )
}

/// Strategy over full solver cases: geometry × {D3Q15, D3Q19} ×
/// {BGK, TRT, MRT} × {pressure, velocity} boundary conditions.
pub fn case_strategy() -> impl Strategy<Value = CaseSpec> {
    (geo_strategy(), 0usize..2, 0usize..3, any::<bool>()).prop_map(
        |(geo, model, coll, velocity_inlet)| CaseSpec {
            geo,
            model: if model == 0 {
                ModelKind::D3Q15
            } else {
                ModelKind::D3Q19
            },
            collision: match coll {
                0 => CollisionKind::Bgk,
                1 => CollisionKind::trt_magic(),
                _ => CollisionKind::Mrt { omega_ghost: 1.2 },
            },
            velocity_inlet,
        },
    )
}

/// `f64::to_bits` equality over two slices.
pub fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// FNV-1a over the IEEE-754 bit patterns of a value stream. Any one-ULP
/// change in any value changes the digest.
pub fn fnv1a_bits(values: impl IntoIterator<Item = f64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Per-field digests of a snapshot: `(rho, ux|uy|uz, shear)`.
pub fn snapshot_digests(snap: &FieldSnapshot) -> (u64, u64, u64) {
    let rho = fnv1a_bits(snap.rho.iter().copied());
    let u = fnv1a_bits(snap.u.iter().flat_map(|v| v.iter().copied()));
    let shear = fnv1a_bits(snap.shear.iter().copied());
    (rho, u, shear)
}
