//! Adaptive load balancing, end to end: whatever the measured costs
//! make the balancer do mid-run — nothing, one repartition, several —
//! the physics must stay bit-identical to a serial solver that never
//! repartitions, and the decision machinery (hysteresis, cost/benefit
//! gate) must behave deterministically on known cost sequences.

use hemelb::core::{DistSolver, Solver, SolverConfig};
use hemelb::parallel::run_spmd;
use hemelb::partition::{payoff_gate, plan_rebalance, AdaptiveLb, AdaptiveLbConfig, WindowCosts};
use hemelb::steering::AdaptiveDriver;
use hemelb_bench::adaptive::skewed_owner;
use hemelb_bench::workloads::{self, Size};
use proptest::prelude::*;
use std::sync::Arc;

fn costs(sim: &[f64], steps: u64) -> WindowCosts {
    WindowCosts {
        sim_secs: sim.to_vec(),
        vis_secs: vec![0.0; sim.len()],
        steps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole guarantee: run the full measured pipeline
    /// (obs spans → all-reduced window costs → hysteresis → diffusive
    /// plan → cost/benefit gate → migrating repartition) with randomised
    /// skew, rank count and window length, and the final density field
    /// is bit-identical to the never-repartitioned serial reference —
    /// whether or not any window actually triggered.
    #[test]
    fn adaptive_midrun_repartition_is_bitwise_invisible(
        ranks in 2usize..4,
        skew in 0.3f64..0.85,
        window in 10u64..30,
        windows in 2u64..5,
    ) {
        let geo = workloads::aneurysm(Size::Tiny);
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let steps = window * windows;
        let lb_cfg = AdaptiveLbConfig {
            window_steps: window,
            threshold: 1.1,
            hysteresis_windows: 1,
            min_payoff: 0.0,
            ..Default::default()
        };

        let (geo2, cfg2) = (geo.clone(), cfg.clone());
        let results = run_spmd(ranks, move |comm| {
            let owner = skewed_owner(&geo2, comm.size(), skew);
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
            let mut driver = AdaptiveDriver::new(&geo2, lb_cfg);
            let mut applied = 0u64;
            while ds.step_count() < steps {
                ds.step_n(window.min(steps - ds.step_count())).unwrap();
                let remaining = steps - ds.step_count();
                let d = driver
                    .end_window(comm, &mut ds, window, remaining)
                    .unwrap();
                applied += u64::from(d.applied);
            }
            (ds.gather_snapshot().unwrap(), applied)
        });

        let mut reference = Solver::new(geo, cfg);
        reference.step_n(steps);
        let rho = &results[0].0.as_ref().expect("master gathers").rho;
        prop_assert_eq!(rho, &reference.snapshot().rho);
        // The decision is collective: every rank applied the same count.
        for (_, applied) in &results {
            prop_assert_eq!(*applied, results[0].1);
        }
    }
}

#[test]
fn hysteresis_does_not_thrash_on_oscillating_load() {
    // A load that alternates hot/cold every window never accumulates
    // the required consecutive-hot streak, so it never triggers — the
    // whole point of the hysteresis.
    let mut lb = AdaptiveLb::new(AdaptiveLbConfig {
        threshold: 1.25,
        hysteresis_windows: 2,
        ..Default::default()
    });
    for i in 0..10 {
        let w = if i % 2 == 0 {
            costs(&[3.0, 1.0], 50) // imbalance 1.5: hot
        } else {
            costs(&[1.0, 1.0], 50) // balanced: cold, streak resets
        };
        let o = lb.observe(&w);
        assert!(!o.triggered, "window {i} must not trigger: {o:?}");
    }
    // Sustained heat, by contrast, triggers on the second hot window.
    let o = lb.observe(&costs(&[3.0, 1.0], 50));
    assert!(!o.triggered);
    let o = lb.observe(&costs(&[3.0, 1.0], 50));
    assert!(o.triggered);
}

#[test]
fn gate_rejects_migrations_that_cannot_amortise() {
    let geo = workloads::aneurysm(Size::Tiny);
    let geo = Arc::clone(&geo);
    let graph = hemelb::partition::graph::SiteGraph::from_geometry(
        &geo,
        hemelb::partition::graph::Connectivity::Six,
    );
    let owner = skewed_owner(&geo, 2, 0.75);
    let cfg = AdaptiveLbConfig::default();
    let w = costs(&[3.0, 1.0], 50);
    let plan = plan_rebalance(&graph, &owner, 2, &cfg, &w).expect("plan");
    assert!(plan.moved_vertices > 0);

    // Plenty of steps left and a cheap network: apply.
    let open = payoff_gate(&plan, &w, 1e-6, 10_000, &cfg);
    assert!(open.apply, "{open:?}");
    // Same plan with no horizon left: the one-off cost cannot pay for
    // itself, so the gate closes.
    let closed = payoff_gate(&plan, &w, 1e-6, 0, &cfg);
    assert!(!closed.apply, "{closed:?}");
    // Same horizon, preposterous migration cost: closed too.
    let closed = payoff_gate(&plan, &w, 1e9, 10_000, &cfg);
    assert!(!closed.apply, "{closed:?}");
}
