//! Golden regression fixtures: tiny deterministic runs whose per-field
//! bit-pattern checksums are pinned under `tests/golden/`.
//!
//! Any change to the collide/stream arithmetic — even a one-ULP
//! reordering — changes a digest and fails the suite. To re-bless after
//! an *intentional* numerical change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden
//! ```
//!
//! Each case is run on every kernel layout — the legacy site-major
//! brick, the SoA fluid-site list with scalar collision, and the SoA
//! chunked-lane SIMD path — serially and on the chunk-parallel
//! `ParallelSolver`; all must match the *same* fixture, which pins the
//! bit-exact determinism contract to stored bytes. (The SoA refactor
//! re-blessed here was a no-op: every digest was reproduced unchanged,
//! so the fixtures still certify the original arithmetic.)

mod common;

use hemelb::core::collision::CollisionKind;
use hemelb::core::solver::ModelKind;
use hemelb::core::{KernelLayout, ParallelSolver, Solver, SolverConfig};
use hemelb::geometry::VesselBuilder;
use std::path::PathBuf;
use std::sync::Arc;

struct GoldenCase {
    name: &'static str,
    steps: u64,
    build: fn() -> (Arc<hemelb::geometry::SparseGeometry>, SolverConfig),
}

const CASES: &[GoldenCase] = &[
    GoldenCase {
        name: "cylinder_bgk_pressure_d3q15",
        steps: 50,
        build: || {
            (
                Arc::new(VesselBuilder::straight_tube(12.0, 3.0).voxelise(1.0)),
                SolverConfig::pressure_driven(1.01, 0.99),
            )
        },
    },
    GoldenCase {
        name: "aneurysm_trt_velocity_d3q19",
        steps: 50,
        build: || {
            (
                Arc::new(VesselBuilder::aneurysm(12.0, 2.5, 3.5).voxelise(1.0)),
                SolverConfig::velocity_driven(0.03)
                    .with_model(ModelKind::D3Q19)
                    .with_collision(CollisionKind::trt_magic()),
            )
        },
    },
    GoldenCase {
        name: "porous_mrt_pressure_d3q15",
        steps: 50,
        build: || {
            let spec = common::GeoSpec::Porous {
                nx: 8,
                ny: 6,
                nz: 6,
                seed: 7,
            };
            (
                spec.build(),
                SolverConfig::pressure_driven(1.005, 0.995)
                    .with_collision(CollisionKind::Mrt { omega_ghost: 1.2 }),
            )
        },
    },
];

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Digest lines for one finished run: per-field checksums plus the raw
/// distribution array, all over IEEE-754 bit patterns.
fn digest_lines(solver: &Solver, steps: u64) -> String {
    let snap = solver.snapshot();
    let (rho, u, shear) = common::snapshot_digests(&snap);
    let f = common::fnv1a_bits(solver.raw_distributions().iter().copied());
    format!("steps={steps}\nrho={rho:016x}\nu={u:016x}\nshear={shear:016x}\nf={f:016x}\n")
}

fn run_case(case: &GoldenCase) {
    let (geo, cfg) = (case.build)();

    // Legacy layout is the reference the fixtures were blessed against.
    let mut legacy = Solver::new(geo.clone(), cfg.clone().with_layout(KernelLayout::Legacy));
    legacy.step_n(case.steps);
    let got = digest_lines(&legacy, case.steps);

    // Both SoA layouts must reproduce the legacy digests bit-for-bit.
    for layout in [KernelLayout::SoaScalar, KernelLayout::SoaSimd] {
        let mut soa = Solver::new(geo.clone(), cfg.clone().with_layout(layout));
        soa.step_n(case.steps);
        assert_eq!(
            got,
            digest_lines(&soa, case.steps),
            "{}: {layout:?} diverged from the legacy layout",
            case.name
        );
    }

    // The parallel solver (SoA-SIMD layout) must produce the *same*
    // fixture.
    let mut par = ParallelSolver::new(geo, cfg.with_layout(KernelLayout::SoaSimd), 3);
    par.step_n(case.steps);
    let got_par = digest_lines(par.solver(), case.steps);
    assert_eq!(
        got, got_par,
        "{}: parallel kernel diverged from serial",
        case.name
    );

    let path = fixture_path(case.name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: missing fixture {} ({e}); run GOLDEN_BLESS=1 cargo test --test golden",
            case.name,
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{}: digests changed — if the numerical change is intentional, re-bless with \
         GOLDEN_BLESS=1 cargo test --test golden",
        case.name
    );
}

#[test]
fn golden_cylinder_bgk_pressure_d3q15() {
    run_case(&CASES[0]);
}

#[test]
fn golden_aneurysm_trt_velocity_d3q19() {
    run_case(&CASES[1]);
}

#[test]
fn golden_porous_mrt_pressure_d3q15() {
    run_case(&CASES[2]);
}

/// Long soak: 500 steps at 8 threads must stay bit-identical to serial.
/// Run with `cargo test --test golden -- --ignored` (wired into ci.sh).
#[test]
#[ignore = "long soak; run via cargo test -- --ignored"]
fn soak_500_steps_8_threads_bit_exact() {
    let geo = Arc::new(VesselBuilder::aneurysm(14.0, 3.0, 4.0).voxelise(1.0));
    let cfg = SolverConfig::pressure_driven(1.005, 0.995);
    let mut serial = Solver::new(geo.clone(), cfg.clone());
    let mut par = ParallelSolver::new(geo, cfg, 8);
    serial.step_n(500);
    par.step_n(500);
    assert!(
        common::bits_eq(&serial.raw_distributions(), &par.raw_distributions()),
        "8-thread soak diverged from serial after 500 steps"
    );
}
