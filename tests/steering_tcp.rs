//! The steering loop over a *real* TCP socket — the deployment shape of
//! the original HemeLB steering client (an out-of-process viewer
//! connecting to the simulation master over the network).

use hemelb::core::SolverConfig;
use hemelb::geometry::VesselBuilder;
use hemelb::parallel::run_spmd;
use hemelb::steering::{
    run_closed_loop, ClosedLoopConfig, SteeringClient, SteeringCommand, TcpTransport, Transport,
};
use parking_lot::Mutex;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

#[test]
fn closed_loop_over_tcp() {
    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));

    // The simulation master listens; the client connects.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let client_thread = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        let client = SteeringClient::new(Box::new(TcpTransport::new(stream).expect("transport")));
        // Steps 2–6 of the paper's loop, across a real socket.
        let (frame, rtt) = client.request_frame().expect("frame over TCP");
        assert_eq!(frame.width, 48);
        assert_eq!(frame.rgb.len(), 48 * 36 * 3);
        assert!(rtt.as_secs() < 60);
        // Observables over TCP too.
        let (obs, _) = client.request_observables().expect("observables");
        assert!(obs.sites > 0);
        client.send(&SteeringCommand::Terminate).unwrap();
        while client.recv().is_ok() {}
        frame
    });

    let (server_stream, _) = listener.accept().expect("accept");
    let transport: Box<dyn Transport> =
        Box::new(TcpTransport::new(server_stream).expect("server transport"));
    let server_slot = Arc::new(Mutex::new(Some(transport)));

    let geo2 = geo.clone();
    let results = run_spmd(2, move |comm| {
        let transport = if comm.is_master() {
            server_slot.lock().take()
        } else {
            None
        };
        let owner: Vec<usize> = (0..geo2.fluid_count())
            .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
            .collect();
        run_closed_loop(
            geo2.clone(),
            owner,
            SolverConfig::pressure_driven(1.005, 0.995),
            comm,
            transport,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (48, 36),
                initial_vis_rate: u32::MAX,
                steps_per_cycle: 10,
                vis_aware_repartition: false,
            },
        )
        .unwrap()
    });
    let frame = client_thread.join().expect("client");
    assert!(results[0].terminated_by_client);
    assert!(results[0].frames_rendered >= 1);
    // The TCP-shipped frame shows the vessel.
    let non_white = frame
        .rgb
        .chunks(3)
        .filter(|c| c[0] != 255 || c[1] != 255 || c[2] != 255)
        .count();
    assert!(non_white > 10, "vessel visible over TCP: {non_white}");
}
