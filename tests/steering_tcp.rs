//! The steering loop over a *real* TCP socket — the deployment shape of
//! the original HemeLB steering client (an out-of-process viewer
//! connecting to the simulation master over the network).

use hemelb::core::SolverConfig;
use hemelb::geometry::VesselBuilder;
use hemelb::parallel::run_spmd;
use hemelb::steering::{
    run_closed_loop, ClosedLoopConfig, SteeringClient, SteeringCommand, TcpTransport, Transport,
};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Connect with bounded retries: on a loaded CI host the accept loop may
/// not be scheduled instantly, and a refused first SYN must not fail the
/// test. Port 0 (kernel-assigned) is still used for the bind itself.
fn connect_with_retry(addr: SocketAddr) -> TcpStream {
    let mut last_err = None;
    for attempt in 0..50 {
        match TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
            Ok(stream) => return stream,
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(10 * (attempt + 1)));
            }
        }
    }
    panic!("connect to {addr} failed after bounded retries: {last_err:?}");
}

#[test]
fn closed_loop_over_tcp() {
    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));

    // The simulation master listens; the client connects.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let client_thread = std::thread::spawn(move || {
        let stream = connect_with_retry(addr);
        let client = SteeringClient::new(Box::new(TcpTransport::new(stream).expect("transport")));
        // Steps 2–6 of the paper's loop, across a real socket.
        let (frame, rtt) = client.request_frame().expect("frame over TCP");
        assert_eq!(frame.width, 48);
        assert_eq!(frame.rgb.len(), 48 * 36 * 3);
        assert!(rtt.as_secs() < 60);
        // Observables over TCP too.
        let (obs, _) = client.request_observables().expect("observables");
        assert!(obs.sites > 0);
        client.send(&SteeringCommand::Terminate).unwrap();
        while client.recv().is_ok() {}
        frame
    });

    // Bounded-retry accept so a dead client cannot hang the suite.
    listener.set_nonblocking(true).expect("nonblocking");
    let server_stream = {
        let mut accepted = None;
        for _ in 0..500 {
            match listener.accept() {
                Ok((stream, _)) => {
                    accepted = Some(stream);
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("accept failed: {e}"),
            }
        }
        accepted.expect("no client connected within the retry budget")
    };
    server_stream
        .set_nonblocking(false)
        .expect("blocking stream");
    let transport: Box<dyn Transport> =
        Box::new(TcpTransport::new(server_stream).expect("server transport"));
    let server_slot = Arc::new(Mutex::new(Some(transport)));

    let geo2 = geo.clone();
    let results = run_spmd(2, move |comm| {
        let transport = if comm.is_master() {
            server_slot.lock().take()
        } else {
            None
        };
        let owner: Vec<usize> = (0..geo2.fluid_count())
            .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
            .collect();
        run_closed_loop(
            geo2.clone(),
            owner,
            SolverConfig::pressure_driven(1.005, 0.995),
            comm,
            transport,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (48, 36),
                initial_vis_rate: u32::MAX,
                steps_per_cycle: 10,
                vis_aware_repartition: false,
                ..Default::default()
            },
        )
        .unwrap()
    });
    let frame = client_thread.join().expect("client");
    assert!(results[0].terminated_by_client);
    assert!(results[0].frames_rendered >= 1);
    // The TCP-shipped frame shows the vessel.
    let non_white = frame
        .rgb
        .chunks(3)
        .filter(|c| c[0] != 255 || c[1] != 255 || c[2] != 255)
        .count();
    assert!(non_white > 10, "vessel visible over TCP: {non_white}");
}
