//! Fault-injection suite: the comm/steering stack under deterministic
//! faults (ISSUE 4). Delay and duplicate faults must be bit-transparent
//! to every collective; a killed rank must recover bit-exactly through
//! checkpoint replay; a dead render rank must degrade the frame instead
//! of hanging it; a dropped steering client must auto-reconnect.

use hemelb::core::{DistSolver, Solver, SolverConfig};
use hemelb::geometry::VesselBuilder;
use hemelb::parallel::{
    run_spmd, run_spmd_opts, FaultEvent, FaultKind, FaultPlan, SpmdOptions, TagClass,
};
use hemelb::steering::{
    duplex_listener, run_closed_loop_opts, BackoffPolicy, ClientLossPolicy, ClosedLoopConfig,
    SteeringClient, SteeringCommand, Transport, TransportFactory,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hemelb_fault_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The collective workload the transparency property runs under faults:
/// a few steps of mixed collectives, returning every result so callers
/// can compare runs bit for bit (f64 via `to_bits`).
fn collective_workload(comm: &hemelb::parallel::Communicator, steps: u64) -> Vec<u64> {
    let rank = comm.rank() as u64;
    let size = comm.size() as u64;
    let mut out = Vec::new();
    for step in 0..steps {
        comm.set_fault_step(step);
        let seed = step * 1000 + rank;
        let payload = comm
            .broadcast(
                0,
                comm.is_master()
                    .then(|| bytes::Bytes::from(step.to_le_bytes().to_vec())),
            )
            .unwrap();
        out.extend(payload.iter().map(|&b| b as u64));
        let sum = comm.all_reduce_u64(seed, |a, b| a.wrapping_add(b)).unwrap();
        out.push(sum);
        let vec = comm
            .all_reduce_f64_vec(vec![seed as f64, 1.0 / (seed + 1) as f64], |a, b| a + b)
            .unwrap();
        out.extend(vec.iter().map(|v| v.to_bits()));
        out.push(comm.exscan_u64(seed).unwrap());
        if let Some(all) = comm
            .gather(0, bytes::Bytes::from(seed.to_le_bytes().to_vec()))
            .unwrap()
        {
            for b in all {
                out.extend(b.iter().map(|&x| x as u64));
            }
        }
        let outgoing: Vec<bytes::Bytes> = (0..size)
            .map(|dst| bytes::Bytes::from(vec![(rank * size + dst) as u8; 3]))
            .collect();
        for b in comm.all_to_all(outgoing).unwrap() {
            out.extend(b.iter().map(|&x| x as u64));
        }
        comm.barrier().unwrap();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Benign fault plans (delays + duplicates only) must be invisible:
    /// every collective's result is bit-identical to the fault-free run,
    /// on every rank, for any seed.
    #[test]
    fn benign_fault_plans_are_bit_transparent_to_collectives(seed: u64) {
        let clean = run_spmd(3, |comm| collective_workload(comm, 4));
        let plan = FaultPlan::seeded_benign(seed, 3, 8, 3, 2);
        let faulty = run_spmd_opts(3, SpmdOptions::with_faults(plan), |comm| {
            collective_workload(comm, 4)
        });
        prop_assert_eq!(&clean, &faulty.results);
        // The plan actually did something (delays and/or duplicates
        // were injected somewhere) or matched no armed step — either
        // way the counters are consistent.
        let injected = faulty.summary.total.total_faults();
        let merged = faulty.merged_obs();
        let counted: u64 = ["fault.injected.delay", "fault.injected.duplicate", "fault.deduped"]
            .iter()
            .filter_map(|k| merged.counters.get(*k))
            .sum();
        prop_assert_eq!(injected, counted);
    }
}

/// A rank killed mid-run is recovered by restarting the world and
/// replaying from the latest collective checkpoint — and the recovered
/// fields are bit-exact against a fault-free serial reference.
#[test]
fn killed_rank_recovers_bit_exactly_via_checkpoint_replay() {
    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
    let cfg = SolverConfig::pressure_driven(1.01, 0.99);
    let mut reference = Solver::new(geo.clone(), cfg.clone());
    reference.step_n(30);
    let ref_rho = reference.snapshot().rho;

    let dir = scratch_dir("kill_replay");
    let cp = dir.join("cp");
    let plan = FaultPlan::new(vec![FaultEvent {
        rank: 1,
        class: TagClass::Halo,
        step: 12,
        kind: FaultKind::KillRank,
    }]);
    let attempts = Arc::new(AtomicU64::new(0));
    let (geo2, cfg2, cp2, attempts2) = (geo.clone(), cfg.clone(), cp.clone(), attempts.clone());
    let out = run_spmd_opts(3, SpmdOptions::with_faults(plan), move |comm| {
        attempts2.fetch_add(1, Ordering::SeqCst);
        let owner: Vec<usize> = (0..geo2.fluid_count())
            .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
            .collect();
        let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
        // Crash recovery: resume from the latest checkpoint if one
        // exists (every rank sees the same files — `checkpoint` ends in
        // a barrier, so the set on disk is always a consistent cut).
        if cp2.join(format!("rank_{}.chkp", comm.rank())).exists() {
            ds.restore(&cp2).unwrap();
        }
        while ds.step_count() < 30 {
            let burst = 10 - ds.step_count() % 10;
            ds.step_n(burst.min(30 - ds.step_count())).unwrap();
            ds.checkpoint(&cp2).unwrap();
        }
        ds.gather_snapshot().unwrap()
    });
    // The kill fired once: 3 ranks ran the first doomed attempt, then 3
    // ran the restarted one.
    assert_eq!(attempts.load(Ordering::SeqCst), 6, "one restart");
    let merged = out.merged_obs();
    assert_eq!(merged.counters["fault.restarts"], 1);
    assert_eq!(merged.counters["fault.injected.kill"], 1);
    let snap = out.results[0].as_ref().expect("master gathers");
    assert_eq!(snap.rho, ref_rho, "recovered run is bit-exact");
    std::fs::remove_dir_all(&dir).ok();
}

/// A render rank whose compositing contribution never arrives must not
/// hang the frame: with a compositing deadline the master ships the
/// image without it and flags the degradation in the status report.
#[test]
fn dead_render_rank_yields_degraded_frame_not_a_hang() {
    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
    let geo2 = geo.clone();
    let (connector, acceptor) = duplex_listener();
    let acceptor_slot = Arc::new(parking_lot::Mutex::new(Some(
        Box::new(acceptor) as Box<dyn hemelb::steering::Acceptor>
    )));
    // Rank 1's first compositing-class send is silently dropped: its
    // partial image for the first rendered frame never reaches the
    // master, exactly as if the rank stalled past the frame deadline.
    let plan = FaultPlan::new(vec![FaultEvent {
        rank: 1,
        class: TagClass::Compositing,
        step: 0,
        kind: FaultKind::DropOnce,
    }]);

    let client_thread = std::thread::spawn(move || {
        let client = SteeringClient::new(Box::new(connector.connect().unwrap()));
        // Request frames until the degraded one shows up in a status
        // report; the injected drop hits the very first frame.
        let degraded = 'outer: loop {
            client.send(&SteeringCommand::RequestFrame).unwrap();
            let (_img, statuses) = client.wait_for_image().unwrap();
            for s in &statuses {
                if let Some(p) = s.problems.iter().find(|p| p.contains("degraded frame")) {
                    break 'outer p.clone();
                }
            }
        };
        client.send(&SteeringCommand::Terminate).unwrap();
        while client.recv().is_ok() {}
        degraded
    });

    let out = run_spmd_opts(3, SpmdOptions::with_faults(plan), move |comm| {
        let owner: Vec<usize> = (0..geo2.fluid_count())
            .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
            .collect();
        let acceptor = if comm.is_master() {
            acceptor_slot.lock().take()
        } else {
            None
        };
        run_closed_loop_opts(
            geo2.clone(),
            owner,
            SolverConfig::pressure_driven(1.005, 0.995),
            comm,
            None,
            acceptor,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (16, 12),
                initial_vis_rate: u32::MAX,
                steps_per_cycle: 5,
                frame_deadline: Some(std::time::Duration::from_millis(100)),
                on_client_loss: ClientLossPolicy::Headless,
                ..Default::default()
            },
        )
        .unwrap()
    });
    let degraded = client_thread.join().unwrap();
    assert!(
        degraded.contains("[1]"),
        "rank 1 was the dead one: {degraded}"
    );
    assert_eq!(out.results[0].frames_degraded, 1);
    for r in &out.results {
        assert!(r.terminated_by_client);
    }
    let merged = out.merged_obs();
    assert_eq!(merged.counters["vis.composite.dropped"], 1);
    assert_eq!(merged.counters["fault.injected.drop"], 1);
}

/// A transport that dies (BrokenPipe) after a fixed number of sent
/// frames — the client-side view of a flaky network link.
struct FlakyTransport {
    inner: Box<dyn Transport>,
    sends_left: std::sync::Mutex<u32>,
}

impl Transport for FlakyTransport {
    fn send_frame(&self, frame: bytes::Bytes) -> std::io::Result<()> {
        let mut left = self.sends_left.lock().unwrap();
        if *left == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "flaky link dropped",
            ));
        }
        *left -= 1;
        self.inner.send_frame(frame)
    }
    fn try_recv_frame(&self) -> std::io::Result<Option<bytes::Bytes>> {
        self.inner.try_recv_frame()
    }
    fn recv_frame(&self) -> std::io::Result<bytes::Bytes> {
        self.inner.recv_frame()
    }
    fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }
}

/// A steering client whose connection dies mid-session redials with
/// backoff and carries on against the same (now headless) simulation.
#[test]
fn dropped_steering_client_auto_reconnects_with_backoff() {
    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
    let geo2 = geo.clone();
    let (connector, acceptor) = duplex_listener();
    let acceptor_slot = Arc::new(parking_lot::Mutex::new(Some(
        Box::new(acceptor) as Box<dyn hemelb::steering::Acceptor>
    )));

    let client_thread = std::thread::spawn(move || {
        // The first connection dies after 2 sent frames; redials get a
        // reliable link.
        let dials = std::sync::Mutex::new(0u32);
        let factory: TransportFactory = Box::new(move || {
            let mut d = dials.lock().unwrap();
            *d += 1;
            let t = Box::new(connector.connect()?) as Box<dyn Transport>;
            Ok(if *d == 1 {
                Box::new(FlakyTransport {
                    inner: t,
                    sends_left: std::sync::Mutex::new(2),
                })
            } else {
                t
            })
        });
        let client = SteeringClient::with_reconnect(
            factory,
            BackoffPolicy {
                initial: std::time::Duration::from_millis(1),
                max: std::time::Duration::from_millis(8),
                factor: 2,
                max_attempts: 6,
            },
        )
        .unwrap();
        let (first, _) = client.request_frame().unwrap(); // send #1
        client
            .send(&SteeringCommand::SetVisRate(1_000_000))
            .unwrap(); // send #2
                       // Send #3 hits the dead link mid-round; the client must redial
                       // and complete the round on the fresh connection.
        let (second, _) = client.request_frame().unwrap();
        assert!(second.step >= first.step);
        client.send(&SteeringCommand::Terminate).unwrap();
        while client.recv().is_ok() {}
        client.obs_report()
    });

    let out = run_spmd(2, move |comm| {
        let owner: Vec<usize> = (0..geo2.fluid_count())
            .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
            .collect();
        let acceptor = if comm.is_master() {
            acceptor_slot.lock().take()
        } else {
            None
        };
        run_closed_loop_opts(
            geo2.clone(),
            owner,
            SolverConfig::pressure_driven(1.005, 0.995),
            comm,
            None,
            acceptor,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (16, 12),
                initial_vis_rate: u32::MAX,
                steps_per_cycle: 5,
                on_client_loss: ClientLossPolicy::Headless,
                ..Default::default()
            },
        )
        .unwrap()
    });
    let report = client_thread.join().unwrap();
    assert_eq!(
        report.counters["steer.reconnect"], 2,
        "initial dial plus one recovery redial"
    );
    for r in &out {
        assert!(r.terminated_by_client);
    }
}

/// Soak (ci.sh --soak): a 200-step run surviving two rank kills, each
/// recovered from checkpoints, still bit-exact against the fault-free
/// serial reference.
#[test]
#[ignore = "soak tier: run with --ignored"]
fn soak_200_step_run_survives_two_kills_bit_exactly() {
    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
    let cfg = SolverConfig::pressure_driven(1.01, 0.99);
    let mut reference = Solver::new(geo.clone(), cfg.clone());
    reference.step_n(200);
    let ref_rho = reference.snapshot().rho;

    let dir = scratch_dir("soak");
    let cp = dir.join("cp");
    let plan = FaultPlan::new(vec![
        FaultEvent {
            rank: 2,
            class: TagClass::Halo,
            step: 60,
            kind: FaultKind::KillRank,
        },
        FaultEvent {
            rank: 0,
            class: TagClass::Halo,
            step: 150,
            kind: FaultKind::KillRank,
        },
    ]);
    let (geo2, cfg2, cp2) = (geo.clone(), cfg.clone(), cp.clone());
    let out = run_spmd_opts(3, SpmdOptions::with_faults(plan), move |comm| {
        let owner: Vec<usize> = (0..geo2.fluid_count())
            .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
            .collect();
        let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
        if cp2.join(format!("rank_{}.chkp", comm.rank())).exists() {
            ds.restore(&cp2).unwrap();
        }
        while ds.step_count() < 200 {
            let burst = 25 - ds.step_count() % 25;
            ds.step_n(burst.min(200 - ds.step_count())).unwrap();
            ds.checkpoint(&cp2).unwrap();
        }
        ds.gather_snapshot().unwrap()
    });
    let merged = out.merged_obs();
    assert_eq!(merged.counters["fault.restarts"], 2);
    let snap = out.results[0].as_ref().expect("master gathers");
    assert_eq!(snap.rho, ref_rho, "200-step recovery is bit-exact");
    std::fs::remove_dir_all(&dir).ok();
}
