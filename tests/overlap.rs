//! Overlapped-halo-exchange equivalence suite: the frontier-first
//! schedule (collide frontier → post sends → interior compute under
//! in-flight messages → arrival-order drain → frontier stream) must be
//! **bit-identical** to the synchronous schedule and to the serial
//! solver, over random geometries × kernel layouts × collision
//! operators × boundary-condition families. Checkpoints written
//! mid-run under one schedule must restore and continue under the
//! other on the same bit trajectory, and the overlap accounting in
//! `CommStats` must engage exactly when the overlapped path runs.

mod common;

use hemelb::core::{DistSolver, KernelLayout, Solver, SolverConfig};
use hemelb::geometry::VesselBuilder;
use hemelb::parallel::{
    run_spmd, run_spmd_opts, run_spmd_with_stats, FaultEvent, FaultKind, FaultPlan, SpmdOptions,
    TagClass,
};
use proptest::prelude::*;
use std::sync::Arc;

const LAYOUTS: [KernelLayout; 3] = [
    KernelLayout::Legacy,
    KernelLayout::SoaScalar,
    KernelLayout::SoaSimd,
];

/// Contiguous owner map splitting sites evenly by index.
fn even_owner(n: usize, p: usize) -> Vec<usize> {
    (0..n).map(|s| (s * p / n).min(p - 1)).collect()
}

/// Run `steps` of a distributed solve and return each rank's raw
/// distributions plus the root's gathered snapshot digests.
fn run_dist(
    geo: &Arc<hemelb::geometry::SparseGeometry>,
    cfg: &SolverConfig,
    ranks: usize,
    steps: u64,
) -> (Vec<Vec<f64>>, (u64, u64, u64)) {
    let geo2 = geo.clone();
    let cfg2 = cfg.clone();
    let results = run_spmd(ranks, move |comm| {
        let owner = even_owner(geo2.fluid_count(), comm.size());
        let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
        ds.step_n(steps).unwrap();
        let f = ds.raw_distributions().to_vec();
        (f, ds.gather_snapshot().unwrap())
    });
    let digests = common::snapshot_digests(results[0].1.as_ref().expect("root gathers"));
    (results.into_iter().map(|(f, _)| f).collect(), digests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random geometries × {D3Q15, D3Q19} × {BGK, TRT, MRT} ×
    /// {pressure, velocity} × all three kernel layouts: the overlapped
    /// schedule equals the synchronous schedule **per rank, per
    /// population**, and both equal the serial solver, by `to_bits`.
    #[test]
    fn overlapped_equals_sync_and_serial_bitwise(case in common::case_strategy()) {
        let geo = case.geo.build();
        let steps = 10u64;
        for layout in LAYOUTS {
            let cfg = case.config().with_layout(layout);
            let mut serial = Solver::new(geo.clone(), cfg.clone());
            serial.step_n(steps);
            let want = common::snapshot_digests(&serial.snapshot());

            let (f_over, snap_over) = run_dist(&geo, &cfg.clone().with_overlap(true), 2, steps);
            let (f_sync, snap_sync) = run_dist(&geo, &cfg.with_overlap(false), 2, steps);

            prop_assert_eq!(want, snap_over, "overlap vs serial, {:?} {:?}", layout, &case);
            prop_assert_eq!(want, snap_sync, "sync vs serial, {:?} {:?}", layout, &case);
            for (rank, (a, b)) in f_over.iter().zip(&f_sync).enumerate() {
                prop_assert!(
                    common::bits_eq(a, b),
                    "rank {} distributions diverged, {:?} {:?}", rank, layout, &case
                );
            }
        }
    }
}

/// A checkpoint written mid-run under the overlapped schedule restores
/// into a synchronous solver (and vice versa) and continues on the
/// exact bit trajectory of an uninterrupted run — the two schedules are
/// interchangeable at any step boundary.
#[test]
fn checkpoint_hands_off_between_overlapped_and_sync() {
    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
    let base = SolverConfig::pressure_driven(1.01, 0.99);
    let (f_ref, _) = run_dist(&geo, &base.clone().with_overlap(true), 2, 20);

    for (first_overlap, then_overlap) in [(true, false), (false, true)] {
        let dir = std::env::temp_dir().join(format!(
            "hemelb_overlap_handoff_{first_overlap}_{}",
            std::process::id()
        ));
        let geo2 = geo.clone();
        let cfg_a = base.clone().with_overlap(first_overlap);
        let cfg_b = base.clone().with_overlap(then_overlap);
        let dir2 = dir.clone();
        let results = run_spmd(2, move |comm| {
            let owner = even_owner(geo2.fluid_count(), comm.size());
            let mut a = DistSolver::new(geo2.clone(), owner.clone(), cfg_a.clone(), comm).unwrap();
            a.step_n(10).unwrap();
            a.checkpoint(&dir2).unwrap();
            // Hand off: a fresh solver under the *other* schedule picks
            // up the state and finishes the run.
            let mut b = DistSolver::new(geo2.clone(), owner, cfg_b.clone(), comm).unwrap();
            b.restore(&dir2).unwrap();
            assert_eq!(b.step_count(), 10);
            b.step_n(10).unwrap();
            b.raw_distributions().to_vec()
        });
        for (rank, f) in results.iter().enumerate() {
            assert!(
                common::bits_eq(f, &f_ref[rank]),
                "rank {rank} diverged after {first_overlap}->{then_overlap} hand-off"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Overlap accounting engages exactly when the overlapped path runs:
/// an overlapped multi-rank run records latency-hiding compute seconds
/// (efficiency in (0, 1]), a synchronous run records none, and a
/// zero-peer rank reports the fast path through the public accessors.
#[test]
fn overlap_accounting_and_degenerate_fast_path() {
    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
    let base = SolverConfig::pressure_driven(1.01, 0.99);

    for overlap in [true, false] {
        let geo2 = geo.clone();
        let cfg = base.clone().with_overlap(overlap);
        let out = run_spmd_with_stats(2, move |comm| {
            let owner = even_owner(geo2.fluid_count(), comm.size());
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
            assert_eq!(ds.overlap_active(), overlap);
            let part = ds.partition();
            assert_eq!(
                part.frontier_count() + part.interior_count(),
                part.site_count()
            );
            ds.step_n(10).unwrap();
            ds.local_snapshot().rho.len()
        });
        assert!(out.results.iter().all(|&n| n > 0));
        let total = &out.summary.total;
        if overlap {
            assert!(
                total.overlap_compute_secs() > 0.0,
                "overlapped run must record latency-hiding compute"
            );
            let eff = total.overlap_efficiency();
            assert!((0.0..=1.0).contains(&eff), "efficiency {eff} out of range");
        } else {
            assert_eq!(total.overlap_compute_secs(), 0.0);
            assert_eq!(total.overlap_residual_secs(), 0.0);
        }
    }

    // Zero peers: overlap configured on, but nothing to overlap with.
    let geo2 = geo.clone();
    let cfg = base.clone();
    run_spmd(1, move |comm| {
        let owner = vec![0; geo2.fluid_count()];
        let mut ds = DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
        assert!(!ds.overlap_active(), "no peers, no overlap");
        assert_eq!(ds.partition().frontier_count(), 0);
        ds.step_n(3).unwrap();
    });
}

/// Composition with the PR 4 fault plans: a per-peer `Delay` on the
/// halo class slows the exchange but must not perturb a single bit —
/// overlap hides latency, never reorders physics. The delays are
/// counted by the fault accounting, and the overlapped run records
/// residual halo wait.
#[test]
fn overlapped_run_is_bit_exact_under_injected_delay() {
    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
    let cfg = SolverConfig::pressure_driven(1.01, 0.99);
    let steps = 6u64;
    let mut serial = Solver::new(geo.clone(), cfg.clone());
    serial.step_n(steps);
    let want = common::snapshot_digests(&serial.snapshot());

    // One persistent delay event: the matcher fires on every send with
    // `step >= ev.step`, so this slows every halo send of the run.
    let plan = FaultPlan::new(vec![FaultEvent {
        rank: 1,
        class: TagClass::Halo,
        step: 0,
        kind: FaultKind::Delay { millis: 20 },
    }]);
    let geo2 = geo.clone();
    let cfg2 = cfg.clone().with_overlap(true);
    let out = run_spmd_opts(3, SpmdOptions::with_faults(plan), move |comm| {
        let owner = even_owner(geo2.fluid_count(), comm.size());
        let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
        ds.step_n(steps).unwrap();
        ds.gather_snapshot().unwrap()
    });
    let got = common::snapshot_digests(out.results[0].as_ref().expect("root gathers"));
    assert_eq!(want, got, "delay fault must not change any bit");
    assert!(
        out.summary.total.faults(hemelb::parallel::FaultStat::Delay) > 0,
        "the injected delays must have fired"
    );
}
