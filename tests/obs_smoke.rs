//! Observability smoke test: after a short closed-loop run, every
//! layer's phase timings are present and nonzero, the per-rank reports
//! aggregate, and the JSON export round-trips exactly.

use hemelb::core::SolverConfig;
use hemelb::geometry::VesselBuilder;
use hemelb::obs::ObsReport;
use hemelb::parallel::{run_spmd_opts, SpmdOptions, TagClass};
use hemelb::steering::{
    duplex_pair, run_closed_loop, ClosedLoopConfig, SteeringClient, SteeringCommand, Transport,
};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn obs_reports_survive_json_and_show_real_phase_timings() {
    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
    let (client_end, server_end) = duplex_pair();
    let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));

    let client_thread = std::thread::spawn(move || {
        let client = SteeringClient::new(Box::new(client_end));
        for _ in 0..3 {
            client.request_frame().unwrap();
        }
        client.send(&SteeringCommand::Terminate).unwrap();
        while client.recv().is_ok() {}
        client.obs_report()
    });

    let geo2 = geo.clone();
    let output = run_spmd_opts(2, SpmdOptions::default(), move |comm| {
        let transport = if comm.is_master() {
            server_slot.lock().take()
        } else {
            None
        };
        let owner: Vec<usize> = (0..geo2.fluid_count())
            .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
            .collect();
        run_closed_loop(
            geo2.clone(),
            owner,
            SolverConfig::pressure_driven(1.01, 0.99),
            comm,
            transport,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (32, 24),
                initial_vis_rate: u32::MAX,
                steps_per_cycle: 10,
                vis_aware_repartition: false,
                ..Default::default()
            },
        )
        .unwrap()
    });
    let client_report = client_thread.join().unwrap();

    // Every rank produced a rank-stamped report with real LB phase time.
    assert_eq!(output.obs.len(), 2);
    for (r, report) in output.obs.iter().enumerate() {
        assert_eq!(report.rank, Some(r));
        for phase in ["lb.collide", "lb.stream", "lb.halo-wait", "sim.step"] {
            let p = report
                .phases
                .get(phase)
                .unwrap_or_else(|| panic!("rank {r} missing {phase}"));
            assert!(p.calls > 0, "rank {r}: {phase} has zero calls");
        }
        assert!(report.phases["lb.collide"].total_secs > 0.0);
    }

    // The aggregate sums the per-rank call counts.
    let merged = output.merged_obs();
    assert_eq!(
        merged.phases["lb.collide"].calls,
        output
            .obs
            .iter()
            .map(|o| o.phases["lb.collide"].calls)
            .sum::<u64>()
    );

    // Per-tag-class wait time was accounted alongside byte counts.
    assert!(output.summary.total.recv_wait_secs(TagClass::Collective) >= 0.0);
    assert!(
        output.summary.total.bytes(TagClass::Halo) > 0,
        "halo traffic flowed"
    );

    // The client measured all three requested rounds end to end.
    let rtt = &client_report.phases["steer.rtt"];
    assert_eq!(rtt.calls, 3);
    assert!(rtt.total_secs > 0.0);
    assert!(rtt.hist.p95() >= rtt.hist.p50());

    // JSON export round-trips bit-exactly for every report.
    for report in output.obs.iter().chain([&merged, &client_report]) {
        let json = report.to_json();
        let parsed = ObsReport::from_json(&json).expect("export must parse");
        assert_eq!(&parsed, report, "JSON round trip must be lossless");
    }

    // And the human-readable table mentions the phases and quantiles.
    let table = merged.render_table();
    assert!(table.contains("lb.collide"));
    assert!(table.contains("p95"));
}
