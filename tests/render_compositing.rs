//! Integration tests for the accelerated render path: the macrocell
//! marcher must be bit-identical to the naive marcher over the full
//! random-geometry family, and the run-length sparse compositing
//! encoding must be lossless and strictly smaller than dense on
//! sparse images.

use hemelb::core::{Solver, SolverConfig};
use hemelb::geometry::Vec3;
use hemelb::insitu::camera::Camera;
use hemelb::insitu::compositing::{
    binary_swap, dense_bytes, direct_send, encode_pixel_runs, merge_pixel_runs,
};
use hemelb::insitu::field::Scalar;
use hemelb::insitu::image::PartialImage;
use hemelb::insitu::volume::{render_brick_opts, Brick, RenderOptions};
use hemelb::insitu::TransferFunction;
use hemelb::parallel::run_spmd_with_stats;
use proptest::prelude::*;
use std::sync::Arc;

mod common;

const W: u32 = 48;
const H: u32 = 36;

fn partials_bit_eq(a: &PartialImage, b: &PartialImage) -> bool {
    a.image
        .pixels
        .iter()
        .zip(&b.image.pixels)
        .all(|(pa, pb)| (0..4).all(|c| pa[c].to_bits() == pb[c].to_bits()))
        && a.depth
            .iter()
            .zip(&b.depth)
            .all(|(da, db)| da.to_bits() == db.to_bits())
}

/// Render a short developed flow on `spec`'s geometry both ways and
/// compare bitwise, for a scalar/transfer-function pair.
fn check_bit_identity(spec: &common::GeoSpec, scalar: Scalar, grey: bool) {
    let geo = spec.build();
    let mut solver = Solver::new(geo.clone(), SolverConfig::pressure_driven(1.005, 0.995));
    solver.step_n(5);
    let snap = Arc::new(solver.snapshot());

    let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
    let brick = Brick::from_sites(&geo, &snap, scalar, &all).expect("fluid sites exist");
    let lohi = (0..snap.len()).fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), i| {
        let v = match scalar {
            Scalar::Density => snap.rho[i],
            _ => snap.speed(i),
        };
        (lo.min(v), hi.max(v))
    });
    let tf = if grey {
        TransferFunction::grey(lohi.0, lohi.1.max(lohi.0 + 1e-9))
    } else {
        TransferFunction::heat(lohi.0, lohi.1.max(lohi.0 + 1e-9))
    };
    let s = geo.shape();
    let cam = Camera::framing(
        Vec3::ZERO,
        Vec3::new(s[0] as f64, s[1] as f64, s[2] as f64),
        Vec3::new(0.4, -1.0, 0.3),
        W,
        H,
    );

    let naive = RenderOptions {
        macrocells: false,
        lut_size: None,
    };
    let (img_naive, _) = render_brick_opts(&brick, &cam, &tf, 0.5, &naive);
    let (img_accel, _) = render_brick_opts(&brick, &cam, &tf, 0.5, &RenderOptions::default());
    assert!(
        partials_bit_eq(&img_naive, &img_accel),
        "macrocell render diverged from naive on {spec:?} ({scalar:?}, grey={grey})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: empty-space skipping never changes a
    /// single bit of the image, across cylinders, bifurcations and
    /// porous blocks.
    #[test]
    fn macrocell_march_is_bit_identical_over_random_geometry(spec in common::geo_strategy()) {
        check_bit_identity(&spec, Scalar::Speed, false);
        check_bit_identity(&spec, Scalar::Density, true);
    }

    /// Run-length encoding is lossless for arbitrary lit patterns:
    /// decode(encode(p)) reproduces every pixel and depth bit.
    #[test]
    fn pixel_run_encoding_round_trips(
        lit in proptest::collection::vec(any::<bool>(), 1..400),
        seed: u64,
    ) {
        let n = lit.len();
        let mut p = PartialImage::new(n as u32, 1);
        let mut h = seed | 1;
        for (i, &on) in lit.iter().enumerate() {
            if on {
                h = h.wrapping_mul(0x2545F4914F6CDD1D).rotate_left(17);
                let v = (h >> 40) as f32 / (1u64 << 24) as f32;
                p.image.pixels[i] = [v, 1.0 - v, v * 0.5, (v * 0.9).max(1e-3)];
                p.depth[i] = 1.0 + v;
            }
        }
        let payload = encode_pixel_runs(&p, 0..n);
        let mut back = PartialImage::new(n as u32, 1);
        let range = merge_pixel_runs(&mut back, payload.clone()).expect("valid payload");
        prop_assert_eq!(range, 0..n);
        prop_assert!(partials_bit_eq(&p, &back));
        // Sparse never exceeds dense by more than the run table of a
        // worst-case alternating pattern.
        let lit_count = lit.iter().filter(|&&b| b).count();
        prop_assert!(payload.len() <= dense_bytes(n) + 16 * lit_count,
            "payload {} vs dense {}", payload.len(), dense_bytes(n));
        // All-transparent regions encode to the fixed header alone.
        if lit_count == 0 {
            prop_assert_eq!(payload.len(), 32);
        }
    }
}

#[test]
fn distributed_composites_agree_and_sparse_beats_dense() {
    let geo = common::GeoSpec::Cylinder {
        len: 14.0,
        radius: 3.0,
    }
    .build();
    let mut solver = Solver::new(geo.clone(), SolverConfig::pressure_driven(1.01, 0.99));
    solver.step_n(10);
    let snap = Arc::new(solver.snapshot());
    let s = geo.shape();
    let cam = Camera::framing(
        Vec3::ZERO,
        Vec3::new(s[0] as f64, s[1] as f64, s[2] as f64),
        Vec3::new(0.3, -1.0, 0.2),
        96,
        72,
    );
    let max_speed = (0..snap.len()).map(|i| snap.speed(i)).fold(0.0, f64::max);
    let tf = TransferFunction::heat(0.0, max_speed.max(1e-9));

    let render_mine = |rank: usize, p: usize| {
        let mine: Vec<u32> = (0..geo.fluid_count() as u32)
            .filter(|&site| (geo.position(site)[0] as usize * p / s[0]).min(p - 1) == rank)
            .collect();
        match Brick::from_sites(&geo, &snap, Scalar::Speed, &mine) {
            Some(b) => render_brick_opts(&b, &cam, &tf, 0.5, &RenderOptions::default()).0,
            None => PartialImage::new(cam.width, cam.height),
        }
    };

    for p in [2usize, 4] {
        let rm = render_mine;
        let ds = run_spmd_with_stats(p, move |comm| {
            direct_send(comm, rm(comm.rank(), comm.size())).expect("direct send")
        });
        let rm = render_mine;
        let bs = run_spmd_with_stats(p, move |comm| {
            binary_swap(comm, rm(comm.rank(), comm.size())).expect("binary swap")
        });
        let (a, b) = (
            ds.results[0].as_ref().expect("master image"),
            bs.results[0].as_ref().expect("master image"),
        );
        let images_eq = a
            .pixels
            .iter()
            .zip(&b.pixels)
            .all(|(pa, pb)| (0..4).all(|c| pa[c].to_bits() == pb[c].to_bits()));
        assert!(images_eq, "direct-send and binary-swap disagree at p={p}");
        for out in [&ds, &bs] {
            let merged = out.merged_obs();
            let wire = merged.counters["vis.composite.bytes_wire"];
            let dense = merged.counters["vis.composite.bytes_dense"];
            assert!(
                wire > 0 && wire < dense,
                "sparse compositing must beat dense at p={p}: {wire} vs {dense}"
            );
        }
    }
}
