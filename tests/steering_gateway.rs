//! Multi-client steering through the session gateway, end to end:
//! observer churn must not perturb the simulation, driver hand-off is
//! deterministic, and a wedged observer cannot stall the step loop.

use hemelb::core::SolverConfig;
use hemelb::geometry::VesselBuilder;
use hemelb::parallel::run_spmd;
use hemelb::steering::protocol::ServerMessage;
use hemelb::steering::{
    duplex_listener, run_closed_loop_opts, Acceptor, ClosedLoopConfig, GatewayConfig,
    SteeringClient, SteeringCommand, TcpAcceptor, TcpTransport,
};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn demo_geo() -> Arc<hemelb::geometry::SparseGeometry> {
    Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0))
}

fn slab_owner(geo: &hemelb::geometry::SparseGeometry, p: usize) -> Vec<usize> {
    (0..geo.fluid_count() as u32)
        .map(|s| (geo.position(s)[0] as usize * p / geo.shape()[0]).min(p - 1))
        .collect()
}

fn loop_cfg(gateway: Option<GatewayConfig>, max_steps: u64) -> ClosedLoopConfig {
    ClosedLoopConfig {
        max_steps,
        image: (32, 24),
        initial_vis_rate: 25,
        steps_per_cycle: 5,
        vis_aware_repartition: false,
        gather_final_fields: true,
        gateway,
        ..Default::default()
    }
}

/// Run the closed loop to `max_steps` with the given gateway config and
/// client script; returns the master's outcome.
fn run_to_completion(
    gateway: Option<GatewayConfig>,
    max_steps: u64,
    script: impl FnOnce(hemelb::steering::DuplexConnector) + Send + 'static,
) -> hemelb::steering::ClosedLoopOutcome {
    let geo = demo_geo();
    let (connector, acceptor) = duplex_listener();
    let acceptor_slot = Arc::new(Mutex::new(Some(Box::new(acceptor) as Box<dyn Acceptor>)));
    let client_thread = std::thread::spawn(move || script(connector));
    let geo2 = geo.clone();
    let cfg = loop_cfg(gateway, max_steps);
    let mut results = run_spmd(2, move |comm| {
        let acceptor = if comm.is_master() {
            acceptor_slot.lock().take()
        } else {
            None
        };
        run_closed_loop_opts(
            geo2.clone(),
            slab_owner(&geo2, comm.size()),
            SolverConfig::pressure_driven(1.005, 0.995),
            comm,
            None,
            acceptor,
            &cfg,
        )
        .unwrap()
    });
    client_thread.join().expect("client script");
    assert!(
        results[1].final_fields.is_none(),
        "only the master gathers the final fields"
    );
    results.swap_remove(0)
}

/// A driver that keeps requesting frames until the run ends underneath
/// it (max_steps reached, server dropped).
fn frame_pump(connector: hemelb::steering::DuplexConnector) {
    let driver = SteeringClient::new(Box::new(connector.connect().unwrap()));
    while driver.request_frame().is_ok() {}
}

#[test]
fn observer_churn_leaves_the_simulation_bit_exact() {
    // Baseline: the historical single-client server, one driver, no
    // gateway anywhere near the step loop.
    let baseline = run_to_completion(None, 400, frame_pump);
    let baseline_fields = baseline.final_fields.expect("baseline gathers fields");

    // Gateway run: the same driver script while three waves of four
    // observers attach, watch a little, and vanish mid-run.
    let churned = run_to_completion(Some(GatewayConfig::default()), 400, |connector| {
        let driver_conn = connector.clone();
        let driver = std::thread::spawn(move || frame_pump(driver_conn));
        let mut waves = Vec::new();
        for _ in 0..3 {
            for _ in 0..4 {
                let conn = connector.clone();
                waves.push(std::thread::spawn(move || {
                    if let Ok(t) = conn.connect() {
                        let client = SteeringClient::new(Box::new(t));
                        // Watch a few broadcasts, then disconnect rudely.
                        for _ in 0..3 {
                            if client.recv().is_err() {
                                break;
                            }
                        }
                    }
                }));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        for w in waves {
            w.join().expect("observer wave");
        }
        driver.join().expect("driver");
    });
    let churned_fields = churned.final_fields.expect("churned run gathers fields");

    assert_eq!(baseline.steps_done, churned.steps_done);
    assert_eq!(
        baseline_fields, churned_fields,
        "observer churn must not perturb the physics"
    );
    assert!(churned.sessions_peak >= 2, "observers actually attached");
}

#[test]
fn driver_hand_off_is_deterministic_and_promotes_the_survivor() {
    let outcome = run_to_completion(
        Some(GatewayConfig::default()),
        u64::MAX / 2, // only the promoted driver's Terminate ends this run
        |connector| {
            // Session 1: the driver. A first frame proves it attached
            // (and therefore claimed the driver role) before anyone else.
            let driver = SteeringClient::new(Box::new(connector.connect().unwrap()));
            let (_, _) = driver.request_frame().expect("driver frame");

            // Session 2: an observer whose commands are rejected.
            let observer = SteeringClient::new(Box::new(connector.connect().unwrap()));
            observer.send(&SteeringCommand::Pause).unwrap();
            let saw_rejection = |msg: &ServerMessage| match msg {
                ServerMessage::Status(s) => s.problems.iter().any(|p| p.contains("rejected")),
                _ => false,
            };
            loop {
                driver.send(&SteeringCommand::RequestFrame).unwrap();
                let msg = observer.recv().expect("broadcast while observing");
                if saw_rejection(&msg) {
                    break;
                }
            }

            // The driver disconnects; the lowest surviving session id is
            // promoted — the observer, whose commands now apply.
            drop(driver);
            loop {
                match observer.recv().expect("broadcast after hand-off") {
                    ServerMessage::Status(s)
                        if s.problems.iter().any(|p| p.contains("hand-off")) =>
                    {
                        break
                    }
                    _ => {}
                }
            }
            observer.send(&SteeringCommand::Terminate).unwrap();
            while observer.recv().is_ok() {}
        },
    );
    assert!(
        outcome.terminated_by_client,
        "the promoted observer's Terminate was honoured"
    );
    assert_eq!(outcome.sessions_peak, 2);
}

fn connect_with_retry(addr: SocketAddr) -> TcpStream {
    let mut last_err = None;
    for attempt in 0..50 {
        match TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
            Ok(stream) => return stream,
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(10 * (attempt + 1)));
            }
        }
    }
    panic!("connect to {addr} failed after bounded retries: {last_err:?}");
}

#[test]
fn wedged_tcp_observer_cannot_stall_the_step_loop() {
    let geo = demo_geo();
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr().expect("addr");
    let acceptor_slot = Arc::new(Mutex::new(Some(Box::new(acceptor) as Box<dyn Acceptor>)));

    let client_thread = std::thread::spawn(move || {
        let driver = SteeringClient::new(Box::new(
            TcpTransport::new(connect_with_retry(addr)).expect("driver transport"),
        ));
        let (_, _) = driver.request_frame().expect("driver attaches first");

        // The wedge: a socket that connects and then never reads a byte.
        // Dense frames fill its kernel buffers, the gateway's buffered
        // sends start backlogging, and the degradation ladder must kick
        // in — without a single blocked step cycle.
        let wedge = connect_with_retry(addr);

        let mut degraded = false;
        for _ in 0..400 {
            driver.send(&SteeringCommand::RequestFrame).unwrap();
            let (_, statuses) = driver.wait_for_image().expect("frame despite the wedge");
            if statuses.iter().any(|s| {
                s.problems
                    .iter()
                    .any(|p| p.contains("status-only") || p.contains("wedged"))
            }) {
                degraded = true;
                break;
            }
        }
        assert!(
            degraded,
            "the wedged observer was never degraded or detached"
        );
        driver.send(&SteeringCommand::Terminate).unwrap();
        while driver.recv().is_ok() {}
        drop(wedge);
    });

    let geo2 = geo.clone();
    let outcome = run_spmd(2, move |comm| {
        let acceptor = if comm.is_master() {
            acceptor_slot.lock().take()
        } else {
            None
        };
        run_closed_loop_opts(
            geo2.clone(),
            slab_owner(&geo2, comm.size()),
            SolverConfig::pressure_driven(1.005, 0.995),
            comm,
            None,
            acceptor,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (160, 120),
                initial_vis_rate: u32::MAX, // frames only on request
                steps_per_cycle: 5,
                vis_aware_repartition: false,
                gateway: Some(GatewayConfig {
                    // Dense frames so every broadcast carries real bytes,
                    // and a hair-trigger ladder so the wedge is caught as
                    // soon as the kernel buffers fill.
                    sparse_frames: false,
                    degrade_queued_bytes: 1,
                    detach_queued_bytes: 1 << 20,
                    drain_deadline: Duration::from_millis(200),
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .unwrap()
    })
    .swap_remove(0);
    client_thread.join().expect("client thread");
    assert!(outcome.terminated_by_client, "driver stayed in control");
    assert_eq!(outcome.sessions_peak, 2, "driver + wedge");
}
