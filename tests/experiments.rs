//! The experiment suite at test scale: every table/figure experiment of
//! `DESIGN.md` §3 runs end-to-end and its *shape* assertions hold (who
//! wins, what grows, what shrinks — the reproduction criteria).

use hemelb_bench::workloads::Size;
use hemelb_bench::{fig1, fig2, fig3, fig4, multires, preprocess, repartition, scaling, table1};

#[test]
fn e1_table1_orderings() {
    let result = table1::run(table1::Table1Params {
        size: Size::Tiny,
        ranks: 4,
        flow_steps: 150,
        seeds: 16,
        particle_steps: 150,
    });
    let problems = result.check_orderings();
    assert!(problems.is_empty(), "{problems:?}");
}

#[test]
fn e2_fig1_sparse_storage_wins() {
    let result = fig1::run(&[Size::Tiny]);
    let row = &result.rows[0];
    assert!(row.sparse_bytes < row.dense_bytes / 2);
    assert!(row.fluid_fraction < 0.5);
}

#[test]
fn e3_fig2_steering_round_trip_works_at_multiple_sizes() {
    let result = fig2::run(Size::Tiny, &[(2, (32, 24)), (4, (64, 48))], 2);
    for row in &result.rows {
        assert_eq!(row.rtts.len(), 2, "ranks={}", row.ranks);
        assert!(row.frames >= 2);
        assert!(row.steering_bytes > 0);
    }
    // Bigger images cost more steering bandwidth.
    assert!(result.rows[1].steering_bytes > result.rows[0].steering_bytes);
}

#[test]
fn e4_fig3_pipeline_reduces_data() {
    let result = fig3::run(Size::Tiny, 3, (48, 36));
    let (full, reduced) = result.filtered_bytes();
    assert!(reduced < full / 2, "{reduced} vs {full}");
    // All four canonical stages ran in both variants.
    for stats in [&result.full, &result.reduced] {
        let names: Vec<_> = stats.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["extract", "filter", "map", "render"]);
    }
}

#[test]
fn e5_e6_fig4_images_render() {
    let a = fig4::run_4a(Size::Tiny, 2, 96, 72);
    assert!(a.coverage > 0.03 && a.coverage < 0.9, "{}", a.coverage);
    assert_eq!(a.data_bytes, 0);
    std::fs::remove_file(&a.path).ok();

    let b = fig4::run_4b(Size::Tiny, 2, 9, 96, 72);
    assert!(b.lines >= 4);
    assert!(b.coverage > 0.003);
    std::fs::remove_file(&b.path).ok();
}

#[test]
fn e7_scaling_shape() {
    let result = scaling::run(Size::Tiny, &[1, 4], 4);
    // Halo traffic appears only with >1 rank.
    for name in ["naive", "hilbert", "kway"] {
        let rows = result.rows_for(name);
        assert_eq!(rows[0].halo_bytes_per_step, 0);
        assert!(rows[1].halo_bytes_per_step > 0);
        assert!(rows[1].imbalance < 1.5, "{name}: {}", rows[1].imbalance);
    }
    // The projection prices with the *calibrated* model, so the exact
    // comm share depends on this box's measured in-process rates (far
    // slower than a real interconnect — often comm-dominated at 32k);
    // the invariant is that it is a genuine fraction, not the old
    // hand-constant artefact of always landing compute-dominated.
    assert!(result.projection.comm_fraction > 0.0);
    assert!(result.projection.comm_fraction < 1.0);
    assert!(result.projection.model.gamma.is_finite());
}

#[test]
fn e8_reading_core_tradeoff() {
    let result = preprocess::run(Size::Tiny, 8, &[1, 8]);
    let one = &result.rows[0];
    let all = &result.rows[1];
    assert!(one.max_file_bytes_per_reader >= 8 * all.max_file_bytes_per_reader / 10 * 8 / 8);
    assert!(one.max_file_bytes_per_reader > all.max_file_bytes_per_reader);
    assert!(all.forward_bytes < one.forward_bytes);
}

#[test]
fn e9_multires_shape() {
    let result = multires::run(Size::Tiny);
    assert!(result.rows.len() >= 4, "enough levels to be interesting");
    assert!(result.rows.last().unwrap().l2_error < 1e-12);
    assert!(result.rows[1].prefix_bytes < result.full_bytes);
    assert!(result.roi_nodes < result.fine_nodes);
}

#[test]
fn e10_repartition_shape() {
    let result = repartition::run(Size::Tiny, 4);
    for v in &result.views {
        let base = &v.rows[0];
        let striped = &v.rows[2];
        assert!(striped.imbalance2 < base.imbalance2, "{}", v.view);
        assert!(striped.imbalance < 1.1);
    }
}
