//! Property-based tests (proptest) on the core invariants: wire
//! encoding, partition covers, octree tilings, compositing algebra,
//! collectives versus sequential references, and solver conservation.

use hemelb::core::equilibrium::{feq_all, moments};
use hemelb::core::model::LatticeModel;
use hemelb::geometry::VesselBuilder;
use hemelb::insitu::image::{over_px, PartialImage};
use hemelb::octree::FieldOctree;
use hemelb::parallel::{run_spmd, Wire, WireReader, WireWriter};
use hemelb::partition::graph::{Connectivity, SiteGraph};
use hemelb::partition::{
    quality, HilbertSfc, MortonSfc, MultilevelKWay, NaiveBlock, Partitioner, Rcb,
};
use proptest::prelude::*;

mod common;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_scalars_round_trip(a: u64, b: f64, c: bool, s in "\\PC{0,40}") {
        let mut w = WireWriter::new();
        w.put_u64(a);
        w.put_f64(b);
        w.put_bool(c);
        w.put_str(&s);
        let mut r = WireReader::new(w.finish());
        prop_assert_eq!(r.get_u64().unwrap(), a);
        let b2 = r.get_f64().unwrap();
        prop_assert!(b2 == b || (b.is_nan() && b2.is_nan()));
        prop_assert_eq!(r.get_bool().unwrap(), c);
        prop_assert_eq!(r.get_str().unwrap(), s);
        r.expect_end().unwrap();
    }

    #[test]
    fn wire_vectors_round_trip(v in proptest::collection::vec(any::<f64>(), 0..200)) {
        let mut w = WireWriter::new();
        w.put_f64_slice(&v);
        let mut r = WireReader::new(w.finish());
        let back = r.get_f64_vec().unwrap();
        prop_assert_eq!(back.len(), v.len());
        for (x, y) in back.iter().zip(&v) {
            prop_assert!(x == y || (x.is_nan() && y.is_nan()));
        }
    }

    #[test]
    fn truncated_payloads_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Decoding arbitrary bytes as various types must error, not panic.
        let b = bytes::Bytes::from(bytes);
        let _ = u64::from_bytes(b.clone());
        let _ = String::from_bytes(b.clone());
        let _ = Vec::<f64>::from_bytes(b.clone());
        let _ = Vec::<(u32, String)>::from_bytes(b);
    }

    #[test]
    fn equilibrium_moments_match_inputs(
        rho in 0.5f64..2.0,
        ux in -0.1f64..0.1,
        uy in -0.1f64..0.1,
        uz in -0.1f64..0.1,
    ) {
        for model in [LatticeModel::d3q15(), LatticeModel::d3q19()] {
            let mut f = vec![0.0; model.q];
            feq_all(&model, rho, [ux, uy, uz], &mut f);
            let (r, u) = moments(&model, &f);
            prop_assert!((r - rho).abs() < 1e-12);
            prop_assert!((u[0] - ux).abs() < 1e-12);
            prop_assert!((u[1] - uy).abs() < 1e-12);
            prop_assert!((u[2] - uz).abs() < 1e-12);
        }
    }

    #[test]
    fn over_operator_is_associative(
        a in proptest::array::uniform4(0.0f32..1.0),
        b in proptest::array::uniform4(0.0f32..1.0),
        c in proptest::array::uniform4(0.0f32..1.0),
    ) {
        // Premultiplied: colour channels must not exceed alpha.
        let clamp = |mut p: [f32; 4]| {
            for i in 0..3 {
                p[i] = p[i].min(p[3]);
            }
            p
        };
        let (a, b, c) = (clamp(a), clamp(b), clamp(c));
        let left = over_px(over_px(a, b), c);
        let right = over_px(a, over_px(b, c));
        for i in 0..4 {
            prop_assert!((left[i] - right[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn partial_merge_is_commutative(
        pa in proptest::collection::vec((proptest::array::uniform4(0.0f32..1.0), 0.0f32..10.0), 8),
        pb in proptest::collection::vec((proptest::array::uniform4(0.0f32..1.0), 0.0f32..10.0), 8),
    ) {
        let build = |data: &[([f32; 4], f32)]| {
            let mut p = PartialImage::new(4, 2);
            for (i, (px, d)) in data.iter().enumerate() {
                p.image.pixels[i] = *px;
                // Distinct depths avoid the tie case where ordering is
                // rank-determined.
                p.depth[i] = d + i as f32 * 1e-3;
            }
            p
        };
        let a = build(&pa);
        let b = build(&pb);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for i in 0..8 {
            if (a.depth[i] - b.depth[i]).abs() > 1e-6 {
                for k in 0..4 {
                    prop_assert!((ab.image.pixels[i][k] - ba.image.pixels[i][k]).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn partitioners_cover_arbitrary_tubes(
        len in 8.0f64..24.0,
        radius in 2.0f64..5.0,
        k in 2usize..6,
    ) {
        let geo = VesselBuilder::straight_tube(len, radius).voxelise(1.0);
        let graph = SiteGraph::from_geometry(&geo, Connectivity::Six);
        let partitioners: Vec<Box<dyn Partitioner>> = vec![
            Box::new(NaiveBlock),
            Box::new(MortonSfc),
            Box::new(HilbertSfc),
            Box::new(Rcb),
            Box::new(MultilevelKWay::default()),
        ];
        for p in &partitioners {
            let owner = p.partition(&graph, k);
            prop_assert_eq!(owner.len(), graph.len());
            prop_assert!(owner.iter().all(|&o| o < k), "{} out of range", p.name());
            let q = quality(&graph, &owner, k);
            prop_assert!(q.imbalance < 2.0, "{} imbalance {}", p.name(), q.imbalance);
        }
    }

    #[test]
    fn octree_cuts_tile_random_fields(
        seed in 0u64..1000,
        level in 0u8..5,
    ) {
        let geo = VesselBuilder::straight_tube(12.0, 3.0).voxelise(1.0);
        let n = geo.fluid_count();
        // Deterministic pseudo-random field from the seed.
        let field: Vec<f64> = (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let tree = FieldOctree::build(&geo, &field);
        let level = level.min(tree.depth());
        let cut = tree.cut_at_level(level);
        let covered: u64 = cut.iter().map(|node| node.agg.count as u64).sum();
        prop_assert_eq!(covered, n as u64);
        // Aggregate mean at the root equals the field mean.
        let root = &tree.nodes()[tree.root() as usize];
        let mean: f64 = field.iter().sum::<f64>() / n as f64;
        prop_assert!((root.agg.mean - mean).abs() < 1e-9);
        // Reconstruction error bounded by the field range.
        let err = tree.l2_error_at_level(&geo, &field, level);
        prop_assert!((0.0..=2.0).contains(&err));
    }

    #[test]
    fn allreduce_matches_sequential_fold(
        values in proptest::collection::vec(-1e6f64..1e6, 2..6),
    ) {
        let expect: f64 = values.iter().sum();
        let vals = values.clone();
        let results = run_spmd(values.len(), move |comm| {
            comm.all_reduce_f64(vals[comm.rank()], |a, b| a + b).unwrap()
        });
        for r in results {
            prop_assert!((r - expect).abs() < 1e-6 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn exscan_matches_prefix_sums(
        values in proptest::collection::vec(0u64..1000, 2..6),
    ) {
        let vals = values.clone();
        let results = run_spmd(values.len(), move |comm| {
            comm.exscan_u64(vals[comm.rank()]).unwrap()
        });
        let mut acc = 0u64;
        for (r, v) in results.iter().zip(&values) {
            prop_assert_eq!(*r, acc);
            acc += v;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn isosurfaces_of_spheres_are_watertight(
        cx in 6.0f64..14.0,
        cy in 6.0f64..14.0,
        cz in 6.0f64..14.0,
        r in 2.0f64..5.0,
    ) {
        use hemelb::insitu::isosurface::marching_tetrahedra;
        let dims = [20usize, 20, 20];
        let mesh = marching_tetrahedra(dims, move |x, y, z| {
            if x < 0 || y < 0 || z < 0
                || x >= dims[0] as i64 || y >= dims[1] as i64 || z >= dims[2] as i64 {
                return None;
            }
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            let dz = z as f64 - cz;
            Some((dx * dx + dy * dy + dz * dz).sqrt() - r)
        }, 0.0);
        prop_assert!(mesh.triangle_count() > 0);
        // Sphere fully interior (margins guaranteed by the ranges above
        // since centre ∈ [6,14] and r < 5 ⇒ surface within [1,19]).
        prop_assert!(mesh.is_watertight());
        // Area within 25% of the analytic value at this coarse grid.
        let expect = 4.0 * std::f64::consts::PI * r * r;
        prop_assert!((mesh.area() - expect).abs() / expect < 0.25);
    }

    #[test]
    fn steering_commands_round_trip(kind in 0u8..10, a in any::<f64>(), b in any::<u32>()) {
        use hemelb::steering::{FieldChoice, SteeringCommand};
        let a = if a.is_finite() { a } else { 1.0 };
        let cmd = match kind {
            0 => SteeringCommand::SetCamera {
                eye: [a, 1.0, 2.0],
                target: [0.0, a, 0.0],
                up: [0.0, 0.0, 1.0],
                fov_y: 0.7,
            },
            1 => SteeringCommand::SetField(match b % 3 {
                0 => FieldChoice::Density,
                1 => FieldChoice::Speed,
                _ => FieldChoice::Shear,
            }),
            2 => SteeringCommand::SetVisRate(b),
            3 => SteeringCommand::SetRoi {
                lo: [b % 100, 0, 1],
                hi: [b % 100 + 5, 10, 11],
            },
            4 => SteeringCommand::SetInletPressure { id: b % 4, rho: a },
            5 => SteeringCommand::Pause,
            6 => SteeringCommand::Resume,
            7 => SteeringCommand::RequestFrame,
            8 => SteeringCommand::RequestObservables,
            _ => SteeringCommand::Terminate,
        };
        let bytes = cmd.to_bytes();
        prop_assert_eq!(SteeringCommand::from_bytes(bytes).unwrap(), cmd);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn calibrated_model_round_trips_bench_json_losslessly(
        alpha in any::<f64>(),
        beta in any::<f64>(),
        gamma in any::<f64>(),
        r2 in any::<f64>(),
        residuals in proptest::collection::vec(any::<f64>(), 0..8),
    ) {
        // BENCH_projection.json carries the calibrated model as bit-split
        // counters (hi/lo 32-bit halves of each f64): the round trip must
        // be exact to the bit for *every* f64, including NaN, ±inf and
        // subnormals, or a re-gated baseline would drift.
        use hemelb::obs::{ObsReport, Recorder};
        use hemelb::parallel::{CalibratedModel, CostModel};
        let cal = CalibratedModel {
            model: CostModel { alpha, beta, gamma },
            residuals: residuals.clone(),
            r2,
            samples: residuals.len(),
        };
        let mut rec = Recorder::new();
        cal.record_to(&mut rec, "projection.model");
        let json = rec.report().to_json();
        let report = ObsReport::from_json(&json).unwrap();
        let back = CalibratedModel::from_report(&report, "projection.model").unwrap();
        prop_assert_eq!(back.model.alpha.to_bits(), alpha.to_bits());
        prop_assert_eq!(back.model.beta.to_bits(), beta.to_bits());
        prop_assert_eq!(back.model.gamma.to_bits(), gamma.to_bits());
        prop_assert_eq!(back.r2.to_bits(), r2.to_bits());
        prop_assert_eq!(back.samples, residuals.len());
        prop_assert_eq!(back.residuals.len(), residuals.len());
        for (a, b) in back.residuals.iter().zip(&residuals) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn calibration_fit_is_deterministic(
        raw in proptest::collection::vec(
            (0u64..1000, 0u64..1_000_000, 0u64..1_000_000, 0.0f64..10.0),
            3..24,
        ),
    ) {
        // The fit runs collectively (every rank fits the same all-reduced
        // samples and must land on the identical model), so identical
        // inputs must produce bit-identical outputs — or identical errors.
        use hemelb::parallel::{calibrate_fit, CalSample};
        let samples: Vec<CalSample> = raw
            .iter()
            .map(|&(msgs, bytes, work, secs)| CalSample { msgs, bytes, work, secs })
            .collect();
        match (calibrate_fit(&samples), calibrate_fit(&samples)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.model.alpha.to_bits(), b.model.alpha.to_bits());
                prop_assert_eq!(a.model.beta.to_bits(), b.model.beta.to_bits());
                prop_assert_eq!(a.model.gamma.to_bits(), b.model.gamma.to_bits());
                prop_assert_eq!(a.r2.to_bits(), b.r2.to_bits());
                prop_assert_eq!(a.residuals.len(), b.residuals.len());
                for (x, y) in a.residuals.iter().zip(&b.residuals) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "nondeterministic outcome: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn histogram_quantile_is_monotone_in_q(
        values in proptest::collection::vec(1e-9f64..1e3, 1..128),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..12),
    ) {
        use hemelb::obs::Histogram;
        let mut h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        let mut sorted = qs;
        sorted.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for q in sorted {
            let v = h.quantile(q);
            prop_assert!(
                v >= prev,
                "quantile({q}) = {v} dropped below an earlier quantile {prev}"
            );
            prev = v;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_kernel_is_bit_exact_over_random_cases(case in common::case_strategy()) {
        // The tentpole determinism property: over random sparse
        // geometries (cylinders, bifurcations, porous blocks) × velocity
        // sets × collision operators × BC families, the chunk-parallel
        // solver matches the serial one bit-for-bit at any thread count.
        use hemelb::core::{ParallelSolver, Solver};
        let geo = case.geo.build();
        let cfg = case.config();
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        let mut par1 = ParallelSolver::new(geo.clone(), cfg.clone(), 1);
        let mut par4 = ParallelSolver::new(geo, cfg, 4);
        serial.step_n(24);
        par1.step_n(24);
        par4.step_n(24);
        prop_assert!(
            common::bits_eq(&serial.raw_distributions(), &par1.raw_distributions()),
            "threads=1 diverged for {:?}", case
        );
        prop_assert!(
            common::bits_eq(&serial.raw_distributions(), &par4.raw_distributions()),
            "threads=4 diverged for {:?}", case
        );
        // Snapshot extraction (serial loop vs chunk-parallel) agrees too.
        let serial_digest = common::snapshot_digests(&serial.snapshot());
        let par_digest = common::snapshot_digests(&par4.snapshot());
        prop_assert_eq!(serial_digest, par_digest);
    }
}

#[test]
fn parallel_kernel_is_bit_exact_across_all_operator_combinations() {
    // Exhaustive sweep guaranteeing the coverage the random cases only
    // sample: both velocity sets × three collision operators × both BC
    // families, on a cylinder and on a porous block, 20 steps each.
    use hemelb::core::collision::CollisionKind;
    use hemelb::core::solver::ModelKind;
    use hemelb::core::{ParallelSolver, Solver};
    let geos = [
        common::GeoSpec::Cylinder {
            len: 10.0,
            radius: 2.5,
        },
        common::GeoSpec::Porous {
            nx: 7,
            ny: 5,
            nz: 5,
            seed: 42,
        },
    ];
    for geo_spec in &geos {
        let geo = geo_spec.build();
        for model in [ModelKind::D3Q15, ModelKind::D3Q19] {
            for collision in [
                CollisionKind::Bgk,
                CollisionKind::trt_magic(),
                CollisionKind::Mrt { omega_ghost: 1.2 },
            ] {
                for velocity_inlet in [false, true] {
                    let case = common::CaseSpec {
                        geo: geo_spec.clone(),
                        model,
                        collision,
                        velocity_inlet,
                    };
                    let cfg = case.config();
                    let mut serial = Solver::new(geo.clone(), cfg.clone());
                    let mut par = ParallelSolver::new(geo.clone(), cfg, 4);
                    serial.step_n(20);
                    par.step_n(20);
                    assert!(
                        common::bits_eq(&serial.raw_distributions(), &par.raw_distributions()),
                        "diverged for {case:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn checkpoint_round_trip_under_random_corruption() {
    use hemelb::core::{Solver, SolverConfig};
    use std::sync::Arc;
    let geo = Arc::new(VesselBuilder::straight_tube(12.0, 3.0).voxelise(1.0));
    let cfg = SolverConfig::pressure_driven(1.01, 0.99);
    let mut s = Solver::new(geo.clone(), cfg.clone());
    s.step_n(7);
    let dir = std::env::temp_dir().join(format!("hlb_prop_chkp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("st.chkp");
    s.checkpoint(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Clean restore works.
    let mut fresh = Solver::new(geo.clone(), cfg.clone());
    fresh.restore(&path).unwrap();
    assert_eq!(fresh.snapshot().rho, s.snapshot().rho);

    // Any single flipped byte in the body is detected.
    for k in [16usize, 24, pristine.len() / 2, pristine.len() - 1] {
        let mut corrupt = pristine.clone();
        corrupt[k] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        let mut victim = Solver::new(geo.clone(), cfg.clone());
        assert!(
            victim.restore(&path).is_err(),
            "corruption at byte {k} must be caught"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solver_interior_mass_conservation_property() {
    // Not a proptest (solver runs are costly) but a sweep: for several
    // tau values, a closed equilibrium state conserves mass exactly.
    use hemelb::core::{Solver, SolverConfig};
    use std::sync::Arc;
    let geo = Arc::new(VesselBuilder::straight_tube(14.0, 3.0).voxelise(1.0));
    for tau in [0.6, 0.8, 1.0, 1.4] {
        let mut s = Solver::new(
            geo.clone(),
            SolverConfig::pressure_driven(1.0, 1.0).with_tau(tau),
        );
        let m0 = s.mass();
        s.step_n(20);
        assert!((s.mass() - m0).abs() < 1e-8, "tau={tau}");
    }
}
