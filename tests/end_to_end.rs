//! Cross-crate integration tests: the full chain
//! geometry → file format → distributed read → partition → distributed
//! solve → in situ render → steering, wired together exactly as the
//! examples and the `reproduce` binary use it.

use hemelb::core::{DistSolver, Solver, SolverConfig};
use hemelb::geometry::distio::read_distributed;
use hemelb::geometry::format::{assemble, write_sgmy};
use hemelb::geometry::VesselBuilder;
use hemelb::parallel::{run_spmd, run_spmd_with_stats, TagClass};
use hemelb::partition::graph::{Connectivity, SiteGraph};
use hemelb::partition::{quality, MultilevelKWay, Partitioner};
use std::sync::Arc;

#[test]
fn file_format_to_distributed_read_to_solver() {
    // Voxelise, serialise, read back distributedly, reassemble, solve —
    // the solution must equal solving the original geometry.
    let geo = Arc::new(VesselBuilder::aneurysm(20.0, 4.0, 5.0).voxelise(1.0));
    let mut buf = Vec::new();
    write_sgmy(&geo, 8, &mut buf).unwrap();
    let path = std::env::temp_dir().join(format!("e2e_{}.sgmy", std::process::id()));
    std::fs::write(&path, &buf).unwrap();

    let path2 = path.clone();
    let results = run_spmd(4, move |comm| {
        let dg = read_distributed(&path2, comm, 2).unwrap();
        // Reassemble the *global* geometry from everyone's pieces via
        // all-gather (each rank ships its records; positions+kinds).
        let mut w = hemelb::parallel::WireWriter::new();
        w.put_usize(dg.my_sites.len());
        for s in &dg.my_sites {
            w.put_u32(s.position[0]);
            w.put_u32(s.position[1]);
            w.put_u32(s.position[2]);
            let (code, id) = s.kind.to_code();
            w.put_u8(code);
            w.put_u32(id as u32);
        }
        let parts = comm.all_gather(w.finish()).unwrap();
        let mut records = Vec::new();
        for part in parts {
            let mut r = hemelb::parallel::WireReader::new(part);
            let n = r.get_usize().unwrap();
            for _ in 0..n {
                let position = [
                    r.get_u32().unwrap(),
                    r.get_u32().unwrap(),
                    r.get_u32().unwrap(),
                ];
                let code = r.get_u8().unwrap();
                let id = r.get_u32().unwrap() as u16;
                records.push(hemelb::geometry::format::SiteRecord {
                    position,
                    kind: hemelb::geometry::SiteKind::from_code(code, id).unwrap(),
                });
            }
        }
        let rebuilt = Arc::new(assemble(&dg.header, records));

        // Solve distributedly on the rebuilt geometry.
        let owner: Vec<usize> = (0..rebuilt.fluid_count())
            .map(|s| s * comm.size() / rebuilt.fluid_count())
            .map(|o| o.min(comm.size() - 1))
            .collect();
        let mut ds = DistSolver::new(
            rebuilt.clone(),
            owner,
            SolverConfig::pressure_driven(1.01, 0.99),
            comm,
        )
        .unwrap();
        ds.step_n(10).unwrap();
        ds.gather_snapshot()
            .unwrap()
            .map(|s| (rebuilt.positions().to_vec(), s))
    });
    std::fs::remove_file(&path).ok();

    let (positions, dist_snap) = results[0].as_ref().expect("root gathers").clone();
    assert_eq!(positions.len(), geo.fluid_count());

    // Serial reference on the ORIGINAL geometry. Site *ordering* differs
    // (file is block-ordered), so compare via positions.
    let mut serial = Solver::new(geo.clone(), SolverConfig::pressure_driven(1.01, 0.99));
    serial.step_n(10);
    let ref_snap = serial.snapshot();
    // Build position → serial site map.
    let mut by_pos = std::collections::HashMap::new();
    for i in 0..geo.fluid_count() as u32 {
        by_pos.insert(geo.position(i), i);
    }
    // The distributed run indexed sites by its own rebuilt order, which
    // it reported alongside the snapshot.
    for (j, pos) in positions.iter().enumerate() {
        let i = by_pos[pos];
        assert_eq!(
            dist_snap.rho[j], ref_snap.rho[i as usize],
            "density at site {j} differs from serial"
        );
        assert_eq!(dist_snap.u[j], ref_snap.u[i as usize]);
    }
}

#[test]
fn kway_partition_reduces_halo_traffic_vs_naive() {
    // The pre-processing claim: a better partition means less halo
    // communication for the same physics.
    let geo = Arc::new(VesselBuilder::bend(14.0, 4.0).voxelise(0.7));
    let graph = SiteGraph::from_geometry(&geo, Connectivity::D3Q15);
    let p = 6;

    let run_with = |owner: Vec<usize>| {
        let geo2 = geo.clone();
        run_spmd_with_stats(p, move |comm| {
            let mut ds = DistSolver::new(
                geo2.clone(),
                owner.clone(),
                SolverConfig::pressure_driven(1.005, 0.995),
                comm,
            )
            .unwrap();
            ds.step_n(5).unwrap();
            ds.gather_snapshot().unwrap()
        })
    };

    let naive: Vec<usize> = (0..graph.len())
        .map(|s| (s * p / graph.len()).min(p - 1))
        .collect();
    let kway = MultilevelKWay::default().partition(&graph, p);
    let q_naive = quality(&graph, &naive, p);
    let q_kway = quality(&graph, &kway, p);

    let out_naive = run_with(naive);
    let out_kway = run_with(kway);

    let halo_naive = out_naive.summary.total.bytes(TagClass::Halo);
    let halo_kway = out_kway.summary.total.bytes(TagClass::Halo);
    assert!(
        halo_kway < halo_naive,
        "kway halo {halo_kway} must beat naive {halo_naive} (cuts {} vs {})",
        q_kway.edge_cut,
        q_naive.edge_cut
    );

    // Same physics regardless of decomposition (bitwise).
    let a = out_naive.results[0].as_ref().unwrap();
    let b = out_kway.results[0].as_ref().unwrap();
    assert_eq!(a.rho, b.rho, "solution must not depend on the partition");
}

#[test]
fn insitu_rendering_from_distributed_state_matches_serial_reference() {
    use hemelb::geometry::Vec3;
    use hemelb::insitu::camera::Camera;
    use hemelb::insitu::compositing::direct_send;
    use hemelb::insitu::field::Scalar;
    use hemelb::insitu::transfer::TransferFunction;
    use hemelb::insitu::volume::{render_brick, render_full, Brick};

    let geo = Arc::new(VesselBuilder::straight_tube(18.0, 4.0).voxelise(1.0));
    let cfg = SolverConfig::pressure_driven(1.01, 0.99);
    let mut serial = Solver::new(geo.clone(), cfg.clone());
    serial.step_n(50);
    let snap = serial.snapshot();
    let shape = geo.shape();
    let cam = Camera::framing(
        Vec3::ZERO,
        Vec3::new(shape[0] as f64, shape[1] as f64, shape[2] as f64),
        Vec3::new(0.0, -1.0, 0.3),
        96,
        72,
    );
    let tf = TransferFunction::heat(0.0, snap.max_speed().max(1e-9));
    let reference = render_full(&geo, &snap, Scalar::Speed, &cam, &tf, 0.5);

    let geo2 = geo.clone();
    let cfg2 = cfg.clone();
    let results = run_spmd(3, move |comm| {
        let owner: Vec<usize> = (0..geo2.fluid_count())
            .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
            .collect();
        let mut ds = DistSolver::new(geo2.clone(), owner.clone(), cfg2.clone(), comm).unwrap();
        ds.step_n(50).unwrap();
        let local = ds.local_snapshot();
        let (lo_v, hi_v) = {
            let local_max = (0..local.len()).map(|i| local.speed(i)).fold(0.0, f64::max);
            (0.0, comm.all_reduce_f64(local_max, f64::max).unwrap())
        };
        let tf = TransferFunction::heat(lo_v, hi_v.max(1e-9));
        let points: Vec<[u32; 3]> = ds.local_sites().iter().map(|&g| geo2.position(g)).collect();
        let speeds: Vec<f64> = (0..local.len()).map(|i| local.speed(i)).collect();
        let partial = match Brick::from_points(&points, &speeds) {
            Some(b) => render_brick(&b, &cam, &tf, 0.5),
            None => hemelb::insitu::image::PartialImage::new(cam.width, cam.height),
        };
        direct_send(comm, partial).unwrap()
    });
    let distributed = results[0].as_ref().unwrap();

    // Same silhouette; colours agree closely away from brick seams.
    let mut mismatched = 0usize;
    for (a, b) in distributed.pixels.iter().zip(&reference.image.pixels) {
        if (a[3] > 1e-3) != (b[3] > 1e-3) {
            mismatched += 1;
        }
    }
    let frac = mismatched as f64 / distributed.pixels.len() as f64;
    assert!(frac < 0.03, "silhouette mismatch fraction {frac}");
}

#[test]
fn steered_run_reacts_to_pressure_change() {
    use hemelb::steering::{
        duplex_pair, run_closed_loop, ClosedLoopConfig, SteeringClient, SteeringCommand, Transport,
    };
    use parking_lot::Mutex;

    let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
    let (client_end, server_end) = duplex_pair();
    let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));

    let client_thread = std::thread::spawn(move || {
        let client = SteeringClient::new(Box::new(client_end));
        let (_, s0) = {
            client.send(&SteeringCommand::RequestFrame).unwrap();
            client.wait_for_image().unwrap()
        };
        client
            .send(&SteeringCommand::SetInletPressure { id: 0, rho: 1.05 })
            .unwrap();
        // Give the solver time to respond, then sample again.
        let mut last = None;
        for _ in 0..4 {
            client.send(&SteeringCommand::RequestFrame).unwrap();
            let (_, st) = client.wait_for_image().unwrap();
            last = st.last().cloned();
        }
        client.send(&SteeringCommand::Terminate).unwrap();
        while client.recv().is_ok() {}
        (s0.last().cloned(), last)
    });

    let geo2 = geo.clone();
    run_spmd(2, move |comm| {
        let transport = if comm.is_master() {
            server_slot.lock().take()
        } else {
            None
        };
        let owner: Vec<usize> = (0..geo2.fluid_count())
            .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
            .collect();
        run_closed_loop(
            geo2.clone(),
            owner,
            SolverConfig::pressure_driven(1.01, 0.99),
            comm,
            transport,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (32, 24),
                initial_vis_rate: u32::MAX,
                steps_per_cycle: 25,
                vis_aware_repartition: false,
                ..Default::default()
            },
        )
        .unwrap()
    });
    let (before, after) = client_thread.join().unwrap();
    let before = before.expect("status before");
    let after = after.expect("status after");
    assert!(
        after.max_speed > before.max_speed,
        "raised inlet pressure must accelerate the flow: {} -> {}",
        before.max_speed,
        after.max_speed
    );
}
