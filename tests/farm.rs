//! Simulation-farm suite (ISSUE 9): scheduling determinism, fair-share
//! no-starvation, kill/restart bit-exactness with neighbour isolation,
//! and bounded retry/backoff.

use hemelb::farm::{
    Drive, FarmConfig, FarmReport, FarmScheduler, GeometryKind, JobSpec, JobStatus, Scenario,
};
use hemelb::parallel::{FaultEvent, FaultKind, FaultPlan, TagClass};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hemelb_farm_it_{tag}_{}", std::process::id()))
}

fn cfg(tag: &str, slots: usize) -> FarmConfig {
    FarmConfig {
        slots,
        backoff_ms: 1,
        workdir: scratch_dir(tag),
        ..Default::default()
    }
}

fn tube_scenario(tau: f64, steps: u64, ranks: usize) -> Scenario {
    Scenario {
        geometry: GeometryKind::Tube {
            length: 8.0,
            radius: 2.0,
        },
        dx: 1.0,
        drive: Drive::Pressure {
            rho_in: 1.01,
            rho_out: 0.99,
        },
        tau,
        steps,
        ranks,
    }
}

fn digest_fields(report: &FarmReport) -> BTreeMap<String, (u64, u64, u32)> {
    report
        .records
        .iter()
        .map(|r| (r.name.clone(), (r.digest.unwrap_or(0), r.steps, r.attempts)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same specs, same worker count ⇒ identical completion order and
    /// bit-identical per-job field digests, regardless of how the OS
    /// interleaves the worker threads between the two runs.
    #[test]
    fn farm_schedule_and_digests_are_deterministic(
        jobs in proptest::collection::vec(
            (0..2usize, 0..3u8, 2..5u64, 1..3usize, 0..3usize),
            3..6,
        ),
        slots in 1..4usize,
    ) {
        let taus = [0.7, 0.8, 0.95];
        let build = |tag: &str| {
            let mut farm = FarmScheduler::new(cfg(tag, slots));
            farm.set_tenant_weight("icu", 2.0);
            for (i, &(tenant, priority, steps, ranks, tau)) in jobs.iter().enumerate() {
                farm.submit(
                    JobSpec::new(
                        format!("job{i}"),
                        ["icu", "lab"][tenant],
                        tube_scenario(taus[tau], steps, ranks),
                    )
                    .with_priority(priority),
                );
            }
            farm.run()
        };
        let a = build("det_a");
        let b = build("det_b");
        prop_assert_eq!(a.failed(), 0);
        prop_assert_eq!(a.completion_order(), b.completion_order());
        prop_assert_eq!(digest_fields(&a), digest_fields(&b));
    }
}

/// A flood of low-priority jobs from one tenant cannot starve another
/// tenant's high-priority work beyond the configured share: under equal
/// weights the victim's jobs interleave 1:1 with the flood from the
/// start, and a heavier weight pulls them even earlier.
#[test]
fn low_priority_flood_cannot_starve_the_other_tenant() {
    let run_with = |vip_weight: f64| {
        let mut farm = FarmScheduler::new(cfg(&format!("fair_{vip_weight}"), 1));
        farm.set_tenant_weight("vip", vip_weight);
        // The flood is submitted first AND at maximum within-tenant
        // priority — priority is tenant-local, so it must not matter.
        for i in 0..12 {
            farm.submit(
                JobSpec::new(format!("flood{i}"), "flood", tube_scenario(0.8, 2, 1))
                    .with_priority(255),
            );
        }
        for i in 0..3 {
            farm.submit(JobSpec::new(
                format!("vip{i}"),
                "vip",
                tube_scenario(0.9, 2, 1),
            ));
        }
        let report = farm.run();
        assert_eq!(report.failed(), 0);
        report
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.tenant == "vip")
            .map(|(i, _)| i)
            .collect::<Vec<_>>()
    };

    // Equal weights: 1:1 interleave, so the 3 vip jobs commit within
    // the first 6 completions (positions 1, 3, 5).
    let equal = run_with(1.0);
    assert_eq!(equal.len(), 3);
    assert!(
        *equal.last().unwrap() <= 6,
        "vip starved under equal weights: committed at {equal:?}"
    );

    // A 3× weight gives vip 3 of every 4 dispatches while backlogged:
    // all vip work commits within the first 5 completions.
    let heavy = run_with(3.0);
    assert!(
        *heavy.last().unwrap() <= 4,
        "vip starved despite 3x weight: committed at {heavy:?}"
    );
}

/// A killed job restarts from its last checkpoint and lands bit-exactly
/// on the clean reference, without perturbing the jobs running beside
/// it — pinned by digest equality on every job.
#[test]
fn killed_job_restarts_bit_exact_without_perturbing_neighbours() {
    let specs = [
        ("left", 0.7, 3u64, 1usize),
        ("victim", 0.8, 4, 2),
        ("right", 0.95, 3, 2),
    ];
    // Clean references: each job alone, no faults.
    let mut reference = BTreeMap::new();
    for (name, tau, steps, ranks) in specs {
        let mut farm = FarmScheduler::new(cfg(&format!("ref_{name}"), ranks));
        farm.submit(JobSpec::new(name, "t", tube_scenario(tau, steps, ranks)));
        let rep = farm.run();
        assert_eq!(rep.completed(), 1);
        reference.extend(rep.digests());
    }

    // The same three jobs concurrently, with rank 1 of "victim" killed
    // mid-run under a checkpoint cadence.
    let mut farm = FarmScheduler::new(cfg("kill", 3));
    for (name, tau, steps, ranks) in specs {
        let mut spec = JobSpec::new(name, "t", tube_scenario(tau, steps, ranks));
        if name == "victim" {
            spec = spec
                .with_checkpoint_every(2)
                .with_faults(FaultPlan::new(vec![FaultEvent {
                    rank: 1,
                    class: TagClass::Halo,
                    step: 3,
                    kind: FaultKind::KillRank,
                }]));
        }
        farm.submit(spec);
    }
    let report = farm.run();
    assert_eq!(report.completed(), 3, "{}", report.render_table());
    let victim = report.records.iter().find(|r| r.name == "victim").unwrap();
    assert!(victim.restarts >= 1, "the kill must actually fire");
    assert_eq!(
        report.digests(),
        reference,
        "kill recovery must be bit-exact and isolated"
    );
    for r in &report.records {
        if r.name != "victim" {
            assert_eq!(r.restarts, 0, "neighbour {} saw the fault", r.name);
        }
    }
}

/// Retry is bounded: a job that fails its first attempts completes once
/// the poison clears (attempts = poison + 1), and a job that keeps
/// failing is marked failed after exactly `max_retries + 1` attempts —
/// without taking the rest of the farm down.
#[test]
fn retries_are_bounded_with_backoff() {
    let mut farm = FarmScheduler::new(FarmConfig {
        slots: 2,
        max_retries: 2,
        backoff_ms: 1,
        workdir: scratch_dir("retry"),
        ..Default::default()
    });
    farm.submit(JobSpec::new("recovers", "t", tube_scenario(0.8, 3, 1)).with_poison_attempts(2));
    farm.submit(JobSpec::new("hopeless", "t", tube_scenario(0.8, 3, 1)).with_poison_attempts(5));
    farm.submit(JobSpec::new("bystander", "t", tube_scenario(0.9, 3, 1)));
    let report = farm.run();

    let by_name = |n: &str| report.records.iter().find(|r| r.name == n).unwrap();
    let recovers = by_name("recovers");
    assert_eq!(recovers.status, JobStatus::Completed);
    assert_eq!(recovers.attempts, 3, "two poisoned attempts, then success");
    assert!(recovers.digest.is_some());

    let hopeless = by_name("hopeless");
    assert_eq!(hopeless.status, JobStatus::Failed);
    assert_eq!(hopeless.attempts, 3, "max_retries + 1 attempts, no more");
    let err = hopeless.error.as_deref().unwrap_or_default();
    assert!(
        err.contains("injected job fault"),
        "failure records the last error: {err:?}"
    );

    let bystander = by_name("bystander");
    assert_eq!(bystander.status, JobStatus::Completed);
    assert_eq!(bystander.attempts, 1);
    assert_eq!(report.completed(), 2);
    assert_eq!(report.failed(), 1);
}

/// Soak (nightly): repeated mixed sweeps — kills, poisons, multi-rank
/// jobs — must produce identical digest maps run after run and never
/// lose a recoverable job.
#[test]
#[ignore = "soak: run via ci.sh --only soak"]
fn farm_soak_repeated_mixed_sweeps_stay_bit_stable() {
    let build = |tag: &str| {
        let mut farm = FarmScheduler::new(cfg(tag, 3));
        farm.set_tenant_weight("icu", 2.0);
        for i in 0..5 {
            let tau = 0.7 + 0.05 * i as f64;
            farm.submit(JobSpec::new(
                format!("icu{i}"),
                "icu",
                tube_scenario(tau, 4, 1 + i % 2),
            ));
        }
        farm.submit(
            JobSpec::new("killed", "lab", tube_scenario(0.85, 5, 2))
                .with_checkpoint_every(2)
                .with_faults(FaultPlan::new(vec![FaultEvent {
                    rank: 1,
                    class: TagClass::Halo,
                    step: 3,
                    kind: FaultKind::KillRank,
                }])),
        );
        farm.submit(JobSpec::new("flaky", "lab", tube_scenario(0.9, 4, 1)).with_poison_attempts(1));
        let report = farm.run();
        assert_eq!(report.failed(), 0, "{}", report.render_table());
        assert!(report.restarts() >= 1);
        (report.completion_order(), digest_fields(&report))
    };
    let first = build("soak_0");
    for round in 1..5 {
        let next = build(&format!("soak_{round}"));
        assert_eq!(first, next, "round {round} diverged");
    }
}
