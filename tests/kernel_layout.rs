//! Kernel-layout equivalence suite: the legacy site-major brick layout,
//! the SoA fluid-site list with scalar collision, and the SoA
//! chunked-lane (SIMD-style) BGK path must be **bit-identical** — per
//! field, per step — over random geometries × velocity sets × collision
//! operators × boundary-condition families. Checkpoints written under
//! one layout must restore under any other and continue on the same
//! trajectory, and a single corrupted streaming-index entry must break
//! the golden digest (the negative control that the digests actually
//! watch the streaming table).

mod common;

use hemelb::core::collision::CollisionKind;
use hemelb::core::solver::ModelKind;
use hemelb::core::{KernelLayout, ParallelSolver, Solver, SolverConfig};
use hemelb::geometry::VesselBuilder;
use proptest::prelude::*;
use std::sync::Arc;

const LAYOUTS: [KernelLayout; 3] = [
    KernelLayout::Legacy,
    KernelLayout::SoaScalar,
    KernelLayout::SoaSimd,
];

fn layout_name(layout: KernelLayout) -> &'static str {
    match layout {
        KernelLayout::Legacy => "legacy",
        KernelLayout::SoaScalar => "soa-scalar",
        KernelLayout::SoaSimd => "soa-simd",
    }
}

/// Step `reference` and `candidates` together, asserting full bit
/// equality of the distribution array and of every macroscopic field
/// after *each* step (not just at the end — divergence must be caught
/// at the step it first appears).
fn assert_lockstep_equal(
    reference: &mut Solver,
    candidates: &mut [(&'static str, &mut Solver)],
    par: &mut ParallelSolver,
    steps: u64,
    ctx: &dyn std::fmt::Debug,
) -> Result<(), TestCaseError> {
    for step in 1..=steps {
        reference.step_n(1);
        par.step_n(1);
        let want_f = reference.raw_distributions();
        let want_snap = common::snapshot_digests(&reference.snapshot());
        for (name, solver) in candidates.iter_mut() {
            solver.step_n(1);
            prop_assert!(
                common::bits_eq(&want_f, &solver.raw_distributions()),
                "{name} f diverged from legacy at step {step} for {ctx:?}"
            );
            let got = common::snapshot_digests(&solver.snapshot());
            prop_assert_eq!(
                want_snap,
                got,
                "{} (rho,u,shear) diverged at step {} for {:?}",
                name,
                step,
                ctx
            );
        }
        prop_assert!(
            common::bits_eq(&want_f, &par.raw_distributions()),
            "soa-simd ParallelSolver f diverged at step {step} for {ctx:?}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random geometries × {D3Q15, D3Q19} × {BGK, TRT, MRT} ×
    /// {pressure, velocity}: legacy == SoA-scalar == SoA-SIMD ==
    /// SoA-SIMD-parallel by `to_bits`, per field, per step.
    #[test]
    fn layouts_agree_bitwise_per_step(case in common::case_strategy()) {
        let geo = case.geo.build();
        let cfg = case.config();
        let mut legacy = Solver::new(geo.clone(), cfg.clone().with_layout(KernelLayout::Legacy));
        let mut scalar = Solver::new(geo.clone(), cfg.clone().with_layout(KernelLayout::SoaScalar));
        let mut simd = Solver::new(geo.clone(), cfg.clone().with_layout(KernelLayout::SoaSimd));
        let mut par = ParallelSolver::new(geo, cfg.with_layout(KernelLayout::SoaSimd), 3);
        assert_lockstep_equal(
            &mut legacy,
            &mut [("soa-scalar", &mut scalar), ("soa-simd", &mut simd)],
            &mut par,
            12,
            &case,
        )?;
    }
}

/// Exhaustive operator sweep the random cases only sample: both velocity
/// sets × three collision operators × both BC families, on a cylinder
/// and a porous block, all three layouts bit-identical after 10 steps.
#[test]
fn layouts_agree_across_all_operator_combinations() {
    let geos = [
        common::GeoSpec::Cylinder {
            len: 10.0,
            radius: 2.5,
        },
        common::GeoSpec::Porous {
            nx: 7,
            ny: 5,
            nz: 5,
            seed: 42,
        },
    ];
    for geo_spec in &geos {
        let geo = geo_spec.build();
        for model in [ModelKind::D3Q15, ModelKind::D3Q19] {
            for collision in [
                CollisionKind::Bgk,
                CollisionKind::trt_magic(),
                CollisionKind::Mrt { omega_ghost: 1.2 },
            ] {
                for velocity_inlet in [false, true] {
                    let case = common::CaseSpec {
                        geo: geo_spec.clone(),
                        model,
                        collision,
                        velocity_inlet,
                    };
                    let cfg = case.config();
                    let mut runs = LAYOUTS.map(|layout| {
                        let mut s = Solver::new(geo.clone(), cfg.clone().with_layout(layout));
                        s.step_n(10);
                        s
                    });
                    let want = runs[0].raw_distributions().to_vec();
                    let want_snap = common::snapshot_digests(&runs[0].snapshot());
                    for (s, layout) in runs.iter_mut().zip(LAYOUTS).skip(1) {
                        assert!(
                            common::bits_eq(&want, &s.raw_distributions()),
                            "{} f diverged for {case:?}",
                            layout_name(layout)
                        );
                        assert_eq!(
                            want_snap,
                            common::snapshot_digests(&s.snapshot()),
                            "{} fields diverged for {case:?}",
                            layout_name(layout)
                        );
                    }
                }
            }
        }
    }
}

/// Mid-run checkpoint/restore through the new layout: state written
/// under SoA-SIMD at step 10 restores into *any* layout and continues
/// on exactly the uninterrupted trajectory (and the reverse direction,
/// legacy-written → SoA-restored, holds too).
#[test]
fn checkpoint_round_trips_across_layouts_mid_run() {
    let geo = Arc::new(VesselBuilder::aneurysm(12.0, 2.5, 3.5).voxelise(1.0));
    let cfg = SolverConfig::pressure_driven(1.005, 0.995);
    let dir = std::env::temp_dir().join(format!("hlb_layout_chkp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Uninterrupted 20-step reference on the legacy layout.
    let mut reference = Solver::new(geo.clone(), cfg.clone().with_layout(KernelLayout::Legacy));
    reference.step_n(20);
    let want = reference.raw_distributions().to_vec();

    for writer in [KernelLayout::SoaSimd, KernelLayout::Legacy] {
        let path = dir.join(format!("{}.chkp", layout_name(writer)));
        let mut w = Solver::new(geo.clone(), cfg.clone().with_layout(writer));
        w.step_n(10);
        w.checkpoint(&path).unwrap();
        for reader in LAYOUTS {
            let mut r = Solver::new(geo.clone(), cfg.clone().with_layout(reader));
            r.restore(&path).unwrap();
            assert_eq!(r.step_count(), 10, "restored step count");
            r.step_n(10);
            assert!(
                common::bits_eq(&want, &r.raw_distributions()),
                "checkpoint written under {} + 10 more steps under {} diverged \
                 from the uninterrupted run",
                layout_name(writer),
                layout_name(reader)
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Negative control for the golden fixtures: swapping one pair of
/// streaming-index entries (a single-direction source mix-up between two
/// sites) must change the blessed `f` digest of the
/// `cylinder_bgk_pressure_d3q15` case. If this test ever passes with an
/// *unchanged* digest, the fixtures have stopped watching the streaming
/// table.
#[test]
fn corrupted_streaming_index_fails_golden_digest() {
    let geo = Arc::new(VesselBuilder::straight_tube(12.0, 3.0).voxelise(1.0));
    let cfg = SolverConfig::pressure_driven(1.01, 0.99);
    let fixture = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/cylinder_bgk_pressure_d3q15.txt");
    let blessed = std::fs::read_to_string(&fixture)
        .expect("golden fixture must exist (GOLDEN_BLESS=1 cargo test --test golden)");
    let blessed_f = blessed
        .lines()
        .find_map(|l| l.strip_prefix("f="))
        .expect("fixture has an f= digest line")
        .to_string();

    for layout in [KernelLayout::SoaSimd, KernelLayout::Legacy] {
        let mut solver = Solver::new(geo.clone(), cfg.clone().with_layout(layout));
        // Find a swappable pair: distinct sources for the same non-rest
        // direction at two different lattice positions.
        let n = geo.fluid_count();
        let q = solver.model().q;
        let mut swapped = false;
        'search: for dir in 1..q {
            for b in 1..n {
                if geo.position(0) != geo.position(b as u32)
                    && solver.debug_swap_stream_entries(dir, 0, b)
                {
                    swapped = true;
                    break 'search;
                }
            }
        }
        assert!(swapped, "no swappable streaming-index pair found");
        solver.step_n(50);
        let got_f = format!(
            "{:016x}",
            common::fnv1a_bits(solver.raw_distributions().iter().copied())
        );
        assert_ne!(
            got_f,
            blessed_f,
            "{}: a corrupted streaming index reproduced the blessed f digest — \
             the golden fixtures are not sensitive to the streaming table",
            layout_name(layout)
        );
    }
}

/// Long SoA soak: 500 steps; legacy, SoA-SIMD serial and SoA-SIMD at 8
/// threads must all stay bit-identical. Run with
/// `cargo test --test kernel_layout -- --ignored` (nightly ci.sh soak).
#[test]
#[ignore = "long soak; run via cargo test -- --ignored"]
fn soak_500_steps_soa_bit_exact() {
    let geo = Arc::new(VesselBuilder::aneurysm(14.0, 3.0, 4.0).voxelise(1.0));
    let cfg = SolverConfig::pressure_driven(1.005, 0.995);
    let mut legacy = Solver::new(geo.clone(), cfg.clone().with_layout(KernelLayout::Legacy));
    let mut simd = Solver::new(geo.clone(), cfg.clone().with_layout(KernelLayout::SoaSimd));
    let mut par = ParallelSolver::new(geo, cfg.with_layout(KernelLayout::SoaSimd), 8);
    legacy.step_n(500);
    simd.step_n(500);
    par.step_n(500);
    assert!(
        common::bits_eq(&legacy.raw_distributions(), &simd.raw_distributions()),
        "SoA-SIMD serial diverged from legacy after 500 steps"
    );
    assert!(
        common::bits_eq(&legacy.raw_distributions(), &par.raw_distributions()),
        "SoA-SIMD 8-thread soak diverged from legacy after 500 steps"
    );
}
